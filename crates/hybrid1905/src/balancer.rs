//! The §7.4 load balancer: bandwidth aggregation over WiFi + PLC.
//!
//! The paper's implementation sits between the IP and MAC layers (built
//! on the Click modular router): each IP packet is forwarded to one
//! medium with probability proportional to that medium's estimated
//! capacity; the destination restores order using the IP identification
//! sequence. A round-robin splitter — which ignores capacity — serves as
//! the baseline and is limited to twice the *slower* medium's rate
//! ("the slowest medium becomes a bottleneck").
//!
//! [`combine_streams`] reproduces that data path over two per-medium
//! delivery timelines: global sequence numbers are assigned to mediums by
//! the splitter, each medium delivers its packets at its own measured
//! times, and the receiver releases packets **in order**. All of Fig. 20
//! (hybrid vs round-robin throughput, file completion times, jitter)
//! derives from the released timeline.

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use simnet::rng::Distributions;
use simnet::stats::RunningStats;
use simnet::time::{Duration, Time};
use simnet::trace::Series;

/// How the splitter assigns packets to the two mediums.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SplitStrategy {
    /// Send to medium A with probability `p_first` (the paper sets it
    /// proportional to estimated capacities).
    Weighted {
        /// Probability of choosing the first medium.
        p_first: f64,
    },
    /// Strict alternation — the capacity-blind baseline.
    RoundRobin,
}

impl SplitStrategy {
    /// Capacity-proportional weights (the paper's algorithm): medium A
    /// gets `cap_a / (cap_a + cap_b)`.
    pub fn capacity_weighted(cap_a_mbps: f64, cap_b_mbps: f64) -> SplitStrategy {
        let a = cap_a_mbps.max(0.0);
        let b = cap_b_mbps.max(0.0);
        let p = if a + b > 0.0 { a / (a + b) } else { 0.5 };
        SplitStrategy::Weighted { p_first: p }
    }
}

/// The in-order packet stream a hybrid receiver hands to the application.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CombinedDelivery {
    /// In-order release time of each global packet (index = global seq).
    pub release_times: Vec<Time>,
    /// Packets that could not be delivered (assigned to a medium that ran
    /// out of deliveries).
    pub undelivered: u64,
    /// How many packets went to the first medium.
    pub to_first: u64,
}

impl CombinedDelivery {
    /// Completion time of the whole stream (delivery of the last packet),
    /// e.g. the paper's 600 MB download completion (Fig. 20 right).
    pub fn completion_time(&self) -> Option<Time> {
        self.release_times.last().copied()
    }

    /// Application-level throughput series: released packets per `bin`,
    /// converted to Mb/s for `pkt_bytes`-byte packets.
    pub fn throughput_series(&self, pkt_bytes: u32, bin: Duration) -> Series {
        let mut s = Series::new("hybrid throughput");
        if self.release_times.is_empty() {
            return s;
        }
        let mut counts: std::collections::BTreeMap<u64, u64> = Default::default();
        for t in &self.release_times {
            *counts.entry(t.as_nanos() / bin.as_nanos()).or_insert(0) += 1;
        }
        for (slot, n) in counts {
            let mbps = n as f64 * pkt_bytes as f64 * 8.0 / bin.as_secs_f64() / 1e6;
            s.push(Time(slot * bin.as_nanos()), mbps);
        }
        s
    }

    /// Jitter: standard deviation of inter-release gaps, in milliseconds
    /// (the paper measures jitter to verify reordering "does not worsen"
    /// it, §7.4).
    pub fn jitter_ms(&self) -> f64 {
        if self.release_times.len() < 3 {
            return 0.0;
        }
        let mut stats = RunningStats::new();
        for w in self.release_times.windows(2) {
            stats.push((w[1] - w[0]).as_millis_f64());
        }
        stats.std()
    }

    /// Mean released rate over the whole stream, Mb/s.
    pub fn mean_throughput_mbps(&self, pkt_bytes: u32) -> f64 {
        match (self.release_times.first(), self.release_times.last()) {
            (Some(&first), Some(&last)) if last > first => {
                let span = (last - first).as_secs_f64();
                (self.release_times.len() - 1) as f64 * pkt_bytes as f64 * 8.0 / span / 1e6
            }
            _ => 0.0,
        }
    }
}

/// Steady-state extrapolation of a measured delivery timeline: the k-th
/// delivery beyond the measured window arrives at the medium's recent
/// mean inter-delivery gap past the last measurement. Returns `None` for
/// an empty timeline (a dead medium never delivers).
fn delivery_at(times: &[Time], k: usize) -> Option<Time> {
    if let Some(&t) = times.get(k) {
        return Some(t);
    }
    let n = times.len();
    if n == 0 {
        return None;
    }
    if n == 1 {
        // One sample: reuse its time as both origin and gap.
        let gap = times[0].as_nanos().max(1);
        return Some(Time(times[0].as_nanos() + gap * (k - n + 1) as u64));
    }
    // Mean gap over the last half of the window (steady state).
    let half = n / 2;
    let span = times[n - 1].saturating_since(times[half]);
    let gaps = (n - 1 - half).max(1) as u64;
    let gap = (span.as_nanos() / gaps).max(1);
    Some(Time(times[n - 1].as_nanos() + gap * (k - n + 1) as u64))
}

/// Run the splitter + in-order receiver over two per-medium delivery
/// timelines.
///
/// `first` and `second` are the (sorted) delivery timestamps each medium
/// achieves for the packets assigned to it, as measured by the medium
/// simulations under saturation; the k-th packet assigned to a medium is
/// delivered at that medium's k-th timestamp. Past the measured window
/// the timeline is extrapolated at the medium's steady-state rate, so a
/// long file transfer (Fig. 20 right) can be combined from a shorter
/// measurement. `total` limits the global stream length; the in-order
/// release time of global packet g is `max(release(g−1), delivery(g))`.
pub fn combine_streams(
    first: &[Time],
    second: &[Time],
    strategy: SplitStrategy,
    total: usize,
    seed: u64,
) -> CombinedDelivery {
    let _span = simnet::obs::span::enter("hybrid.split");
    let obs = simnet::obs::current();
    // Reorder-buffer residence time per packet (µs): how long an
    // early-delivered packet waits for its in-order turn. Recording is a
    // shared-cell add and never feeds back into the split (observation is
    // inert — see `simnet::obs`).
    let reorder_wait = obs.registry().histo("hybrid.balancer.reorder_wait_us");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut i = 0usize; // consumed from first
    let mut j = 0usize; // consumed from second
    let mut release_times = Vec::with_capacity(total);
    let mut undelivered = 0u64;
    let mut to_first = 0u64;
    let mut last_release = Time::ZERO;
    for g in 0..total {
        let pick_first = match strategy {
            SplitStrategy::Weighted { p_first } => Distributions::bernoulli(&mut rng, p_first),
            SplitStrategy::RoundRobin => g % 2 == 0,
        };
        let delivery = if pick_first {
            to_first += 1;
            let d = delivery_at(first, i);
            i += 1;
            d
        } else {
            let d = delivery_at(second, j);
            j += 1;
            d
        };
        match delivery {
            Some(d) => {
                last_release = last_release.max(d);
                reorder_wait.record(last_release.saturating_since(d).as_nanos() / 1_000);
                release_times.push(last_release);
            }
            None => {
                undelivered += 1;
                // A packet assigned to a dead medium blocks in-order
                // release of everything after it; account it as never
                // released and stop.
                break;
            }
        }
    }
    let reg = obs.registry();
    reg.counter("hybrid.balancer.packets")
        .add(release_times.len() as u64);
    reg.counter("hybrid.balancer.undelivered").add(undelivered);
    if total > 0 {
        reg.gauge("hybrid.balancer.split_to_first")
            .set(to_first as f64 / total as f64);
    }
    CombinedDelivery {
        release_times,
        undelivered,
        to_first,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A medium delivering one packet every `gap_ms` starting at t = 0.
    fn timeline(gap_ms: u64, n: usize) -> Vec<Time> {
        (1..=n as u64)
            .map(|k| Time::from_millis(k * gap_ms))
            .collect()
    }

    #[test]
    fn capacity_weights_normalize() {
        let s = SplitStrategy::capacity_weighted(90.0, 30.0);
        match s {
            SplitStrategy::Weighted { p_first } => assert!((p_first - 0.75).abs() < 1e-12),
            _ => panic!(),
        }
        // Degenerate: both zero → 0.5.
        match SplitStrategy::capacity_weighted(0.0, 0.0) {
            SplitStrategy::Weighted { p_first } => assert_eq!(p_first, 0.5),
            _ => panic!(),
        }
    }

    #[test]
    fn weighted_split_aggregates_bandwidth() {
        // Medium A: 1 pkt/ms (fast); medium B: 1 pkt/3ms (slow).
        // Capacity-proportional split (3:1) should release at ~A+B rate.
        let a = timeline(1, 3000);
        let b = timeline(3, 1000);
        let combined = combine_streams(&a, &b, SplitStrategy::capacity_weighted(3.0, 1.0), 3500, 7);
        assert_eq!(combined.undelivered, 0);
        let rate =
            combined.release_times.len() as f64 / combined.completion_time().unwrap().as_secs_f64();
        // Sum of rates = 1000 + 333 = 1333 pkt/s; allow slack for the
        // probabilistic split exhausting one side early.
        assert!(rate > 1100.0, "rate={rate} pkt/s");
    }

    #[test]
    fn round_robin_is_bottlenecked_by_the_slow_medium() {
        let a = timeline(1, 3000); // 1000 pkt/s
        let b = timeline(3, 1000); // 333 pkt/s
        let combined = combine_streams(&a, &b, SplitStrategy::RoundRobin, 2000, 7);
        let rate =
            combined.release_times.len() as f64 / combined.completion_time().unwrap().as_secs_f64();
        // Limited to ~2x the slow medium (666 pkt/s), far below A+B.
        assert!(
            (550.0..750.0).contains(&rate),
            "rate={rate} pkt/s (expected ~2x slow medium)"
        );
    }

    #[test]
    fn releases_are_monotone_in_order() {
        let a = timeline(2, 500);
        let b = timeline(5, 200);
        let combined = combine_streams(&a, &b, SplitStrategy::Weighted { p_first: 0.7 }, 600, 3);
        for w in combined.release_times.windows(2) {
            assert!(w[1] >= w[0], "in-order release must be monotone");
        }
    }

    #[test]
    fn exhausted_medium_counts_undelivered() {
        let a = timeline(1, 5);
        let b: Vec<Time> = Vec::new();
        let combined = combine_streams(&a, &b, SplitStrategy::RoundRobin, 10, 1);
        assert!(combined.undelivered > 0);
        assert!(combined.release_times.len() < 10);
    }

    #[test]
    fn throughput_series_and_mean() {
        // 1000 packets of 1250 B, one per ms => 10 Mb/s.
        let a = timeline(1, 1000);
        let combined = combine_streams(
            &a,
            &timeline(1, 0),
            SplitStrategy::Weighted { p_first: 1.0 },
            1000,
            1,
        );
        let mean = combined.mean_throughput_mbps(1250);
        assert!((mean - 10.0).abs() < 0.5, "mean={mean}");
        let series = combined.throughput_series(1250, Duration::from_millis(100));
        assert!(!series.is_empty());
        let avg = series.stats().mean();
        assert!((avg - 10.0).abs() < 1.0, "avg={avg}");
    }

    #[test]
    fn jitter_of_uniform_stream_is_small() {
        let a = timeline(2, 500);
        let combined = combine_streams(
            &a,
            &timeline(1, 0),
            SplitStrategy::Weighted { p_first: 1.0 },
            500,
            1,
        );
        assert!(combined.jitter_ms() < 0.01);
    }

    #[test]
    fn round_robin_jitter_exceeds_weighted_on_asymmetric_links() {
        let a = timeline(1, 4000);
        let b = timeline(10, 400);
        let weighted =
            combine_streams(&a, &b, SplitStrategy::capacity_weighted(10.0, 1.0), 4000, 5);
        let rr = combine_streams(&a, &b, SplitStrategy::RoundRobin, 780, 5);
        assert!(
            rr.jitter_ms() >= weighted.jitter_ms(),
            "rr={} weighted={}",
            rr.jitter_ms(),
            weighted.jitter_ms()
        );
    }
}
