//! Expected transmission count (ETX) metrics.
//!
//! Classic mesh routing estimates ETX from **broadcast** probe loss rates
//! (De Couto et al.; paper references \[7\], \[8\]): `ETX = 1/(df·dr)`. The
//! paper shows this is nearly useless on PLC (§8.1): broadcast frames use
//! the most robust (ROBO) modulation and are acknowledged by a proxy, so
//! loss rates sit around 10⁻⁴ for links of wildly different quality —
//! "nothing can be conjectured for link quality from low loss rates".
//!
//! The honest alternative is the **unicast ETX (U-ETX)**: count the
//! frames each unicast packet actually needed (retransmissions included).
//! U-ETX correlates with BLE and almost linearly with PBerr (Fig. 22).

use serde::{Deserialize, Serialize};
use simnet::stats::RunningStats;

/// Broadcast-probe ETX: `1 / (df · dr)` from the forward and reverse
/// delivery ratios. Returns `None` when either ratio is zero.
pub fn etx_from_delivery_ratios(df: f64, dr: f64) -> Option<f64> {
    if df <= 0.0 || dr <= 0.0 {
        return None;
    }
    Some(1.0 / (df.min(1.0) * dr.min(1.0)))
}

/// Delivery ratio from broadcast counters (received, lost).
pub fn delivery_ratio(received: u64, lost: u64) -> f64 {
    let total = received + lost;
    if total == 0 {
        return 0.0;
    }
    received as f64 / total as f64
}

/// U-ETX summary over the per-packet transmission counts of a unicast
/// flow (paper §8.1: "U-ETX is measured by averaging the number of PLC
/// retransmissions for all packets transmitted during the experiment",
/// with error bars showing the standard deviation).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UEtx {
    /// Mean transmissions per packet (≥ 1).
    pub mean: f64,
    /// Standard deviation of the transmission count.
    pub std: f64,
    /// Packets measured.
    pub packets: u64,
}

impl UEtx {
    /// Compute from per-packet frame counts.
    pub fn from_tx_counts(counts: &[u32]) -> Option<UEtx> {
        if counts.is_empty() {
            return None;
        }
        let mut stats = RunningStats::new();
        for &c in counts {
            stats.push(c as f64);
        }
        Some(UEtx {
            mean: stats.mean(),
            std: stats.std(),
            packets: stats.count(),
        })
    }

    /// Expected U-ETX from a PB error rate, for a packet of `n_pbs`
    /// physical blocks: a retransmission happens when at least one PB of
    /// the packet fails, and each retransmission round retries only the
    /// failed PBs. First-order model: `E[tx] ≈ Σ_k P(round k needed)`
    /// = 1 + p_pkt + p_pkt·p + p_pkt·p² + … with
    /// `p_pkt = 1 − (1−p)^n_pbs` (paper §8.1: "A retransmission occurs if
    /// at least one of these PBs is received with errors").
    pub fn expected_from_pberr(pberr: f64, n_pbs: u32) -> f64 {
        let p = pberr.clamp(0.0, 0.999_999);
        let p_pkt = 1.0 - (1.0 - p).powi(n_pbs as i32);
        // After the first retransmission only failed PBs are retried, so
        // subsequent rounds fail with probability ~p each.
        1.0 + p_pkt / (1.0 - p)
    }
}

impl electrifi_state::PersistValue for UEtx {
    fn encode(&self, w: &mut electrifi_state::SectionWriter) {
        w.put_f64(self.mean);
        w.put_f64(self.std);
        w.put_u64(self.packets);
    }

    fn decode(
        r: &mut electrifi_state::SectionReader<'_>,
    ) -> Result<Self, electrifi_state::StateError> {
        let u = UEtx {
            mean: r.get_f64()?,
            std: r.get_f64()?,
            packets: r.get_u64()?,
        };
        if u.mean.is_nan() || u.mean < 1.0 || u.std.is_nan() || u.std < 0.0 || u.packets == 0 {
            return Err(r.malformed(format!(
                "U-ETX mean={} std={} over {} packets",
                u.mean, u.std, u.packets
            )));
        }
        Ok(u)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn persist_value_roundtrip_and_validation() {
        use electrifi_state::{PersistValue, SectionReader, SectionWriter, StateError};
        let u = UEtx::from_tx_counts(&[1, 2, 1, 4]).unwrap();
        let mut w = SectionWriter::new();
        u.encode(&mut w);
        let mut r = SectionReader::new("etx", w.bytes());
        let back = UEtx::decode(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(u, back);
        // A mean below 1 transmission per packet is impossible.
        let mut w = SectionWriter::new();
        UEtx {
            mean: 0.5,
            std: 0.0,
            packets: 3,
        }
        .encode(&mut w);
        let mut r = SectionReader::new("etx", w.bytes());
        assert!(matches!(
            UEtx::decode(&mut r),
            Err(StateError::Malformed { .. })
        ));
    }

    #[test]
    fn etx_formula() {
        assert_eq!(etx_from_delivery_ratios(1.0, 1.0), Some(1.0));
        assert_eq!(etx_from_delivery_ratios(0.5, 1.0), Some(2.0));
        assert_eq!(etx_from_delivery_ratios(0.5, 0.5), Some(4.0));
        assert_eq!(etx_from_delivery_ratios(0.0, 1.0), None);
        // Ratios above 1 are clamped.
        assert_eq!(etx_from_delivery_ratios(2.0, 1.0), Some(1.0));
    }

    #[test]
    fn delivery_ratio_basics() {
        assert_eq!(delivery_ratio(9, 1), 0.9);
        assert_eq!(delivery_ratio(0, 0), 0.0);
        assert_eq!(delivery_ratio(0, 10), 0.0);
    }

    #[test]
    fn uetx_from_counts() {
        let u = UEtx::from_tx_counts(&[1, 1, 2, 1, 3]).unwrap();
        assert!((u.mean - 1.6).abs() < 1e-12);
        assert!(u.std > 0.0);
        assert_eq!(u.packets, 5);
        assert!(UEtx::from_tx_counts(&[]).is_none());
    }

    #[test]
    fn expected_uetx_grows_with_pberr() {
        let clean = UEtx::expected_from_pberr(0.0, 3);
        assert!((clean - 1.0).abs() < 1e-12);
        let mut last = clean;
        for p10 in 1..9 {
            let p = p10 as f64 / 10.0;
            let u = UEtx::expected_from_pberr(p, 3);
            assert!(u > last, "non-monotone at p={p}");
            last = u;
        }
    }

    #[test]
    fn expected_uetx_is_near_linear_in_small_pberr() {
        // Fig. 22: U-ETX vs PBerr is almost linear. For small p,
        // E[tx] ≈ 1 + n·p.
        let n = 3;
        for p in [0.01, 0.05, 0.1] {
            let u = UEtx::expected_from_pberr(p, n);
            let linear = 1.0 + n as f64 * p;
            assert!((u - linear).abs() / linear < 0.1, "p={p}: {u} vs {linear}");
        }
    }

    #[test]
    fn more_pbs_more_retransmissions() {
        let u1 = UEtx::expected_from_pberr(0.1, 1);
        let u3 = UEtx::expected_from_pberr(0.1, 3);
        assert!(u3 > u1);
    }
}
