//! The IEEE 1905-style link-metric database.
//!
//! Stores, per directed link and per medium, the two metrics the standard
//! requires and the paper designs estimators for (§1: "We focus on two
//! metrics required by IEEE 1905: the PHY rate (capacity) and the packet
//! errors (loss rate)"). Because PLC links are **asymmetric** (§5), the
//! key is the *directed* pair — metrics must be estimated in both
//! directions.

use serde::{Deserialize, Serialize};
use simnet::time::{Duration, Time};
use std::collections::HashMap;

/// Network technology of a link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Medium {
    /// Power-line (IEEE 1901 / HomePlug AV).
    Plc,
    /// Wireless (802.11n).
    Wifi,
}

/// A directed link on a specific medium.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct LinkId {
    /// Source station.
    pub src: u16,
    /// Destination station.
    pub dst: u16,
    /// Technology.
    pub medium: Medium,
}

impl LinkId {
    /// The same link in the opposite direction.
    pub fn reversed(self) -> LinkId {
        LinkId {
            src: self.dst,
            dst: self.src,
            medium: self.medium,
        }
    }
}

// JSON object keys must be strings, so a `HashMap<LinkId, _>` needs an
// explicit string form for its keys: `"src->dst/Medium"`.
impl serde::MapKey for LinkId {
    fn to_key(&self) -> String {
        let medium = match self.medium {
            Medium::Plc => "Plc",
            Medium::Wifi => "Wifi",
        };
        format!("{}->{}/{}", self.src, self.dst, medium)
    }

    fn from_key(s: &str) -> Result<Self, serde::Error> {
        let err = || serde::Error::msg(format!("invalid LinkId key: {s:?}"));
        let (pair, medium) = s.split_once('/').ok_or_else(err)?;
        let (src, dst) = pair.split_once("->").ok_or_else(err)?;
        Ok(LinkId {
            src: src.parse().map_err(|_| err())?,
            dst: dst.parse().map_err(|_| err())?,
            medium: match medium {
                "Plc" => Medium::Plc,
                "Wifi" => Medium::Wifi,
                _ => return Err(err()),
            },
        })
    }
}

/// One link-metric record.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkMetric {
    /// Capacity estimate, Mb/s (BLE for PLC, MCS rate for WiFi).
    pub capacity_mbps: f64,
    /// Loss-rate metric (PBerr for PLC, MPDU error rate for WiFi), if
    /// known.
    pub loss_rate: Option<f64>,
    /// When the record was measured.
    pub updated_at: Time,
}

/// The metric database an IEEE 1905 abstraction layer would expose to
/// routing and load-balancing algorithms.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct LinkMetricsDb {
    records: HashMap<LinkId, LinkMetric>,
}

impl LinkMetricsDb {
    /// Empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert or replace the record for a link.
    pub fn update(&mut self, link: LinkId, metric: LinkMetric) {
        self.records.insert(link, metric);
    }

    /// Latest record for a link.
    pub fn get(&self, link: LinkId) -> Option<&LinkMetric> {
        self.records.get(&link)
    }

    /// Latest capacity, treating missing/stale records as unusable.
    /// `now` and `max_age` implement the staleness rule: metrics older
    /// than the probing policy allows must not drive forwarding.
    pub fn capacity(&self, link: LinkId, now: Time, max_age: Duration) -> Option<f64> {
        self.records.get(&link).and_then(|m| {
            if now.saturating_since(m.updated_at) <= max_age {
                Some(m.capacity_mbps)
            } else {
                None
            }
        })
    }

    /// Asymmetry ratio of a link: forward capacity over reverse capacity
    /// (`None` unless both directions are known). The paper observes
    /// ratios above 1.5 on ~30% of PLC pairs (§5).
    pub fn asymmetry(&self, link: LinkId) -> Option<f64> {
        let fwd = self.records.get(&link)?.capacity_mbps;
        let rev = self.records.get(&link.reversed())?.capacity_mbps;
        if rev <= 0.0 {
            return None;
        }
        Some(fwd / rev)
    }

    /// All links currently known.
    pub fn links(&self) -> impl Iterator<Item = (&LinkId, &LinkMetric)> {
        self.records.iter()
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

impl electrifi_state::PersistValue for Medium {
    fn encode(&self, w: &mut electrifi_state::SectionWriter) {
        w.put_u8(match self {
            Medium::Plc => 0,
            Medium::Wifi => 1,
        });
    }

    fn decode(
        r: &mut electrifi_state::SectionReader<'_>,
    ) -> Result<Self, electrifi_state::StateError> {
        match r.get_u8()? {
            0 => Ok(Medium::Plc),
            1 => Ok(Medium::Wifi),
            tag => Err(r.malformed(format!("medium tag {tag}"))),
        }
    }
}

impl electrifi_state::PersistValue for LinkId {
    fn encode(&self, w: &mut electrifi_state::SectionWriter) {
        w.put_u16(self.src);
        w.put_u16(self.dst);
        self.medium.encode(w);
    }

    fn decode(
        r: &mut electrifi_state::SectionReader<'_>,
    ) -> Result<Self, electrifi_state::StateError> {
        Ok(LinkId {
            src: r.get_u16()?,
            dst: r.get_u16()?,
            medium: Medium::decode(r)?,
        })
    }
}

impl electrifi_state::PersistValue for LinkMetric {
    fn encode(&self, w: &mut electrifi_state::SectionWriter) {
        w.put_f64(self.capacity_mbps);
        w.put(&self.loss_rate);
        w.put(&self.updated_at);
    }

    fn decode(
        r: &mut electrifi_state::SectionReader<'_>,
    ) -> Result<Self, electrifi_state::StateError> {
        Ok(LinkMetric {
            capacity_mbps: r.get_f64()?,
            loss_rate: r.get()?,
            updated_at: r.get()?,
        })
    }
}

/// Checkpointing: records are encoded sorted by `(src, dst, medium)` so
/// the byte stream is canonical regardless of hash-map iteration order.
impl electrifi_state::Persist for LinkMetricsDb {
    fn save_state(&self, w: &mut electrifi_state::SectionWriter) {
        use electrifi_state::PersistValue;
        let mut entries: Vec<(&LinkId, &LinkMetric)> = self.records.iter().collect();
        entries.sort_unstable_by_key(|(id, _)| {
            (
                id.src,
                id.dst,
                match id.medium {
                    Medium::Plc => 0u8,
                    Medium::Wifi => 1,
                },
            )
        });
        w.put_u64(entries.len() as u64);
        for (id, metric) in entries {
            id.encode(w);
            metric.encode(w);
        }
    }

    fn load_state(
        &mut self,
        r: &mut electrifi_state::SectionReader<'_>,
    ) -> Result<(), electrifi_state::StateError> {
        use electrifi_state::PersistValue;
        let n = r.get_u64()? as usize;
        self.records.clear();
        for _ in 0..n {
            let id = LinkId::decode(r)?;
            let metric = LinkMetric::decode(r)?;
            if self.records.insert(id, metric).is_some() {
                return Err(r.malformed(format!(
                    "duplicate link-metric record {}->{}",
                    id.src, id.dst
                )));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn link(src: u16, dst: u16) -> LinkId {
        LinkId {
            src,
            dst,
            medium: Medium::Plc,
        }
    }

    fn metric(cap: f64, at: Time) -> LinkMetric {
        LinkMetric {
            capacity_mbps: cap,
            loss_rate: Some(0.02),
            updated_at: at,
        }
    }

    #[test]
    fn persist_roundtrip_is_canonical() {
        use electrifi_state::{Persist, SectionReader, SectionWriter};
        let mut db = LinkMetricsDb::new();
        db.update(link(3, 1), metric(42.0, Time::from_secs(2)));
        db.update(link(0, 1), metric(100.0, Time::ZERO));
        db.update(
            LinkId {
                src: 0,
                dst: 1,
                medium: Medium::Wifi,
            },
            metric(65.0, Time::from_secs(1)),
        );
        let encode = |db: &LinkMetricsDb| {
            let mut w = SectionWriter::new();
            db.save_state(&mut w);
            w.into_bytes()
        };
        let bytes = encode(&db);
        let mut back = LinkMetricsDb::new();
        let mut r = SectionReader::new("metrics.db", &bytes);
        back.load_state(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(back.len(), 3);
        assert_eq!(back.get(link(0, 1)).unwrap().capacity_mbps, 100.0);
        assert_eq!(bytes, encode(&back), "re-encode must be byte-identical");
    }

    #[test]
    fn update_and_get() {
        let mut db = LinkMetricsDb::new();
        db.update(link(0, 1), metric(100.0, Time::ZERO));
        assert_eq!(db.get(link(0, 1)).unwrap().capacity_mbps, 100.0);
        assert!(db.get(link(1, 0)).is_none(), "directions are distinct");
        assert_eq!(db.len(), 1);
    }

    #[test]
    fn mediums_are_distinct() {
        let mut db = LinkMetricsDb::new();
        db.update(link(0, 1), metric(100.0, Time::ZERO));
        let wifi = LinkId {
            src: 0,
            dst: 1,
            medium: Medium::Wifi,
        };
        db.update(wifi, metric(65.0, Time::ZERO));
        assert_eq!(db.get(link(0, 1)).unwrap().capacity_mbps, 100.0);
        assert_eq!(db.get(wifi).unwrap().capacity_mbps, 65.0);
    }

    #[test]
    fn staleness_hides_old_records() {
        let mut db = LinkMetricsDb::new();
        db.update(link(0, 1), metric(100.0, Time::from_secs(10)));
        let max_age = Duration::from_secs(5);
        assert_eq!(
            db.capacity(link(0, 1), Time::from_secs(12), max_age),
            Some(100.0)
        );
        assert_eq!(db.capacity(link(0, 1), Time::from_secs(16), max_age), None);
    }

    #[test]
    fn asymmetry_needs_both_directions() {
        let mut db = LinkMetricsDb::new();
        db.update(link(0, 1), metric(90.0, Time::ZERO));
        assert!(db.asymmetry(link(0, 1)).is_none());
        db.update(link(1, 0), metric(45.0, Time::ZERO));
        assert_eq!(db.asymmetry(link(0, 1)), Some(2.0));
        assert_eq!(db.asymmetry(link(1, 0)), Some(0.5));
    }

    #[test]
    fn zero_reverse_capacity_gives_none() {
        let mut db = LinkMetricsDb::new();
        db.update(link(0, 1), metric(90.0, Time::ZERO));
        db.update(link(1, 0), metric(0.0, Time::ZERO));
        assert!(db.asymmetry(link(0, 1)).is_none());
    }
}
