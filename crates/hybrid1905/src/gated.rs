//! Probe-fed capacity estimation gated by the fault track's
//! probe-dropout windows.
//!
//! The abstraction layer only knows what its probes tell it (paper §4.3);
//! when a disturbance knocks the probing/sensing path out, the last
//! estimate goes **stale** rather than blank — exactly the failure mode
//! the `estimate-within` assertion quantifies. [`GatedEstimator`] models
//! that: probe observations arriving inside a dropout window are
//! discarded (and counted), so the held estimate diverges from delivered
//! throughput until probing resumes.

use electrifi_faults::DropoutProfile;
use electrifi_state::{Persist, SectionReader, SectionWriter, StateError};
use simnet::time::Time;

/// A capacity estimate fed by periodic probes and gated by an optional
/// probe-dropout profile.
#[derive(Debug, Clone, Default)]
pub struct GatedEstimator {
    /// The dropout windows; `None` means every probe lands.
    dropout: Option<DropoutProfile>,
    /// Last accepted probe value, Mb/s.
    estimate_mbps: Option<f64>,
    /// Probes discarded because they arrived inside a dropout window.
    holds: u64,
}

impl GatedEstimator {
    /// An estimator gated by `dropout` (`None` = never gated).
    pub fn new(dropout: Option<DropoutProfile>) -> GatedEstimator {
        GatedEstimator {
            dropout,
            estimate_mbps: None,
            holds: 0,
        }
    }

    /// Feed one probe observation taken at `t`. Returns `true` if the
    /// probe landed (estimate updated), `false` if it fell inside a
    /// dropout window (estimate held stale).
    pub fn observe(&mut self, t: Time, measured_mbps: f64) -> bool {
        if let Some(d) = &self.dropout {
            if d.is_dropped(t) {
                self.holds += 1;
                return false;
            }
        }
        self.estimate_mbps = Some(measured_mbps);
        true
    }

    /// The current estimate, `None` until the first probe lands.
    pub fn estimate_mbps(&self) -> Option<f64> {
        self.estimate_mbps
    }

    /// How many probes were discarded by dropout windows so far.
    pub fn holds(&self) -> u64 {
        self.holds
    }
}

impl Persist for GatedEstimator {
    fn save_state(&self, w: &mut SectionWriter) {
        // The dropout profile is configuration (recompiled from the
        // scenario on resume); only the measurement state persists.
        w.put(&self.estimate_mbps);
        w.put_u64(self.holds);
    }

    fn load_state(&mut self, r: &mut SectionReader<'_>) -> Result<(), StateError> {
        self.estimate_mbps = r.get()?;
        self.holds = r.get_u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn estimate_tracks_probes_then_holds_through_dropout() {
        let dropout = DropoutProfile {
            windows: vec![(
                Time::from_secs(10).as_nanos(),
                Time::from_secs(20).as_nanos(),
            )],
        };
        let mut e = GatedEstimator::new(Some(dropout));
        assert_eq!(e.estimate_mbps(), None);
        assert!(e.observe(Time::from_secs(5), 80.0));
        assert_eq!(e.estimate_mbps(), Some(80.0));
        // Inside the dropout the probe is lost and the estimate is stale.
        assert!(!e.observe(Time::from_secs(15), 20.0));
        assert_eq!(e.estimate_mbps(), Some(80.0));
        assert_eq!(e.holds(), 1);
        // After the window, probing resumes.
        assert!(e.observe(Time::from_secs(25), 60.0));
        assert_eq!(e.estimate_mbps(), Some(60.0));
    }

    #[test]
    fn ungated_estimator_accepts_everything() {
        let mut e = GatedEstimator::new(None);
        assert!(e.observe(Time::from_secs(1), 10.0));
        assert!(e.observe(Time::from_secs(2), 20.0));
        assert_eq!(e.holds(), 0);
    }

    #[test]
    fn persist_roundtrips_mid_dropout() {
        let dropout = DropoutProfile {
            windows: vec![(0, Time::from_secs(100).as_nanos())],
        };
        let mut e = GatedEstimator::new(Some(dropout.clone()));
        e.observe(Time::from_secs(1), 42.0); // dropped
        let mut w = SectionWriter::new();
        e.save_state(&mut w);
        let bytes = w.into_bytes();
        let mut resumed = GatedEstimator::new(Some(dropout));
        let mut r = SectionReader::new("gated", &bytes);
        resumed.load_state(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(resumed.estimate_mbps(), e.estimate_mbps());
        assert_eq!(resumed.holds(), 1);
    }
}
