//! Probing policies and the accuracy/overhead tradeoff.
//!
//! Probing every link of an n-station network costs O(n²) (paper §4.3);
//! the paper's remedy is to adapt the probing interval to link quality
//! (§7.3): **bad** links (BLE < 60 Mb/s) keep the 5-second baseline,
//! **average** links are probed 8× slower, **good** links (BLE >
//! 100 Mb/s) 16× slower — justified by the §6.2 finding that link quality
//! and link-metric variability are negatively correlated.
//!
//! [`evaluate_policy`] reproduces the paper's evaluation (Fig. 19): replay
//! a 50 ms-resolution BLE trace, take the probe value as the estimate for
//! the whole interval, and score the absolute error against the interval's
//! true mean: `|BLE_t − Σ_{l=t}^{t+i-1} BLE_l / i|`.

use serde::{Deserialize, Serialize};
use simnet::time::Duration;
use simnet::trace::Series;

/// Wire size of one probe packet (the paper probes with 1500-byte UDP
/// packets at 150 kb/s, §6.1) — used to convert probe counts into
/// overhead bytes in the metrics registry.
pub const PROBE_BYTES: u64 = 1500;

/// A link-probing policy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ProbingPolicy {
    /// Probe every link at the same fixed interval.
    Fixed(Duration),
    /// The paper's method: adapt the interval to link quality.
    QualityAdaptive {
        /// Interval for bad links (the baseline; the paper uses 5 s).
        base: Duration,
        /// Slow-down multiplier for average links (paper: 8).
        average_mult: u32,
        /// Slow-down multiplier for good links (paper: 16).
        good_mult: u32,
        /// Links with average BLE below this are bad (paper: 60 Mb/s).
        bad_below_mbps: f64,
        /// Links with average BLE above this are good (paper: 100 Mb/s).
        good_above_mbps: f64,
    },
}

impl ProbingPolicy {
    /// The paper's §7.3 configuration.
    pub fn paper_adaptive() -> Self {
        ProbingPolicy::QualityAdaptive {
            base: Duration::from_secs(5),
            average_mult: 8,
            good_mult: 16,
            bad_below_mbps: 60.0,
            good_above_mbps: 100.0,
        }
    }

    /// Probing interval for a link whose long-run average BLE is
    /// `avg_ble_mbps`.
    pub fn interval_for(&self, avg_ble_mbps: f64) -> Duration {
        match *self {
            ProbingPolicy::Fixed(d) => d,
            ProbingPolicy::QualityAdaptive {
                base,
                average_mult,
                good_mult,
                bad_below_mbps,
                good_above_mbps,
            } => {
                if avg_ble_mbps < bad_below_mbps {
                    base
                } else if avg_ble_mbps > good_above_mbps {
                    base * good_mult as u64
                } else {
                    base * average_mult as u64
                }
            }
        }
    }
}

/// Result of evaluating a policy over a set of link traces.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PolicyEvaluation {
    /// Absolute estimation errors (Mb/s), one per estimation instant per
    /// link — the sample behind the Fig. 19 CDF.
    pub errors_mbps: Vec<f64>,
    /// Total probes sent across all links.
    pub probes: u64,
    /// Total trace duration × links (probe-opportunity normalization).
    pub total_link_seconds: f64,
}

impl PolicyEvaluation {
    /// Average probing rate in probes per link-second.
    pub fn probe_rate(&self) -> f64 {
        self.probes as f64 / self.total_link_seconds
    }

    /// Overhead reduction versus another evaluation (e.g. the 5 s
    /// baseline): `1 − probes/base.probes`.
    pub fn overhead_reduction_vs(&self, base: &PolicyEvaluation) -> f64 {
        if base.probes == 0 {
            return 0.0;
        }
        1.0 - self.probes as f64 / base.probes as f64
    }
}

/// Replay `traces` (one BLE series per link, ideally sampled every 50 ms
/// as in §6.2) under `policy`: at each probe instant the estimate is the
/// probed BLE, the truth is the mean BLE until the next probe, and the
/// error is their absolute difference.
pub fn evaluate_policy(policy: ProbingPolicy, traces: &[Series]) -> PolicyEvaluation {
    let _span = simnet::obs::span::enter("hybrid.probe_eval");
    let mut errors = Vec::new();
    let mut probes = 0u64;
    let mut total_link_seconds = 0.0;
    for series in traces {
        let pts = series.points();
        if pts.len() < 2 {
            continue;
        }
        let avg = series.stats().mean();
        let interval = policy.interval_for(avg);
        let span = pts.last().expect("len>=2").0 - pts[0].0;
        total_link_seconds += span.as_secs_f64();
        let mut idx = 0usize;
        while idx < pts.len() {
            let (t0, probe_value) = pts[idx];
            probes += 1;
            let window_end = t0 + interval;
            let mut sum = 0.0;
            let mut n = 0usize;
            let mut j = idx;
            while j < pts.len() && pts[j].0 < window_end {
                sum += pts[j].1;
                n += 1;
                j += 1;
            }
            if n > 0 {
                errors.push((probe_value - sum / n as f64).abs());
            }
            if j == idx {
                break;
            }
            idx = j;
        }
    }
    // Account the probing cost in the ambient metrics registry (inert
    // bookkeeping; the evaluation itself is untouched).
    let obs = simnet::obs::current();
    let reg = obs.registry();
    reg.counter("hybrid.probe.count").add(probes);
    reg.counter("hybrid.probe.overhead_bytes")
        .add(probes * PROBE_BYTES);
    PolicyEvaluation {
        errors_mbps: errors,
        probes,
        total_link_seconds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::time::Time;

    #[test]
    fn paper_policy_intervals() {
        let p = ProbingPolicy::paper_adaptive();
        assert_eq!(p.interval_for(30.0), Duration::from_secs(5));
        assert_eq!(p.interval_for(80.0), Duration::from_secs(40));
        assert_eq!(p.interval_for(120.0), Duration::from_secs(80));
    }

    #[test]
    fn fixed_policy_ignores_quality() {
        let p = ProbingPolicy::Fixed(Duration::from_secs(7));
        for ble in [10.0, 80.0, 140.0] {
            assert_eq!(p.interval_for(ble), Duration::from_secs(7));
        }
    }

    fn flat_series(value: f64, seconds: u64) -> Series {
        let mut s = Series::new("flat");
        for i in 0..(seconds * 20) {
            s.push(Time::from_millis(i * 50), value);
        }
        s
    }

    fn ramp_series(start: f64, slope_per_s: f64, seconds: u64) -> Series {
        let mut s = Series::new("ramp");
        for i in 0..(seconds * 20) {
            let t = i as f64 * 0.05;
            s.push(Time::from_millis(i * 50), start + slope_per_s * t);
        }
        s
    }

    #[test]
    fn flat_trace_has_zero_error() {
        let eval = evaluate_policy(
            ProbingPolicy::Fixed(Duration::from_secs(5)),
            &[flat_series(100.0, 60)],
        );
        assert!(eval.errors_mbps.iter().all(|e| *e < 1e-9));
        assert!(eval.probes >= 12);
    }

    #[test]
    fn longer_intervals_give_larger_errors_on_varying_trace() {
        let trace = vec![ramp_series(50.0, 1.0, 160)];
        let short = evaluate_policy(ProbingPolicy::Fixed(Duration::from_secs(5)), &trace);
        let long = evaluate_policy(ProbingPolicy::Fixed(Duration::from_secs(80)), &trace);
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!(
            mean(&long.errors_mbps) > mean(&short.errors_mbps),
            "long={} short={}",
            mean(&long.errors_mbps),
            mean(&short.errors_mbps)
        );
        assert!(long.probes < short.probes);
    }

    #[test]
    fn adaptive_policy_cuts_overhead_on_good_links() {
        // Two good links, one bad link: the adaptive policy probes the
        // good ones 16x slower.
        let traces = vec![
            flat_series(120.0, 160),
            flat_series(130.0, 160),
            flat_series(30.0, 160),
        ];
        let base = evaluate_policy(ProbingPolicy::Fixed(Duration::from_secs(5)), &traces);
        let ours = evaluate_policy(ProbingPolicy::paper_adaptive(), &traces);
        let reduction = ours.overhead_reduction_vs(&base);
        assert!(
            reduction > 0.5,
            "reduction={reduction} (2 of 3 links slowed 16x)"
        );
    }

    #[test]
    fn probe_rate_normalizes_by_span() {
        let eval = evaluate_policy(
            ProbingPolicy::Fixed(Duration::from_secs(5)),
            &[flat_series(100.0, 100)],
        );
        // ~1 probe per 5 link-seconds.
        assert!(
            (eval.probe_rate() - 0.2).abs() < 0.05,
            "{}",
            eval.probe_rate()
        );
    }

    #[test]
    fn empty_traces_are_ignored() {
        let eval = evaluate_policy(ProbingPolicy::paper_adaptive(), &[Series::new("empty")]);
        assert_eq!(eval.probes, 0);
        assert!(eval.errors_mbps.is_empty());
    }
}
