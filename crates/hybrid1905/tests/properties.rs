//! Property-based tests for the hybrid abstraction layer.

use hybrid1905::balancer::{combine_streams, SplitStrategy};
use hybrid1905::etx::{delivery_ratio, etx_from_delivery_ratios, UEtx};
use hybrid1905::probing::{evaluate_policy, ProbingPolicy};
use proptest::prelude::*;
use simnet::time::{Duration, Time};
use simnet::trace::Series;

fn timeline(gaps: &[u64]) -> Vec<Time> {
    let mut t = 0u64;
    gaps.iter()
        .map(|&g| {
            t += g + 1;
            Time::from_micros(t)
        })
        .collect()
}

proptest! {
    /// The in-order receiver releases packets at non-decreasing times no
    /// earlier than their medium delivery, for any timelines, strategy
    /// and stream length.
    #[test]
    fn combined_release_is_monotone(
        gaps_a in proptest::collection::vec(0u64..500, 0..200),
        gaps_b in proptest::collection::vec(0u64..500, 0..200),
        p in 0f64..1.0,
        rr in any::<bool>(),
        total in 0usize..500,
        seed in any::<u64>(),
    ) {
        let a = timeline(&gaps_a);
        let b = timeline(&gaps_b);
        let strategy = if rr {
            SplitStrategy::RoundRobin
        } else {
            SplitStrategy::Weighted { p_first: p }
        };
        let out = combine_streams(&a, &b, strategy, total, seed);
        prop_assert!(out.release_times.len() + out.undelivered as usize <= total.max(out.release_times.len()));
        for w in out.release_times.windows(2) {
            prop_assert!(w[1] >= w[0]);
        }
        // Conservation: released + undelivered-cutoff ≤ total.
        prop_assert!(out.release_times.len() <= total);
        prop_assert!(out.to_first as usize <= total);
    }

    /// A stream combined with an empty second medium at weight 1 is the
    /// prefix-monotone closure of the first medium's timeline.
    #[test]
    fn single_medium_passthrough(gaps in proptest::collection::vec(0u64..100, 1..100)) {
        let a = timeline(&gaps);
        let out = combine_streams(&a, &[], SplitStrategy::Weighted { p_first: 1.0 }, a.len(), 3);
        prop_assert_eq!(out.release_times.len(), a.len());
        for (r, d) in out.release_times.iter().zip(&a) {
            prop_assert!(r >= d);
        }
        prop_assert_eq!(out.undelivered, 0);
    }

    /// ETX formula: ≥ 1, symmetric in its arguments, monotone in loss.
    #[test]
    fn etx_properties(df in 0.01f64..1.0, dr in 0.01f64..1.0) {
        let e = etx_from_delivery_ratios(df, dr).expect("positive ratios");
        prop_assert!(e >= 1.0 - 1e-12);
        prop_assert_eq!(e, etx_from_delivery_ratios(dr, df).unwrap());
        let worse = etx_from_delivery_ratios(df * 0.9, dr).unwrap();
        prop_assert!(worse >= e);
    }

    /// Delivery ratio is a probability and consistent with its counters.
    #[test]
    fn delivery_ratio_bounds(recv in 0u64..10_000, lost in 0u64..10_000) {
        let r = delivery_ratio(recv, lost);
        prop_assert!((0.0..=1.0).contains(&r));
        if recv + lost > 0 {
            prop_assert!((r * (recv + lost) as f64 - recv as f64).abs() < 1e-6);
        }
    }

    /// Expected U-ETX from PBerr: ≥1, monotone in both PBerr and packet
    /// size.
    #[test]
    fn expected_uetx_monotone(p in 0f64..0.9, n in 1u32..10) {
        let u = UEtx::expected_from_pberr(p, n);
        prop_assert!(u >= 1.0);
        prop_assert!(UEtx::expected_from_pberr(p + 0.05, n) >= u);
        prop_assert!(UEtx::expected_from_pberr(p, n + 1) >= u);
    }

    /// The probing evaluator conserves probes: intervals never produce
    /// more probes than samples, and a finer policy never probes less.
    #[test]
    fn probing_overhead_ordering(values in proptest::collection::vec(10f64..150.0, 40..400)) {
        let mut s = Series::new("ble");
        for (i, v) in values.iter().enumerate() {
            s.push(Time::from_millis(50 * i as u64), *v);
        }
        let traces = vec![s];
        let fine = evaluate_policy(ProbingPolicy::Fixed(Duration::from_secs(1)), &traces);
        let coarse = evaluate_policy(ProbingPolicy::Fixed(Duration::from_secs(10)), &traces);
        prop_assert!(fine.probes >= coarse.probes);
        prop_assert!(fine.probes as usize <= values.len());
        // Errors are non-negative.
        prop_assert!(fine.errors_mbps.iter().all(|e| *e >= 0.0));
        prop_assert!(coarse.errors_mbps.iter().all(|e| *e >= 0.0));
    }
}
