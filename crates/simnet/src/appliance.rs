//! Electrical appliances: the actors behind PLC channel variation.
//!
//! The paper attributes *spatial* variation to the impedance of appliances
//! attached between transmitter and receiver (impedance mismatches create
//! multipath reflections, §5), and *temporal* variation to the noise those
//! appliances inject — mains-synchronous noise within the cycle (§6.1),
//! noise-level fluctuation across cycles (§6.2), and switching appliances
//! on/off over minutes-to-hours (§6.3, driven by human activity).
//!
//! Each appliance therefore carries:
//! * an **impedance** (how strong a reflection point it is when on),
//! * a **noise profile** (broadband level + mains-synchronous component +
//!   impulsive event rate),
//! * a reference to a [`crate::schedule::Schedule`] saying when it is on.

use serde::{Deserialize, Serialize};

/// Categories of appliances found in the office testbed, each with a
/// distinct electrical signature (impedances and noise levels are
/// representative values from the PLC noise-measurement literature, e.g.
/// Guzelgoz et al. 2010 which the paper cites as \[9\]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ApplianceKind {
    /// Fluorescent/halogen office lighting bank; strong mains-synchronous
    /// noise near the zero crossings, switched off building-wide at 9 pm.
    Lighting,
    /// Desktop computer with a switched-mode PSU: broadband noise, moderate
    /// impedance mismatch.
    DesktopPc,
    /// LCD monitor: mild noise, mild mismatch.
    Monitor,
    /// Laser printer: large transient load, strong impulsive noise when
    /// active.
    LaserPrinter,
    /// Coffee machine: resistive heater, heavy load when on, bursty duty
    /// cycle around breaks.
    CoffeeMachine,
    /// Refrigerator: compressor duty cycle around the clock; impulsive
    /// noise at compressor starts.
    Fridge,
    /// Phone/laptop charger: tiny switched-mode supply, high-frequency
    /// noise, small mismatch.
    Charger,
    /// Microwave oven: severe broadband noise while running, short runs.
    Microwave,
    /// Network/IT equipment (switches, routers): always on, stable mild
    /// noise.
    ItEquipment,
    /// Electric space heater: near-short impedance when on, quiet
    /// otherwise; strong attenuator of nearby signals.
    SpaceHeater,
}

/// Electrical signature of an appliance.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ApplianceProfile {
    /// Impedance magnitude (ohms) presented to the line when the appliance
    /// is ON. The cable's characteristic impedance is ~85 Ω; values far
    /// from it create strong reflections.
    pub impedance_on_ohms: f64,
    /// Impedance magnitude when OFF (most devices look near-open).
    pub impedance_off_ohms: f64,
    /// Broadband noise the appliance injects when on, as a dB increase over
    /// the ambient line-noise floor measured *at the appliance's outlet*.
    pub noise_db: f64,
    /// Extra noise in the mains-synchronous peaks (dB above the appliance's
    /// own broadband level). Drives invariance-scale (tone-map-slot)
    /// variation.
    pub sync_noise_db: f64,
    /// Phase (0..1 of the half mains cycle) where the synchronous noise
    /// peaks.
    pub sync_phase: f64,
    /// Mean rate of impulsive noise events while on (events per second).
    pub impulse_rate_hz: f64,
}

impl ApplianceKind {
    /// The canonical electrical signature of this appliance kind.
    pub fn profile(self) -> ApplianceProfile {
        use ApplianceKind::*;
        match self {
            Lighting => ApplianceProfile {
                impedance_on_ohms: 25.0,
                impedance_off_ohms: 1e5,
                noise_db: 6.0,
                sync_noise_db: 8.0,
                sync_phase: 0.05,
                impulse_rate_hz: 0.0,
            },
            DesktopPc => ApplianceProfile {
                impedance_on_ohms: 40.0,
                impedance_off_ohms: 5e4,
                noise_db: 5.0,
                sync_noise_db: 2.0,
                sync_phase: 0.35,
                impulse_rate_hz: 0.02,
            },
            Monitor => ApplianceProfile {
                impedance_on_ohms: 120.0,
                impedance_off_ohms: 8e4,
                noise_db: 2.5,
                sync_noise_db: 1.0,
                sync_phase: 0.5,
                impulse_rate_hz: 0.0,
            },
            LaserPrinter => ApplianceProfile {
                impedance_on_ohms: 15.0,
                impedance_off_ohms: 4e4,
                noise_db: 7.0,
                sync_noise_db: 3.0,
                sync_phase: 0.6,
                impulse_rate_hz: 0.2,
            },
            CoffeeMachine => ApplianceProfile {
                impedance_on_ohms: 12.0,
                impedance_off_ohms: 6e4,
                noise_db: 4.0,
                sync_noise_db: 1.5,
                sync_phase: 0.2,
                impulse_rate_hz: 0.05,
            },
            Fridge => ApplianceProfile {
                impedance_on_ohms: 30.0,
                impedance_off_ohms: 30.0, // compressor cycles, plug stays loaded
                noise_db: 4.5,
                sync_noise_db: 2.0,
                sync_phase: 0.8,
                impulse_rate_hz: 0.01,
            },
            Charger => ApplianceProfile {
                impedance_on_ohms: 300.0,
                impedance_off_ohms: 1e5,
                noise_db: 3.0,
                sync_noise_db: 4.0,
                sync_phase: 0.15,
                impulse_rate_hz: 0.0,
            },
            Microwave => ApplianceProfile {
                impedance_on_ohms: 8.0,
                impedance_off_ohms: 7e4,
                noise_db: 12.0,
                sync_noise_db: 5.0,
                sync_phase: 0.45,
                impulse_rate_hz: 0.5,
            },
            ItEquipment => ApplianceProfile {
                impedance_on_ohms: 60.0,
                impedance_off_ohms: 60.0,
                noise_db: 2.0,
                sync_noise_db: 0.5,
                sync_phase: 0.7,
                impulse_rate_hz: 0.0,
            },
            SpaceHeater => ApplianceProfile {
                impedance_on_ohms: 5.0,
                impedance_off_ohms: 9e4,
                noise_db: 1.0,
                sync_noise_db: 0.5,
                sync_phase: 0.9,
                impulse_rate_hz: 0.01,
            },
        }
    }

    /// All kinds, for enumeration in tests and generators.
    pub const ALL: [ApplianceKind; 10] = [
        ApplianceKind::Lighting,
        ApplianceKind::DesktopPc,
        ApplianceKind::Monitor,
        ApplianceKind::LaserPrinter,
        ApplianceKind::CoffeeMachine,
        ApplianceKind::Fridge,
        ApplianceKind::Charger,
        ApplianceKind::Microwave,
        ApplianceKind::ItEquipment,
        ApplianceKind::SpaceHeater,
    ];
}

/// Reflection coefficient magnitude for an appliance impedance `z` against
/// the line's characteristic impedance `z0`: `|Γ| = |z − z0| / (z + z0)`.
///
/// A matched load (z = z0) reflects nothing; a near-short (heater) or
/// near-open (idle charger) reflects strongly. Reflections feed the
/// multipath model in `plc-phy`.
pub fn reflection_coefficient(z: f64, z0: f64) -> f64 {
    debug_assert!(z > 0.0 && z0 > 0.0);
    ((z - z0) / (z + z0)).abs()
}

/// Characteristic impedance assumed for indoor mains cable (ohms).
pub const CABLE_Z0_OHMS: f64 = 85.0;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_are_physical() {
        for kind in ApplianceKind::ALL {
            let p = kind.profile();
            assert!(p.impedance_on_ohms > 0.0, "{kind:?}");
            assert!(p.impedance_off_ohms > 0.0, "{kind:?}");
            assert!(p.noise_db >= 0.0, "{kind:?}");
            assert!(p.sync_noise_db >= 0.0, "{kind:?}");
            assert!((0.0..1.0).contains(&p.sync_phase), "{kind:?}");
            assert!(p.impulse_rate_hz >= 0.0, "{kind:?}");
        }
    }

    #[test]
    fn reflection_is_zero_when_matched() {
        assert_eq!(reflection_coefficient(CABLE_Z0_OHMS, CABLE_Z0_OHMS), 0.0);
    }

    #[test]
    fn reflection_grows_with_mismatch() {
        let matched = reflection_coefficient(90.0, CABLE_Z0_OHMS);
        let heater = reflection_coefficient(5.0, CABLE_Z0_OHMS);
        let open = reflection_coefficient(1e5, CABLE_Z0_OHMS);
        assert!(matched < 0.05);
        assert!(heater > 0.8);
        assert!(open > 0.99);
        assert!(heater < 1.0 && open < 1.0);
    }

    #[test]
    fn heater_reflects_more_on_than_off_affects_channel() {
        let p = ApplianceKind::SpaceHeater.profile();
        let on = reflection_coefficient(p.impedance_on_ohms, CABLE_Z0_OHMS);
        let off = reflection_coefficient(p.impedance_off_ohms, CABLE_Z0_OHMS);
        // Both reflect strongly but in opposite directions; the *change*
        // between states is what shifts the channel at the random scale.
        assert!(on > 0.8 && off > 0.9);
    }

    #[test]
    fn microwave_is_noisiest() {
        let micro = ApplianceKind::Microwave.profile().noise_db;
        for kind in ApplianceKind::ALL {
            assert!(kind.profile().noise_db <= micro);
        }
    }
}
