//! Reproducible randomness.
//!
//! Every stochastic component of the simulator (each link's noise process,
//! each appliance schedule, each MAC backoff...) draws from its **own named
//! stream**, derived from a master seed and a label. This gives two
//! essential properties:
//!
//! 1. **Reproducibility** — the same master seed replays the same run.
//! 2. **Insensitivity** — adding a new consumer does not perturb the draws
//!    of existing consumers, so experiments stay comparable as the model
//!    grows.
//!
//! Only `rand`'s core traits are used; the distributions the channel models
//! need (normal, lognormal, exponential, Rayleigh, Poisson) are implemented
//! here from uniform draws, so no extra dependency is required.

use electrifi_state::{Persist, PersistValue, SectionReader, SectionWriter, StateError};
use rand::rngs::StdRng;
use rand::{Rng, RngExt, SeedableRng};

/// FNV-1a 64-bit hash, used to derive per-label stream seeds.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// SplitMix64 finalizer: decorrelates seed material.
fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A factory of independently-seeded random streams.
#[derive(Debug, Clone)]
pub struct RngPool {
    master: u64,
}

impl RngPool {
    /// Create a pool from a master seed.
    pub fn new(master_seed: u64) -> Self {
        RngPool {
            master: master_seed,
        }
    }

    /// The master seed this pool was built from.
    pub fn master_seed(&self) -> u64 {
        self.master
    }

    /// Derive a stream for a string label (e.g. `"link:3-8:noise"`).
    pub fn stream(&self, label: &str) -> StdRng {
        StdRng::seed_from_u64(splitmix(self.master ^ fnv1a(label.as_bytes())))
    }

    /// Derive a stream for a label plus numeric discriminants, avoiding
    /// string formatting in hot paths.
    pub fn stream_n(&self, label: &str, a: u64, b: u64) -> StdRng {
        let mixed = splitmix(self.master ^ fnv1a(label.as_bytes()))
            ^ splitmix(a.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(b));
        StdRng::seed_from_u64(splitmix(mixed))
    }

    /// Derive a sub-pool: useful to hand a component its own namespace.
    pub fn subpool(&self, label: &str) -> RngPool {
        RngPool {
            master: splitmix(self.master ^ fnv1a(label.as_bytes())),
        }
    }
}

/// Distribution sampling helpers over any [`Rng`].
///
/// All methods take `&mut R` so they compose with both owned streams and
/// borrowed ones.
pub struct Distributions;

impl Distributions {
    /// Uniform in `[0, 1)`, never exactly 1.
    pub fn uniform<R: Rng + ?Sized>(rng: &mut R) -> f64 {
        rng.random::<f64>()
    }

    /// Uniform in `[lo, hi)`.
    pub fn uniform_in<R: Rng + ?Sized>(rng: &mut R, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * Self::uniform(rng)
    }

    /// Standard normal via Box–Muller. One value per call (the pair's
    /// second member is discarded for statelessness).
    pub fn std_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
        loop {
            let u1 = Self::uniform(rng);
            if u1 > 1e-300 {
                let u2 = Self::uniform(rng);
                return (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
            }
        }
    }

    /// Normal with the given mean and standard deviation.
    pub fn normal<R: Rng + ?Sized>(rng: &mut R, mean: f64, std: f64) -> f64 {
        mean + std * Self::std_normal(rng)
    }

    /// Lognormal: `exp(N(mu, sigma))`.
    pub fn lognormal<R: Rng + ?Sized>(rng: &mut R, mu: f64, sigma: f64) -> f64 {
        Self::normal(rng, mu, sigma).exp()
    }

    /// Exponential with rate `lambda` (mean `1/lambda`).
    pub fn exponential<R: Rng + ?Sized>(rng: &mut R, lambda: f64) -> f64 {
        debug_assert!(lambda > 0.0);
        let u = loop {
            let u = Self::uniform(rng);
            if u > 1e-300 {
                break u;
            }
        };
        -u.ln() / lambda
    }

    /// Rayleigh with scale `sigma` (multipath amplitude fading).
    pub fn rayleigh<R: Rng + ?Sized>(rng: &mut R, sigma: f64) -> f64 {
        debug_assert!(sigma > 0.0);
        let u = loop {
            let u = Self::uniform(rng);
            if u < 1.0 - 1e-300 {
                break u;
            }
        };
        sigma * (-2.0 * (1.0 - u).ln()).sqrt()
    }

    /// Poisson-distributed count with the given mean (Knuth's method for
    /// small means, normal approximation above 30).
    pub fn poisson<R: Rng + ?Sized>(rng: &mut R, mean: f64) -> u64 {
        debug_assert!(mean >= 0.0);
        if mean <= 0.0 {
            return 0;
        }
        if mean > 30.0 {
            return Self::normal(rng, mean, mean.sqrt()).round().max(0.0) as u64;
        }
        let l = (-mean).exp();
        let mut k = 0u64;
        let mut p = 1.0;
        loop {
            p *= Self::uniform(rng);
            if p <= l {
                return k;
            }
            k += 1;
        }
    }

    /// Bernoulli trial with success probability `p` (clamped to `[0,1]`).
    pub fn bernoulli<R: Rng + ?Sized>(rng: &mut R, p: f64) -> bool {
        Self::uniform(rng) < p.clamp(0.0, 1.0)
    }

    /// Pick an index in `0..weights.len()` with probability proportional to
    /// the weights. All-zero or empty weights return `None`.
    pub fn weighted_index<R: Rng + ?Sized>(rng: &mut R, weights: &[f64]) -> Option<usize> {
        let total: f64 = weights.iter().filter(|w| w.is_finite() && **w > 0.0).sum();
        if total <= 0.0 {
            return None;
        }
        let mut x = Self::uniform(rng) * total;
        for (i, &w) in weights.iter().enumerate() {
            if w.is_finite() && w > 0.0 {
                if x < w {
                    return Some(i);
                }
                x -= w;
            }
        }
        // Floating-point slack: return the last positive-weight index.
        weights.iter().rposition(|w| w.is_finite() && *w > 0.0)
    }
}

/// A first-order Gauss–Markov (AR(1)) process: the workhorse for temporally
/// correlated channel fluctuations.
///
/// `x[k+1] = mean + rho * (x[k] - mean) + sqrt(1 - rho^2) * sigma * N(0,1)`
///
/// With `rho` derived from a correlation time, the process has stationary
/// standard deviation `sigma` regardless of the step size.
#[derive(Debug, Clone)]
pub struct GaussMarkov {
    mean: f64,
    sigma: f64,
    corr_time_s: f64,
    state: f64,
}

impl GaussMarkov {
    /// Create a process with stationary `mean`, standard deviation `sigma`
    /// and correlation time `corr_time_s` seconds, started at the mean.
    pub fn new(mean: f64, sigma: f64, corr_time_s: f64) -> Self {
        debug_assert!(sigma >= 0.0 && corr_time_s > 0.0);
        GaussMarkov {
            mean,
            sigma,
            corr_time_s,
            state: mean,
        }
    }

    /// Current value.
    pub fn value(&self) -> f64 {
        self.state
    }

    /// Stationary mean.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Re-target the stationary mean (e.g. when the electrical load
    /// changes), keeping the current state so the process relaxes toward
    /// the new mean over the correlation time.
    pub fn set_mean(&mut self, mean: f64) {
        self.mean = mean;
    }

    /// Re-target the stationary standard deviation.
    pub fn set_sigma(&mut self, sigma: f64) {
        self.sigma = sigma.max(0.0);
    }

    /// Advance the process by `dt_s` seconds and return the new value.
    pub fn step<R: Rng + ?Sized>(&mut self, rng: &mut R, dt_s: f64) -> f64 {
        debug_assert!(dt_s >= 0.0);
        let rho = (-dt_s / self.corr_time_s).exp();
        let innovation = (1.0 - rho * rho).max(0.0).sqrt() * self.sigma;
        self.state = self.mean
            + rho * (self.state - self.mean)
            + innovation * Distributions::std_normal(rng);
        self.state
    }
}

impl PersistValue for GaussMarkov {
    fn encode(&self, w: &mut SectionWriter) {
        w.put_f64(self.mean);
        w.put_f64(self.sigma);
        w.put_f64(self.corr_time_s);
        w.put_f64(self.state);
    }

    fn decode(r: &mut SectionReader<'_>) -> Result<Self, StateError> {
        let gm = GaussMarkov {
            mean: r.get_f64()?,
            sigma: r.get_f64()?,
            corr_time_s: r.get_f64()?,
            state: r.get_f64()?,
        };
        if gm.corr_time_s.is_nan() || gm.corr_time_s <= 0.0 || gm.sigma.is_nan() || gm.sigma < 0.0 {
            return Err(r.malformed(format!(
                "Gauss-Markov parameters out of range: sigma={} corr_time_s={}",
                gm.sigma, gm.corr_time_s
            )));
        }
        Ok(gm)
    }
}

impl Persist for GaussMarkov {
    fn save_state(&self, w: &mut SectionWriter) {
        self.encode(w);
    }
    fn load_state(&mut self, r: &mut SectionReader<'_>) -> Result<(), StateError> {
        *self = GaussMarkov::decode(r)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_reproducible() {
        let pool = RngPool::new(42);
        let a: Vec<f64> = {
            let mut r = pool.stream("x");
            (0..8).map(|_| Distributions::uniform(&mut r)).collect()
        };
        let b: Vec<f64> = {
            let mut r = pool.stream("x");
            (0..8).map(|_| Distributions::uniform(&mut r)).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn streams_differ_by_label_and_seed() {
        let pool = RngPool::new(42);
        let mut rx = pool.stream("x");
        let mut ry = pool.stream("y");
        let x: f64 = Distributions::uniform(&mut rx);
        let y: f64 = Distributions::uniform(&mut ry);
        assert_ne!(x, y);
        let other = RngPool::new(43);
        let mut rz = other.stream("x");
        assert_ne!(x, Distributions::uniform(&mut rz));
    }

    #[test]
    fn stream_n_discriminates() {
        let pool = RngPool::new(7);
        let mut a = pool.stream_n("link", 1, 2);
        let mut b = pool.stream_n("link", 2, 1);
        assert_ne!(
            Distributions::uniform(&mut a),
            Distributions::uniform(&mut b)
        );
    }

    #[test]
    fn normal_moments() {
        let pool = RngPool::new(1);
        let mut r = pool.stream("normal");
        let n = 20_000;
        let samples: Vec<f64> = (0..n)
            .map(|_| Distributions::normal(&mut r, 3.0, 2.0))
            .collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.1, "mean={mean}");
        assert!((var.sqrt() - 2.0).abs() < 0.1, "std={}", var.sqrt());
    }

    #[test]
    fn exponential_mean() {
        let pool = RngPool::new(2);
        let mut r = pool.stream("exp");
        let n = 20_000;
        let mean = (0..n)
            .map(|_| Distributions::exponential(&mut r, 0.5))
            .sum::<f64>()
            / n as f64;
        assert!((mean - 2.0).abs() < 0.1, "mean={mean}");
    }

    #[test]
    fn poisson_mean_small_and_large() {
        let pool = RngPool::new(3);
        let mut r = pool.stream("poisson");
        for target in [0.5, 4.0, 80.0] {
            let n = 10_000;
            let mean = (0..n)
                .map(|_| Distributions::poisson(&mut r, target) as f64)
                .sum::<f64>()
                / n as f64;
            assert!(
                (mean - target).abs() < 0.15 * target.max(1.0),
                "target={target} mean={mean}"
            );
        }
    }

    #[test]
    fn weighted_index_respects_weights() {
        let pool = RngPool::new(4);
        let mut r = pool.stream("w");
        let weights = [1.0, 0.0, 3.0];
        let mut counts = [0usize; 3];
        for _ in 0..40_000 {
            counts[Distributions::weighted_index(&mut r, &weights).unwrap()] += 1;
        }
        assert_eq!(counts[1], 0);
        let ratio = counts[2] as f64 / counts[0] as f64;
        assert!((ratio - 3.0).abs() < 0.3, "ratio={ratio}");
    }

    #[test]
    fn weighted_index_degenerate() {
        let pool = RngPool::new(5);
        let mut r = pool.stream("w");
        assert_eq!(Distributions::weighted_index(&mut r, &[]), None);
        assert_eq!(Distributions::weighted_index(&mut r, &[0.0, 0.0]), None);
        assert_eq!(Distributions::weighted_index(&mut r, &[0.0, 2.0]), Some(1));
    }

    #[test]
    fn gauss_markov_is_stationary() {
        let pool = RngPool::new(6);
        let mut r = pool.stream("gm");
        let mut gm = GaussMarkov::new(10.0, 1.5, 5.0);
        // Burn in, then measure moments.
        for _ in 0..1_000 {
            gm.step(&mut r, 1.0);
        }
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| gm.step(&mut r, 1.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let std = (samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64).sqrt();
        assert!((mean - 10.0).abs() < 0.15, "mean={mean}");
        assert!((std - 1.5).abs() < 0.15, "std={std}");
    }

    #[test]
    fn gauss_markov_correlation_decays() {
        let pool = RngPool::new(7);
        let mut r = pool.stream("gm2");
        let mut gm = GaussMarkov::new(0.0, 1.0, 10.0);
        for _ in 0..100 {
            gm.step(&mut r, 1.0);
        }
        // Small steps stay close to the previous value; huge steps decorrelate.
        let v0 = gm.value();
        let v1 = gm.step(&mut r, 0.01);
        assert!((v1 - v0).abs() < 0.5, "small step moved too far");
        let before = gm.value();
        let after = gm.step(&mut r, 10_000.0);
        // After many correlation times the state is a fresh N(0,1) draw;
        // just sanity-check it's finite and unequal.
        assert!(after.is_finite() && after != before);
    }
}
