//! Statistics used by the measurement analysis: running moments, empirical
//! CDFs, least-squares fits, correlations and percentiles.
//!
//! The paper reports means and standard deviations of throughput (Fig. 3),
//! CDFs of estimation errors (Fig. 19), a linear fit `BLE = 1.7 T − 0.65`
//! (Fig. 15) and correlations between link quality and variability (§6, §8).
//! Everything here is deterministic and allocation-light.

use electrifi_state::{Persist, PersistValue, SectionReader, SectionWriter, StateError};
use serde::{Deserialize, Serialize};

/// Numerically stable running mean/variance (Welford's algorithm), plus
/// min/max tracking.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct RunningStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl RunningStats {
    /// Fresh, empty accumulator.
    pub fn new() -> Self {
        RunningStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Add one observation. Non-finite values are ignored (and counted
    /// nowhere) so a single corrupt sample cannot poison a day-long run.
    pub fn push(&mut self, x: f64) {
        if !x.is_finite() {
            return;
        }
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merge another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &RunningStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of (finite) observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance (0 with fewer than two samples).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (`NaN` when empty).
    pub fn min(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.min
        }
    }

    /// Largest observation (`NaN` when empty).
    pub fn max(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.max
        }
    }

    /// Coefficient of variation `std/mean` (`NaN` for zero mean).
    pub fn cv(&self) -> f64 {
        self.std() / self.mean()
    }
}

impl PersistValue for RunningStats {
    fn encode(&self, w: &mut SectionWriter) {
        w.put_u64(self.n);
        w.put_f64(self.mean);
        w.put_f64(self.m2);
        w.put_f64(self.min);
        w.put_f64(self.max);
    }

    fn decode(r: &mut SectionReader<'_>) -> Result<Self, StateError> {
        Ok(RunningStats {
            n: r.get_u64()?,
            mean: r.get_f64()?,
            m2: r.get_f64()?,
            min: r.get_f64()?,
            max: r.get_f64()?,
        })
    }
}

impl Persist for RunningStats {
    fn save_state(&self, w: &mut SectionWriter) {
        self.encode(w);
    }
    fn load_state(&mut self, r: &mut SectionReader<'_>) -> Result<(), StateError> {
        *self = RunningStats::decode(r)?;
        Ok(())
    }
}

/// An empirical CDF over a finite sample.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Ecdf {
    sorted: Vec<f64>,
}

impl Ecdf {
    /// Build from any sample; non-finite values are dropped.
    pub fn new(mut samples: Vec<f64>) -> Self {
        samples.retain(|x| x.is_finite());
        samples.sort_by(|a, b| a.partial_cmp(b).expect("finite values compare"));
        Ecdf { sorted: samples }
    }

    /// Number of retained samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// True when no samples were retained.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// `F(x)`: fraction of samples `<= x`.
    pub fn eval(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return f64::NAN;
        }
        let idx = self.sorted.partition_point(|&v| v <= x);
        idx as f64 / self.sorted.len() as f64
    }

    /// Inverse CDF: the `q`-quantile for `q` in `[0, 1]` (nearest-rank).
    pub fn quantile(&self, q: f64) -> f64 {
        if self.sorted.is_empty() {
            return f64::NAN;
        }
        let q = q.clamp(0.0, 1.0);
        let idx = ((q * self.sorted.len() as f64).ceil() as usize)
            .saturating_sub(1)
            .min(self.sorted.len() - 1);
        self.sorted[idx]
    }

    /// Median, shorthand for `quantile(0.5)`.
    pub fn median(&self) -> f64 {
        self.quantile(0.5)
    }

    /// Iterate `(x, F(x))` over the sample points; handy for plotting.
    pub fn points(&self) -> impl Iterator<Item = (f64, f64)> + '_ {
        let n = self.sorted.len() as f64;
        self.sorted
            .iter()
            .enumerate()
            .map(move |(i, &x)| (x, (i + 1) as f64 / n))
    }
}

/// Result of an ordinary-least-squares line fit `y = slope * x + intercept`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinearFit {
    /// Slope of the fitted line.
    pub slope: f64,
    /// Intercept of the fitted line.
    pub intercept: f64,
    /// Coefficient of determination in `[0, 1]`.
    pub r2: f64,
    /// Number of points used.
    pub n: usize,
}

impl LinearFit {
    /// Evaluate the fitted line at `x`.
    pub fn predict(&self, x: f64) -> f64 {
        self.slope * x + self.intercept
    }

    /// Residuals of the fit against the given points.
    pub fn residuals<'a>(&'a self, points: &'a [(f64, f64)]) -> impl Iterator<Item = f64> + 'a {
        points.iter().map(move |&(x, y)| y - self.predict(x))
    }
}

/// Ordinary least squares over `(x, y)` pairs. Returns `None` with fewer
/// than two distinct x values.
pub fn linear_fit(points: &[(f64, f64)]) -> Option<LinearFit> {
    let pts: Vec<(f64, f64)> = points
        .iter()
        .copied()
        .filter(|(x, y)| x.is_finite() && y.is_finite())
        .collect();
    let n = pts.len();
    if n < 2 {
        return None;
    }
    let nf = n as f64;
    let mx = pts.iter().map(|p| p.0).sum::<f64>() / nf;
    let my = pts.iter().map(|p| p.1).sum::<f64>() / nf;
    let sxx: f64 = pts.iter().map(|p| (p.0 - mx).powi(2)).sum();
    if sxx == 0.0 {
        return None;
    }
    let sxy: f64 = pts.iter().map(|p| (p.0 - mx) * (p.1 - my)).sum();
    let slope = sxy / sxx;
    let intercept = my - slope * mx;
    let syy: f64 = pts.iter().map(|p| (p.1 - my).powi(2)).sum();
    let r2 = if syy == 0.0 {
        1.0
    } else {
        let ss_res: f64 = pts
            .iter()
            .map(|&(x, y)| (y - (slope * x + intercept)).powi(2))
            .sum();
        (1.0 - ss_res / syy).clamp(0.0, 1.0)
    };
    Some(LinearFit {
        slope,
        intercept,
        r2,
        n,
    })
}

/// Pearson correlation coefficient. Returns `None` when either variable is
/// constant or fewer than two finite pairs exist.
pub fn pearson(points: &[(f64, f64)]) -> Option<f64> {
    let pts: Vec<(f64, f64)> = points
        .iter()
        .copied()
        .filter(|(x, y)| x.is_finite() && y.is_finite())
        .collect();
    if pts.len() < 2 {
        return None;
    }
    let nf = pts.len() as f64;
    let mx = pts.iter().map(|p| p.0).sum::<f64>() / nf;
    let my = pts.iter().map(|p| p.1).sum::<f64>() / nf;
    let sxx: f64 = pts.iter().map(|p| (p.0 - mx).powi(2)).sum();
    let syy: f64 = pts.iter().map(|p| (p.1 - my).powi(2)).sum();
    if sxx == 0.0 || syy == 0.0 {
        return None;
    }
    let sxy: f64 = pts.iter().map(|p| (p.0 - mx) * (p.1 - my)).sum();
    Some(sxy / (sxx * syy).sqrt())
}

/// Spearman rank correlation: Pearson over the ranks. More robust to the
/// heavy-tailed metrics of the study (loss rates span decades in Fig. 21).
pub fn spearman(points: &[(f64, f64)]) -> Option<f64> {
    let pts: Vec<(f64, f64)> = points
        .iter()
        .copied()
        .filter(|(x, y)| x.is_finite() && y.is_finite())
        .collect();
    if pts.len() < 2 {
        return None;
    }
    let rank = |vals: Vec<f64>| -> Vec<f64> {
        let mut idx: Vec<usize> = (0..vals.len()).collect();
        idx.sort_by(|&a, &b| vals[a].partial_cmp(&vals[b]).expect("finite"));
        let mut ranks = vec![0.0; vals.len()];
        let mut i = 0;
        while i < idx.len() {
            let mut j = i;
            while j + 1 < idx.len() && vals[idx[j + 1]] == vals[idx[i]] {
                j += 1;
            }
            // Average rank across ties.
            let avg = (i + j) as f64 / 2.0 + 1.0;
            for &k in &idx[i..=j] {
                ranks[k] = avg;
            }
            i = j + 1;
        }
        ranks
    };
    let rx = rank(pts.iter().map(|p| p.0).collect());
    let ry = rank(pts.iter().map(|p| p.1).collect());
    let ranked: Vec<(f64, f64)> = rx.into_iter().zip(ry).collect();
    pearson(&ranked)
}

/// Shapiro–Wilk is overkill here; this is a simple normality check via
/// standardized skewness and excess kurtosis, both of which should be small
/// for normal residuals (used to verify the Fig. 15 claim that fit
/// residuals are normally distributed).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct NormalityCheck {
    /// Sample skewness (0 for a normal distribution).
    pub skewness: f64,
    /// Excess kurtosis (0 for a normal distribution).
    pub excess_kurtosis: f64,
    /// Samples used.
    pub n: usize,
}

impl NormalityCheck {
    /// Compute the check over a sample.
    pub fn of(samples: &[f64]) -> Option<Self> {
        let xs: Vec<f64> = samples.iter().copied().filter(|x| x.is_finite()).collect();
        if xs.len() < 8 {
            return None;
        }
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let m2 = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
        if m2 <= 0.0 {
            return None;
        }
        let m3 = xs.iter().map(|x| (x - mean).powi(3)).sum::<f64>() / n;
        let m4 = xs.iter().map(|x| (x - mean).powi(4)).sum::<f64>() / n;
        Some(NormalityCheck {
            skewness: m3 / m2.powf(1.5),
            excess_kurtosis: m4 / (m2 * m2) - 3.0,
            n: xs.len(),
        })
    }

    /// Loose acceptance test: |skew| and |kurtosis| both under a threshold
    /// scaled for the sample size.
    pub fn looks_normal(&self) -> bool {
        // Standard errors: skew ~ sqrt(6/n), kurtosis ~ sqrt(24/n).
        let n = self.n as f64;
        self.skewness.abs() < 4.0 * (6.0 / n).sqrt() + 0.5
            && self.excess_kurtosis.abs() < 4.0 * (24.0 / n).sqrt() + 1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn running_stats_basics() {
        let mut s = RunningStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.push(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        // Unbiased variance of this classic sample is 32/7.
        assert!((s.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn running_stats_ignores_non_finite() {
        let mut s = RunningStats::new();
        s.push(1.0);
        s.push(f64::NAN);
        s.push(f64::INFINITY);
        s.push(3.0);
        assert_eq!(s.count(), 2);
        assert!((s.mean() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn running_stats_merge_matches_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = RunningStats::new();
        xs.iter().for_each(|&x| whole.push(x));
        let mut a = RunningStats::new();
        let mut b = RunningStats::new();
        xs[..37].iter().for_each(|&x| a.push(x));
        xs[37..].iter().for_each(|&x| b.push(x));
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.variance() - whole.variance()).abs() < 1e-9);
    }

    #[test]
    fn ecdf_eval_and_quantiles() {
        let e = Ecdf::new(vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(e.eval(0.5), 0.0);
        assert_eq!(e.eval(1.0), 0.25);
        assert_eq!(e.eval(2.5), 0.5);
        assert_eq!(e.eval(10.0), 1.0);
        assert_eq!(e.quantile(0.0), 1.0);
        assert_eq!(e.quantile(0.5), 2.0);
        assert_eq!(e.quantile(1.0), 4.0);
        assert_eq!(e.median(), 2.0);
    }

    #[test]
    fn ecdf_drops_non_finite_and_handles_empty() {
        let e = Ecdf::new(vec![f64::NAN, 1.0, f64::INFINITY]);
        assert_eq!(e.len(), 1);
        let empty = Ecdf::new(vec![f64::NAN]);
        assert!(empty.is_empty());
        assert!(empty.eval(0.0).is_nan());
        assert!(empty.quantile(0.5).is_nan());
    }

    #[test]
    fn linear_fit_recovers_exact_line() {
        let pts: Vec<(f64, f64)> = (0..50).map(|i| (i as f64, 1.7 * i as f64 - 0.65)).collect();
        let fit = linear_fit(&pts).unwrap();
        assert!((fit.slope - 1.7).abs() < 1e-12);
        assert!((fit.intercept + 0.65).abs() < 1e-9);
        assert!((fit.r2 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn linear_fit_degenerate_inputs() {
        assert!(linear_fit(&[]).is_none());
        assert!(linear_fit(&[(1.0, 2.0)]).is_none());
        assert!(linear_fit(&[(1.0, 2.0), (1.0, 3.0)]).is_none());
    }

    #[test]
    fn pearson_signs() {
        let up: Vec<(f64, f64)> = (0..20).map(|i| (i as f64, 2.0 * i as f64)).collect();
        assert!((pearson(&up).unwrap() - 1.0).abs() < 1e-12);
        let down: Vec<(f64, f64)> = (0..20).map(|i| (i as f64, -(i as f64))).collect();
        assert!((pearson(&down).unwrap() + 1.0).abs() < 1e-12);
        assert!(pearson(&[(1.0, 1.0), (1.0, 2.0)]).is_none());
    }

    #[test]
    fn spearman_monotone_nonlinear() {
        // Monotone but nonlinear: Spearman is 1, Pearson is below 1.
        let pts: Vec<(f64, f64)> = (1..30).map(|i| (i as f64, (i as f64).exp())).collect();
        let s = spearman(&pts).unwrap();
        assert!((s - 1.0).abs() < 1e-12);
        assert!(pearson(&pts).unwrap() < 1.0);
    }

    #[test]
    fn spearman_handles_ties() {
        let pts = [(1.0, 1.0), (2.0, 1.0), (3.0, 2.0), (4.0, 3.0)];
        let s = spearman(&pts).unwrap();
        assert!(s > 0.8, "s={s}");
    }

    #[test]
    fn normality_check_accepts_normal_rejects_exponential() {
        use crate::rng::{Distributions, RngPool};
        let pool = RngPool::new(11);
        let mut r = pool.stream("norm-check");
        let normal: Vec<f64> = (0..5_000)
            .map(|_| Distributions::normal(&mut r, 0.0, 1.0))
            .collect();
        assert!(NormalityCheck::of(&normal).unwrap().looks_normal());
        let expo: Vec<f64> = (0..5_000)
            .map(|_| Distributions::exponential(&mut r, 1.0))
            .collect();
        assert!(!NormalityCheck::of(&expo).unwrap().looks_normal());
    }
}
