//! # simnet — simulation substrate for the Electri-Fi reproduction
//!
//! This crate provides everything below the PHY layers of the reproduced
//! system:
//!
//! * [`time`] — nanosecond-resolution simulation time with mains-cycle
//!   helpers (the PLC PHY is locked to the AC line cycle).
//! * [`event`] — a deterministic discrete-event queue.
//! * [`rng`] — reproducible, independently-seeded random-number streams and
//!   the distributions the channel models need (normal, lognormal,
//!   exponential, Rayleigh), implemented locally so the only external
//!   randomness dependency is the `rand` core.
//! * [`grid`] — the electrical network: distribution boards, cables,
//!   outlets, junctions, and the appliances plugged into them. PLC signals
//!   propagate over this graph; cable distance and impedance mismatches are
//!   derived from it.
//! * [`appliance`] — a library of electrical appliances with impedance,
//!   noise profiles (including mains-synchronous noise) and time-of-day
//!   schedules.
//! * [`geometry`] — 2-D floor geometry for the WiFi path-loss model.
//! * [`traffic`] — traffic generators (saturated UDP, CBR probes, probe
//!   bursts, file transfers) mirroring the paper's `iperf` workloads.
//! * [`stats`] — running statistics, ECDFs, linear fits and correlations
//!   used throughout the measurement analysis.
//! * [`trace`] — time-series capture utilities for experiment outputs.
//! * [`obs`] — sim-time observability: a metrics registry, a structured
//!   event log, and run manifests, guaranteed never to perturb a run.
//! * [`threads`] — validated worker-count parsing (`ELECTRIFI_THREADS`,
//!   `ELECTRIFI_BATCH`, `--workers`, `--batch`) with typed errors naming
//!   the misconfigured source.
//! * [`wheel`] — a hierarchical time wheel and lockstep batch engine
//!   advancing N independent sims through shared epochs, bit-identically
//!   to stepping each one alone.
//!
//! The design follows the smoltcp idiom: synchronous, event-driven,
//! allocation-conscious, with no async runtime — the whole system is a
//! deterministic simulator.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod appliance;
pub mod event;
pub mod geometry;
pub mod grid;
pub mod noise;
pub mod obs;
pub mod rng;
pub mod schedule;
pub mod stats;
pub mod threads;
pub mod time;
pub mod trace;
pub mod traffic;
pub mod wheel;

pub use event::{EventQueue, EventQueueStats, ScheduledEvent};
pub use obs::{MetricsSnapshot, Obs, ObsEvent, ObsSink, Registry, RunManifest};
pub use rng::{Distributions, RngPool};
pub use time::{Duration, Time};
