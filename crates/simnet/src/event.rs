//! A deterministic discrete-event queue.
//!
//! The queue is generic over the event payload `E`; each simulation domain
//! (PLC contention domain, WiFi BSS, probing scheduler, ...) instantiates it
//! with its own event enum. Events scheduled for the same instant are
//! delivered in FIFO order of scheduling, which keeps runs bit-for-bit
//! reproducible regardless of payload contents.

use crate::obs::Registry;
use crate::time::Time;
use electrifi_state::{Persist, PersistValue, SectionReader, SectionWriter, StateError};
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Lifetime statistics of an [`EventQueue`]: how much work it has done
/// and how deep its heap has grown. Tracked unconditionally (three
/// integer updates per operation) so observability never changes queue
/// behaviour.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EventQueueStats {
    /// Events ever scheduled.
    pub scheduled: u64,
    /// Events popped (fired).
    pub fired: u64,
    /// Maximum number of simultaneously pending events.
    pub high_water: u64,
}

/// An event popped from the queue: when it fires and what it carries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduledEvent<E> {
    /// The instant the event fires.
    pub at: Time,
    /// Monotone sequence number; breaks ties between same-instant events.
    pub seq: u64,
    /// The payload.
    pub event: E,
}

struct Entry<E> {
    at: Time,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event is on top.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A discrete-event priority queue ordered by firing time, FIFO within an
/// instant.
///
/// ```
/// use simnet::{EventQueue, Time};
///
/// let mut q = EventQueue::new();
/// q.schedule(Time::from_millis(5), "b");
/// q.schedule(Time::from_millis(1), "a");
/// q.schedule(Time::from_millis(5), "c");
/// assert_eq!(q.pop().unwrap().event, "a");
/// assert_eq!(q.pop().unwrap().event, "b"); // FIFO within t = 5 ms
/// assert_eq!(q.pop().unwrap().event, "c");
/// assert!(q.pop().is_none());
/// ```
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    now: Time,
    stats: EventQueueStats,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Create an empty queue with the clock at `Time::ZERO`.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: Time::ZERO,
            stats: EventQueueStats::default(),
        }
    }

    /// Scheduled/fired counts and heap high-water mark so far.
    pub fn stats(&self) -> EventQueueStats {
        self.stats
    }

    /// Publish the queue's statistics into `registry` under
    /// `<prefix>.scheduled` / `.fired` / `.high_water`, plus the shared
    /// `sim.events_fired` counter that run manifests report. Counters are
    /// advanced by the delta since the registry last saw this queue, so
    /// periodic republishing is safe.
    pub fn publish_stats(&self, registry: &Registry, prefix: &str) {
        let s = self.stats;
        for (suffix, value) in [("scheduled", s.scheduled), ("fired", s.fired)] {
            let c = registry.counter(&format!("{prefix}.{suffix}"));
            c.add(value.saturating_sub(c.get()));
        }
        registry
            .gauge(&format!("{prefix}.high_water"))
            .set_max(s.high_water as f64);
        let fired = registry.counter("sim.events_fired");
        fired.add(s.fired.saturating_sub(fired.get()));
    }

    /// The current simulation time: the firing time of the most recently
    /// popped event (or `Time::ZERO` before the first pop).
    pub fn now(&self) -> Time {
        self.now
    }

    /// Schedule `event` at absolute time `at`. Scheduling in the past (before
    /// the clock) is a logic error in the caller and panics in debug builds;
    /// in release builds the event fires immediately (at the current clock).
    pub fn schedule(&mut self, at: Time, event: E) -> u64 {
        debug_assert!(
            at >= self.now,
            "scheduling event in the past: at={at:?} now={:?}",
            self.now
        );
        let at = at.max(self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { at, seq, event });
        self.stats.scheduled += 1;
        self.stats.high_water = self.stats.high_water.max(self.heap.len() as u64);
        seq
    }

    /// Remove and return the earliest event, advancing the clock to its
    /// firing time.
    pub fn pop(&mut self) -> Option<ScheduledEvent<E>> {
        self.heap.pop().map(|e| {
            self.now = e.at;
            self.stats.fired += 1;
            ScheduledEvent {
                at: e.at,
                seq: e.seq,
                event: e.event,
            }
        })
    }

    /// Remove and return the earliest event only if it fires at or before
    /// `deadline`; otherwise leave the queue untouched.
    pub fn pop_until(&mut self, deadline: Time) -> Option<ScheduledEvent<E>> {
        if self.peek_time()? <= deadline {
            self.pop()
        } else {
            None
        }
    }

    /// Firing time of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<Time> {
        self.heap.peek().map(|e| e.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drop all pending events, keeping the clock.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

/// Checkpointing: the queue serialises its clock, sequence allocator,
/// lifetime stats and every pending entry. Entries are written sorted by
/// `(at, seq)` — the heap's internal `Vec` order is not canonical — so
/// encode→decode→encode is byte-identical, and original sequence numbers
/// are preserved so FIFO-within-instant ordering survives a resume.
impl<E: PersistValue> Persist for EventQueue<E> {
    fn save_state(&self, w: &mut SectionWriter) {
        w.put_u64(self.now.as_nanos());
        w.put_u64(self.next_seq);
        w.put_u64(self.stats.scheduled);
        w.put_u64(self.stats.fired);
        w.put_u64(self.stats.high_water);
        let mut entries: Vec<&Entry<E>> = self.heap.iter().collect();
        entries.sort_by_key(|e| (e.at, e.seq));
        w.put_u64(entries.len() as u64);
        for e in entries {
            w.put_u64(e.at.as_nanos());
            w.put_u64(e.seq);
            e.event.encode(w);
        }
    }

    fn load_state(&mut self, r: &mut SectionReader<'_>) -> Result<(), StateError> {
        self.now = Time(r.get_u64()?);
        self.next_seq = r.get_u64()?;
        self.stats = EventQueueStats {
            scheduled: r.get_u64()?,
            fired: r.get_u64()?,
            high_water: r.get_u64()?,
        };
        let len = r.get_u64()?;
        self.heap.clear();
        for _ in 0..len {
            let at = Time(r.get_u64()?);
            let seq = r.get_u64()?;
            if seq >= self.next_seq {
                return Err(r.malformed(format!(
                    "pending event seq {seq} >= next_seq {}",
                    self.next_seq
                )));
            }
            let event = E::decode(r)?;
            self.heap.push(Entry { at, seq, event });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Duration;

    #[test]
    fn orders_by_time() {
        let mut q = EventQueue::new();
        q.schedule(Time::from_millis(30), 3);
        q.schedule(Time::from_millis(10), 1);
        q.schedule(Time::from_millis(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|e| e.event)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn fifo_within_same_instant() {
        let mut q = EventQueue::new();
        let t = Time::from_micros(7);
        for i in 0..100 {
            q.schedule(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|e| e.event)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule(Time::from_secs(2), ());
        q.schedule(Time::from_secs(1), ());
        assert_eq!(q.now(), Time::ZERO);
        q.pop();
        assert_eq!(q.now(), Time::from_secs(1));
        q.pop();
        assert_eq!(q.now(), Time::from_secs(2));
    }

    #[test]
    fn pop_until_respects_deadline() {
        let mut q = EventQueue::new();
        q.schedule(Time::from_secs(1), "early");
        q.schedule(Time::from_secs(5), "late");
        assert_eq!(q.pop_until(Time::from_secs(2)).unwrap().event, "early");
        assert!(q.pop_until(Time::from_secs(2)).is_none());
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop_until(Time::from_secs(5)).unwrap().event, "late");
    }

    #[test]
    fn interleaved_scheduling_stays_deterministic() {
        // Schedule from "two components" at interleaved times and check the
        // total order is reproducible.
        let run = || {
            let mut q = EventQueue::new();
            let mut out = Vec::new();
            q.schedule(Time::from_millis(1), (0, 0));
            q.schedule(Time::from_millis(1), (1, 0));
            while let Some(ev) = q.pop() {
                out.push(ev.event);
                let (comp, n) = ev.event;
                if n < 5 {
                    // Both components reschedule at the same future instant.
                    q.schedule(ev.at + Duration::from_millis(1), (comp, n + 1));
                }
            }
            out
        };
        assert_eq!(run(), run());
        let first = run();
        // Component 0 scheduled first at every instant, so it always fires
        // first within the instant.
        for pair in first.chunks(2) {
            assert_eq!(pair[0].0, 0);
            assert_eq!(pair[1].0, 1);
        }
    }

    #[test]
    fn stats_track_work_and_high_water() {
        let mut q = EventQueue::new();
        q.schedule(Time::from_secs(1), ());
        q.schedule(Time::from_secs(2), ());
        q.schedule(Time::from_secs(3), ());
        q.pop();
        q.pop();
        q.schedule(Time::from_secs(4), ());
        let s = q.stats();
        assert_eq!(s.scheduled, 4);
        assert_eq!(s.fired, 2);
        assert_eq!(s.high_water, 3);

        let reg = crate::obs::Registry::new();
        q.publish_stats(&reg, "simnet.queue");
        // Republishing must not double-count.
        q.publish_stats(&reg, "simnet.queue");
        let snap = reg.snapshot();
        assert_eq!(snap.counter("simnet.queue.scheduled"), 4);
        assert_eq!(snap.counter("simnet.queue.fired"), 2);
        assert_eq!(snap.counter("sim.events_fired"), 2);
    }

    #[test]
    fn persist_roundtrip_preserves_order_and_bytes() {
        let mut q = EventQueue::new();
        q.schedule(Time::from_millis(5), 50u64);
        q.schedule(Time::from_millis(1), 10u64);
        q.schedule(Time::from_millis(5), 51u64);
        q.pop(); // fire the t=1 event so now/stats are nontrivial

        let mut w = SectionWriter::new();
        q.save_state(&mut w);
        let bytes = w.into_bytes();

        let mut restored: EventQueue<u64> = EventQueue::new();
        let mut r = SectionReader::new("q", &bytes);
        restored.load_state(&mut r).unwrap();
        r.finish().unwrap();

        // encode(decode(encode(q))) is byte-identical.
        let mut w2 = SectionWriter::new();
        restored.save_state(&mut w2);
        assert_eq!(bytes, w2.into_bytes());

        assert_eq!(restored.now(), q.now());
        assert_eq!(restored.stats(), q.stats());
        // FIFO within the instant survives: 50 was scheduled before 51.
        assert_eq!(restored.pop().unwrap().event, 50);
        assert_eq!(restored.pop().unwrap().event, 51);
        // A freshly scheduled event continues the seq allocation.
        let seq = restored.schedule(Time::from_millis(9), 90);
        assert_eq!(seq, 3);
    }

    #[test]
    fn persist_rejects_seq_beyond_allocator() {
        let mut q = EventQueue::new();
        q.schedule(Time::from_millis(1), 1u64);
        let mut w = SectionWriter::new();
        q.save_state(&mut w);
        let mut bytes = w.into_bytes();
        // Corrupt the pending entry's seq (the 6th u64: now, next_seq,
        // 3×stats, len, then at, seq) to exceed next_seq.
        let off = 8 * 7;
        bytes[off..off + 8].copy_from_slice(&u64::MAX.to_le_bytes());
        let mut restored: EventQueue<u64> = EventQueue::new();
        let mut r = SectionReader::new("q", &bytes);
        match restored.load_state(&mut r) {
            Err(StateError::Malformed { section, .. }) => assert_eq!(section, "q"),
            other => panic!("expected Malformed, got {other:?}"),
        }
    }

    #[test]
    fn clear_keeps_clock() {
        let mut q = EventQueue::new();
        q.schedule(Time::from_secs(1), ());
        q.pop();
        q.schedule(Time::from_secs(3), ());
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.now(), Time::from_secs(1));
    }
}
