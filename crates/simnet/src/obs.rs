//! Sim-time observability: metrics registry, structured event log, and
//! run manifests.
//!
//! The paper is a measurement study — its contribution is reading link
//! metrics out of a running network — and this module gives the simulator
//! of that network the same property: counters, gauges and histograms
//! registered by every layer ([`Registry`]), a structured sim-time event
//! log behind the [`ObsSink`] trait, and a [`RunManifest`] record that
//! experiment runners serialize next to their outputs.
//!
//! Everything here is hand-rolled (like [`crate::rng`]) because the build
//! environment has no crates-io access: no `tracing`, `metrics` or `log`.
//!
//! ## The inertness invariant
//!
//! Observation must never perturb a run. Nothing in this module draws
//! randomness, reorders events, or feeds back into simulation state: the
//! same seed with a sink attached or detached produces bit-identical
//! experiment outputs, and two same-seed runs produce identical
//! [`MetricsSnapshot`]s and event logs. Workspace integration tests
//! enforce this.
//!
//! ## Wiring
//!
//! Components pick up the ambient [`Obs`] handle ([`current`]) when they
//! are constructed, register their instruments, and hold cheap shared
//! handles ([`Counter`], [`Gauge`], [`Histo`]). Runners that want
//! observability install a handle with [`with_default`] (or attach one
//! explicitly via a sim's `attach_obs` method) and snapshot the registry
//! when the run completes. The default ambient handle is disabled: no
//! sink, and a throwaway registry.

use crate::time::Time;
use serde::{Deserialize, Serialize};
use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::fmt::Debug;
use std::io;
use std::rc::Rc;

pub mod span;

// ---------------------------------------------------------------------------
// Metric handles
// ---------------------------------------------------------------------------

/// A monotonically increasing counter (events, frames, retransmissions).
///
/// Cloning shares the underlying value; increments through any clone are
/// visible in the registry snapshot.
#[derive(Debug, Clone, Default)]
pub struct Counter(Rc<Cell<u64>>);

impl Counter {
    /// Increment by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increment by `n`.
    pub fn add(&self, n: u64) {
        self.0.set(self.0.get().wrapping_add(n));
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.get()
    }
}

/// A gauge holding the latest value of some level (queue depth, split
/// ratio, heap high-water mark).
#[derive(Debug, Clone, Default)]
pub struct Gauge(Rc<Cell<f64>>);

impl Gauge {
    /// Set the gauge.
    pub fn set(&self, v: f64) {
        self.0.set(v);
    }

    /// Set the gauge if `v` exceeds the current value (high-water marks).
    pub fn set_max(&self, v: f64) {
        if v > self.0.get() {
            self.0.set(v);
        }
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        self.0.get()
    }
}

/// Number of histogram buckets: bucket 0 holds zeros, bucket `i` holds
/// values in `[2^(i-1), 2^i)`, so 64 powers of two cover all of `u64`.
const HISTO_BUCKETS: usize = 65;

#[derive(Debug)]
struct HistoInner {
    buckets: RefCell<[u64; HISTO_BUCKETS]>,
    count: Cell<u64>,
    sum: Cell<u64>,
}

/// A histogram over `u64` samples with fixed log-spaced (power-of-two)
/// buckets — A-MPDU sizes, burst lengths, buffer occupancies.
#[derive(Debug, Clone)]
pub struct Histo(Rc<HistoInner>);

impl Default for Histo {
    fn default() -> Self {
        Histo(Rc::new(HistoInner {
            buckets: RefCell::new([0; HISTO_BUCKETS]),
            count: Cell::new(0),
            sum: Cell::new(0),
        }))
    }
}

impl Histo {
    /// Record one sample.
    pub fn record(&self, v: u64) {
        let idx = if v == 0 {
            0
        } else {
            64 - v.leading_zeros() as usize
        };
        self.0.buckets.borrow_mut()[idx] += 1;
        self.0.count.set(self.0.count.get() + 1);
        self.0.sum.set(self.0.sum.get().wrapping_add(v));
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.0.count.get()
    }

    /// Sum of recorded samples.
    pub fn sum(&self) -> u64 {
        self.0.sum.get()
    }

    /// Merge a snapshot's buckets back into this histogram (used when a
    /// worker thread's registry is folded into the parent's).
    fn absorb(&self, snap: &HistoSnapshot) {
        let mut buckets = self.0.buckets.borrow_mut();
        for &(le, c) in &snap.buckets {
            // Invert the snapshot encoding: le 0 → bucket 0, otherwise
            // le = 2^i - 1 → bucket i (u64::MAX lands in the last one).
            let idx = if le == 0 {
                0
            } else {
                64 - le.leading_zeros() as usize
            };
            buckets[idx] += c;
        }
        self.0.count.set(self.0.count.get() + snap.count);
        self.0.sum.set(self.0.sum.get().wrapping_add(snap.sum));
    }

    fn snapshot(&self) -> HistoSnapshot {
        let buckets = self.0.buckets.borrow();
        let filled = buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| {
                // Inclusive upper bound of bucket i: 0 for the zero
                // bucket, 2^i - 1 otherwise (saturating at u64::MAX).
                let le = if i == 0 {
                    0
                } else if i >= 64 {
                    u64::MAX
                } else {
                    (1u64 << i) - 1
                };
                (le, c)
            })
            .collect();
        HistoSnapshot {
            count: self.0.count.get(),
            sum: self.0.sum.get(),
            buckets: filled,
        }
    }
}

// ---------------------------------------------------------------------------
// Registry and snapshots
// ---------------------------------------------------------------------------

#[derive(Debug, Default)]
struct RegistryInner {
    counters: Vec<(String, Counter)>,
    gauges: Vec<(String, Gauge)>,
    histos: Vec<(String, Histo)>,
}

/// A registry of named instruments.
///
/// Cloning shares the registry. Registering the same name twice returns a
/// handle to the same underlying instrument, so independent components
/// can contribute to one series (e.g. `sim.events_fired`).
#[derive(Debug, Clone, Default)]
pub struct Registry {
    inner: Rc<RefCell<RegistryInner>>,
}

impl Registry {
    /// Fresh, empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Get or create the counter `name`.
    pub fn counter(&self, name: &str) -> Counter {
        let mut inner = self.inner.borrow_mut();
        if let Some((_, c)) = inner.counters.iter().find(|(n, _)| n == name) {
            return c.clone();
        }
        let c = Counter::default();
        inner.counters.push((name.to_string(), c.clone()));
        c
    }

    /// Get or create the gauge `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut inner = self.inner.borrow_mut();
        if let Some((_, g)) = inner.gauges.iter().find(|(n, _)| n == name) {
            return g.clone();
        }
        let g = Gauge::default();
        inner.gauges.push((name.to_string(), g.clone()));
        g
    }

    /// Get or create the histogram `name`.
    pub fn histo(&self, name: &str) -> Histo {
        let mut inner = self.inner.borrow_mut();
        if let Some((_, h)) = inner.histos.iter().find(|(n, _)| n == name) {
            return h.clone();
        }
        let h = Histo::default();
        inner.histos.push((name.to_string(), h.clone()));
        h
    }

    /// Fold a [`MetricsSnapshot`] into this registry: counters and histo
    /// samples add, gauges take the absorbed value (last absorb wins).
    ///
    /// This is how parallel sweeps stay observable without sharing `Rc`
    /// instruments across threads: each worker runs under its own fresh
    /// [`Obs`], returns the (Send) snapshot, and the coordinator absorbs
    /// the snapshots in deterministic (chunk) order.
    pub fn absorb(&self, snap: &MetricsSnapshot) {
        for (name, v) in &snap.counters {
            self.counter(name).add(*v);
        }
        for (name, v) in &snap.gauges {
            self.gauge(name).set(*v);
        }
        for (name, h) in &snap.histos {
            self.histo(name).absorb(h);
        }
    }

    /// Deterministic snapshot of every instrument, sorted by name.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.inner.borrow();
        let mut counters: Vec<(String, u64)> = inner
            .counters
            .iter()
            .map(|(n, c)| (n.clone(), c.get()))
            .collect();
        counters.sort_by(|a, b| a.0.cmp(&b.0));
        let mut gauges: Vec<(String, f64)> = inner
            .gauges
            .iter()
            .map(|(n, g)| (n.clone(), g.get()))
            .collect();
        gauges.sort_by(|a, b| a.0.cmp(&b.0));
        let mut histos: Vec<(String, HistoSnapshot)> = inner
            .histos
            .iter()
            .map(|(n, h)| (n.clone(), h.snapshot()))
            .collect();
        histos.sort_by(|a, b| a.0.cmp(&b.0));
        MetricsSnapshot {
            counters,
            gauges,
            histos,
        }
    }
}

/// Point-in-time state of a [`Histo`]: only non-empty buckets, as
/// `(inclusive upper bound, count)` pairs in ascending bound order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistoSnapshot {
    /// Total samples recorded.
    pub count: u64,
    /// Sum of all samples (wrapping).
    pub sum: u64,
    /// `(le, count)` pairs for non-empty buckets.
    pub buckets: Vec<(u64, u64)>,
}

impl HistoSnapshot {
    /// Estimate the `q`-quantile (`0.0 ..= 1.0`) from the log2 buckets by
    /// linear interpolation inside the bucket holding the target rank.
    ///
    /// Power-of-two buckets bound the relative error by 2x, which is
    /// plenty for profiling-style "is p99 a microsecond or a
    /// millisecond?" questions. Returns `None` for an empty histogram or
    /// an out-of-range `q`.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 || !(0.0..=1.0).contains(&q) {
            return None;
        }
        // Rank of the target sample, 1-based; q=0 maps to the first.
        let target = (q * self.count as f64).max(1.0);
        let mut seen = 0u64;
        for &(le, c) in &self.buckets {
            let below = seen as f64;
            seen += c;
            if (seen as f64) >= target {
                // Bucket bounds: le 0 → [0,0]; otherwise [le/2+1, le]
                // (the first value bucket, le 1, holds exactly {1}).
                let (lo, hi) = if le == 0 {
                    (0.0, 0.0)
                } else {
                    (((le >> 1) + 1) as f64, le as f64)
                };
                let frac = (target - below) / c as f64;
                return Some(lo + (hi - lo) * frac);
            }
        }
        // Unreachable for a consistent snapshot (buckets sum to count),
        // but degrade gracefully for hand-built ones.
        self.buckets.last().map(|&(le, _)| le as f64)
    }
}

/// A deterministic, name-sorted snapshot of a [`Registry`].
///
/// Two same-seed runs of the same experiment produce byte-identical
/// serialized snapshots — enforced by workspace integration tests.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: Vec<(String, u64)>,
    /// Gauge values by name.
    pub gauges: Vec<(String, f64)>,
    /// Histogram states by name.
    pub histos: Vec<(String, HistoSnapshot)>,
}

impl MetricsSnapshot {
    /// An empty snapshot.
    pub fn empty() -> Self {
        MetricsSnapshot {
            counters: Vec::new(),
            gauges: Vec::new(),
            histos: Vec::new(),
        }
    }

    /// Value of the counter `name`, or 0 when absent.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    }
}

// ---------------------------------------------------------------------------
// Structured event log
// ---------------------------------------------------------------------------

/// A field value in a structured event.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FieldValue {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating point.
    F64(f64),
    /// Boolean.
    Bool(bool),
    /// Text.
    Str(String),
}

impl From<u64> for FieldValue {
    fn from(v: u64) -> Self {
        FieldValue::U64(v)
    }
}
impl From<u32> for FieldValue {
    fn from(v: u32) -> Self {
        FieldValue::U64(v as u64)
    }
}
impl From<u16> for FieldValue {
    fn from(v: u16) -> Self {
        FieldValue::U64(v as u64)
    }
}
impl From<usize> for FieldValue {
    fn from(v: usize) -> Self {
        FieldValue::U64(v as u64)
    }
}
impl From<i64> for FieldValue {
    fn from(v: i64) -> Self {
        FieldValue::I64(v)
    }
}
impl From<f64> for FieldValue {
    fn from(v: f64) -> Self {
        FieldValue::F64(v)
    }
}
impl From<bool> for FieldValue {
    fn from(v: bool) -> Self {
        FieldValue::Bool(v)
    }
}
impl From<&str> for FieldValue {
    fn from(v: &str) -> Self {
        FieldValue::Str(v.to_string())
    }
}
impl From<String> for FieldValue {
    fn from(v: String) -> Self {
        FieldValue::Str(v)
    }
}

/// One sim-time-stamped structured record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ObsEvent {
    /// Simulation time of the event.
    pub t: Time,
    /// Emitting component (`"plc.mac"`, `"wifi.rate"`, ...).
    pub component: String,
    /// Event kind within the component (`"collision"`, `"tonemap"`, ...).
    pub kind: String,
    /// Named payload fields.
    pub fields: Vec<(String, FieldValue)>,
}

/// Consumer of structured events.
pub trait ObsSink {
    /// Handle one event.
    fn record(&mut self, ev: &ObsEvent);

    /// Flush any buffered output (no-op by default).
    fn flush(&mut self) {}

    /// Number of events lost to I/O errors so far (0 for in-memory
    /// sinks). Sinks never propagate write failures mid-run — a failing
    /// log must not perturb a simulation — but runners should surface
    /// this count at flush time instead of dropping telemetry invisibly.
    fn error_count(&self) -> u64 {
        0
    }
}

/// A sink that discards everything. An [`Obs`] with no sink at all skips
/// event construction entirely; this type exists for call sites that
/// require *some* sink value.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl ObsSink for NullSink {
    fn record(&mut self, _ev: &ObsEvent) {}
}

/// A bounded ring buffer keeping the most recent events.
#[derive(Debug, Clone, Default)]
pub struct RingSink {
    cap: usize,
    buf: VecDeque<ObsEvent>,
    /// Events discarded because the ring was full.
    dropped: u64,
}

impl RingSink {
    /// Ring holding at most `cap` events.
    pub fn new(cap: usize) -> Self {
        RingSink {
            cap,
            buf: VecDeque::with_capacity(cap.min(1024)),
            dropped: 0,
        }
    }

    /// The buffered events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &ObsEvent> {
        self.buf.iter()
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when no events are buffered.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Events evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

impl ObsSink for RingSink {
    fn record(&mut self, ev: &ObsEvent) {
        if self.cap == 0 {
            self.dropped += 1;
            return;
        }
        if self.buf.len() == self.cap {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(ev.clone());
    }
}

/// A sink that writes one JSON object per line to any [`io::Write`].
#[derive(Debug)]
pub struct JsonlSink<W: io::Write> {
    out: W,
    /// Write errors are counted, not propagated: a failing log must not
    /// abort (or otherwise perturb) a simulation.
    errors: u64,
}

impl<W: io::Write> JsonlSink<W> {
    /// Sink writing JSONL to `out`.
    pub fn new(out: W) -> Self {
        JsonlSink { out, errors: 0 }
    }

    /// Number of failed writes.
    pub fn errors(&self) -> u64 {
        self.errors
    }

    /// Consume the sink, returning the writer.
    pub fn into_inner(self) -> W {
        self.out
    }
}

impl<W: io::Write> ObsSink for JsonlSink<W> {
    fn record(&mut self, ev: &ObsEvent) {
        let line = serde_json::to_string(ev).unwrap_or_default();
        if writeln!(self.out, "{line}").is_err() {
            self.errors += 1;
        }
    }

    fn flush(&mut self) {
        if self.out.flush().is_err() {
            self.errors += 1;
        }
    }

    fn error_count(&self) -> u64 {
        self.errors
    }
}

/// A sink that forwards events into a bounded [`std::sync::mpsc`]
/// channel, letting another thread subscribe to a simulation's event
/// stream **live** — the subscription hook a serving layer streams to
/// its clients.
///
/// The send is [`try_send`](std::sync::mpsc::SyncSender::try_send):
/// when the subscriber falls behind and the channel fills, events are
/// **dropped and counted**, never blocking the simulation — the
/// inertness invariant extends to back-pressure. Read the loss via
/// [`ChannelSink::dropped`] (or [`ObsSink::error_count`], which runners
/// already surface at flush time).
#[derive(Debug)]
pub struct ChannelSink {
    tx: std::sync::mpsc::SyncSender<ObsEvent>,
    forwarded: u64,
    dropped: u64,
}

impl ChannelSink {
    /// Sink forwarding into `tx`. Create the channel with
    /// [`std::sync::mpsc::sync_channel`] sized to the burst the
    /// subscriber can absorb.
    pub fn new(tx: std::sync::mpsc::SyncSender<ObsEvent>) -> Self {
        ChannelSink {
            tx,
            forwarded: 0,
            dropped: 0,
        }
    }

    /// Bounded channel of capacity `cap` plus a sink feeding it.
    pub fn bounded(cap: usize) -> (Self, std::sync::mpsc::Receiver<ObsEvent>) {
        let (tx, rx) = std::sync::mpsc::sync_channel(cap);
        (Self::new(tx), rx)
    }

    /// Events successfully handed to the channel.
    pub fn forwarded(&self) -> u64 {
        self.forwarded
    }

    /// Events dropped because the channel was full (or the subscriber
    /// hung up).
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

impl ObsSink for ChannelSink {
    fn record(&mut self, ev: &ObsEvent) {
        match self.tx.try_send(ev.clone()) {
            Ok(()) => self.forwarded += 1,
            Err(_) => self.dropped += 1,
        }
    }

    fn error_count(&self) -> u64 {
        self.dropped
    }
}

// ---------------------------------------------------------------------------
// The Obs handle
// ---------------------------------------------------------------------------

/// Shared observability handle: a metrics [`Registry`] plus an optional
/// event sink. Cloning shares both.
#[derive(Clone, Default)]
pub struct Obs {
    registry: Registry,
    sink: Option<Rc<RefCell<dyn ObsSink>>>,
}

impl Debug for Obs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Obs")
            .field("registry", &self.registry)
            .field("sink", &self.sink.as_ref().map(|_| "dyn ObsSink"))
            .finish()
    }
}

impl Obs {
    /// Metrics-only handle (no event sink; [`Obs::emit`] is a no-op that
    /// never constructs its fields).
    pub fn new() -> Self {
        Self::default()
    }

    /// The ambient default: metrics land in a throwaway registry and
    /// events are skipped.
    pub fn disabled() -> Self {
        Self::default()
    }

    /// Handle with an owned event sink.
    pub fn with_sink<S: ObsSink + 'static>(sink: S) -> Self {
        Obs {
            registry: Registry::new(),
            sink: Some(Rc::new(RefCell::new(sink))),
        }
    }

    /// Handle sharing an existing sink, letting the caller keep a typed
    /// reference (e.g. to read a [`RingSink`] back after the run).
    pub fn with_sink_handle<S: ObsSink + 'static>(sink: Rc<RefCell<S>>) -> Self {
        Obs {
            registry: Registry::new(),
            sink: Some(sink),
        }
    }

    /// The metrics registry.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// True when an event sink is attached.
    pub fn enabled(&self) -> bool {
        self.sink.is_some()
    }

    /// Emit a structured event. `fields` is only invoked when a sink is
    /// attached, so instrumentation points pay nothing when disabled.
    pub fn emit<F>(&self, t: Time, component: &str, kind: &str, fields: F)
    where
        F: FnOnce() -> Vec<(String, FieldValue)>,
    {
        if let Some(sink) = &self.sink {
            let ev = ObsEvent {
                t,
                component: component.to_string(),
                kind: kind.to_string(),
                fields: fields(),
            };
            sink.borrow_mut().record(&ev);
        }
    }

    /// Flush the sink, if any, and report how many events it has lost to
    /// write errors so far (0 with no sink). Runners warn on a non-zero
    /// count — silently vanishing telemetry is worse than a noisy run.
    pub fn flush(&self) -> u64 {
        if let Some(sink) = &self.sink {
            let mut sink = sink.borrow_mut();
            sink.flush();
            sink.error_count()
        } else {
            0
        }
    }
}

thread_local! {
    static CURRENT: RefCell<Obs> = RefCell::new(Obs::disabled());
}

/// The ambient observability handle components pick up at construction.
pub fn current() -> Obs {
    CURRENT.with(|c| c.borrow().clone())
}

/// Replace the ambient handle (returns the previous one).
pub fn set_default(obs: Obs) -> Obs {
    CURRENT.with(|c| std::mem::replace(&mut *c.borrow_mut(), obs))
}

/// Run `f` with `obs` as the ambient handle, restoring the previous
/// handle afterwards.
pub fn with_default<T>(obs: Obs, f: impl FnOnce() -> T) -> T {
    let prev = set_default(obs);
    let out = f();
    set_default(prev);
    out
}

// ---------------------------------------------------------------------------
// Run manifests
// ---------------------------------------------------------------------------

/// What one experiment run did: written as `out/<name>.manifest.json` by
/// every figure binary (see `bench::RunGuard`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunManifest {
    /// Run name (usually the figure, e.g. `"fig16"`).
    pub name: String,
    /// Top-level seed of the run.
    pub seed: u64,
    /// FNV-1a digest of the run configuration's `Debug` form.
    pub config_digest: String,
    /// Scale label (`"quick"` / `"paper"`).
    pub scale: String,
    /// Simulated horizon in seconds (0 when not applicable).
    pub sim_horizon_s: f64,
    /// Wall-clock duration of the run in seconds.
    pub wall_clock_s: f64,
    /// Simulation events fired (the registry's `sim.events_fired`).
    pub events_fired: u64,
    /// Final metrics snapshot.
    pub metrics: MetricsSnapshot,
    /// Wall-clock span profile (top spans by self time), when the run was
    /// traced (`null` otherwise — and by design: the profile is the one
    /// manifest section allowed to differ between traced and untraced
    /// runs of the same seed).
    pub profile: Option<span::RunProfile>,
}

impl RunManifest {
    /// Simulation events fired per wall-clock second.
    pub fn events_per_sec(&self) -> f64 {
        if self.wall_clock_s > 0.0 {
            self.events_fired as f64 / self.wall_clock_s
        } else {
            0.0
        }
    }
}

/// FNV-1a digest of a configuration's `Debug` rendering, as fixed-width
/// hex. Cheap, dependency-free, and stable for the deterministic configs
/// used here — sufficient to tell two runs' configurations apart.
pub fn config_digest<C: Debug>(config: &C) -> String {
    let text = format!("{config:?}");
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in text.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    format!("{h:016x}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_shared_and_snapshotted_sorted() {
        let reg = Registry::new();
        let a = reg.counter("z.last");
        let b = reg.counter("a.first");
        let a2 = reg.counter("z.last");
        a.inc();
        a2.add(2);
        b.inc();
        let snap = reg.snapshot();
        assert_eq!(
            snap.counters,
            vec![("a.first".to_string(), 1), ("z.last".to_string(), 3)]
        );
        assert_eq!(snap.counter("z.last"), 3);
        assert_eq!(snap.counter("missing"), 0);
    }

    #[test]
    fn histo_buckets_are_log_spaced() {
        let reg = Registry::new();
        let h = reg.histo("sizes");
        for v in [0, 1, 2, 3, 4, 1024, u64::MAX] {
            h.record(v);
        }
        let snap = reg.snapshot();
        let hs = &snap.histos[0].1;
        assert_eq!(hs.count, 7);
        // 0 -> le 0; 1 -> le 1; 2,3 -> le 3; 4 -> le 7; 1024 -> le 2047;
        // u64::MAX -> le u64::MAX.
        assert_eq!(
            hs.buckets,
            vec![(0, 1), (1, 1), (3, 2), (7, 1), (2047, 1), (u64::MAX, 1)]
        );
    }

    #[test]
    fn absorb_merges_snapshots_into_registry() {
        // A "worker" registry records in isolation…
        let worker = Registry::new();
        worker.counter("hits").add(3);
        worker.gauge("depth").set(2.5);
        for v in [0, 1, 1024, u64::MAX] {
            worker.histo("sizes").record(v);
        }
        let snap = worker.snapshot();
        // …and folds into a parent that already has overlapping series.
        let parent = Registry::new();
        parent.counter("hits").add(4);
        parent.histo("sizes").record(1024);
        parent.absorb(&snap);
        let merged = parent.snapshot();
        assert_eq!(merged.counter("hits"), 7);
        assert_eq!(merged.gauges, vec![("depth".to_string(), 2.5)]);
        let hs = &merged.histos[0].1;
        assert_eq!(hs.count, 5);
        assert_eq!(
            hs.sum,
            1u64.wrapping_add(1024)
                .wrapping_add(1024)
                .wrapping_add(u64::MAX)
        );
        assert_eq!(hs.buckets, vec![(0, 1), (1, 1), (2047, 2), (u64::MAX, 1)]);
        // Absorbing twice keeps adding counters (idempotence is the
        // caller's job — each worker snapshot is absorbed exactly once).
        parent.absorb(&snap);
        assert_eq!(parent.snapshot().counter("hits"), 10);
    }

    #[test]
    fn ring_sink_bounds_and_counts_drops() {
        let mut ring = RingSink::new(2);
        let ev = |k: &str| ObsEvent {
            t: Time(0),
            component: "test".into(),
            kind: k.into(),
            fields: Vec::new(),
        };
        ring.record(&ev("a"));
        ring.record(&ev("b"));
        ring.record(&ev("c"));
        assert_eq!(ring.len(), 2);
        assert_eq!(ring.dropped(), 1);
        let kinds: Vec<&str> = ring.events().map(|e| e.kind.as_str()).collect();
        assert_eq!(kinds, vec!["b", "c"]);
    }

    #[test]
    fn disabled_obs_never_builds_fields() {
        let obs = Obs::disabled();
        let mut called = false;
        obs.emit(Time(5), "c", "k", || {
            called = true;
            Vec::new()
        });
        assert!(!called);
    }

    #[test]
    fn jsonl_sink_writes_one_line_per_event() {
        let buf: Vec<u8> = Vec::new();
        let sink = Rc::new(RefCell::new(JsonlSink::new(buf)));
        let obs = Obs::with_sink_handle(sink.clone());
        obs.emit(Time(7), "plc.mac", "collision", || {
            vec![("contenders".to_string(), FieldValue::U64(3))]
        });
        obs.emit(Time(9), "plc.mac", "sack", Vec::new);
        obs.flush();
        drop(obs);
        let sink = Rc::try_unwrap(sink).expect("no other handles after drop");
        let text = String::from_utf8(sink.into_inner().into_inner()).expect("utf8");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"collision\""));
        assert!(lines[0].contains("\"t\":7"));
    }

    #[test]
    fn with_default_scopes_the_ambient_handle() {
        let obs = Obs::new();
        let c = obs.registry().counter("scoped");
        with_default(obs.clone(), || {
            current().registry().counter("scoped").inc();
        });
        assert_eq!(c.get(), 1);
        // Outside the scope, the ambient handle is the disabled default
        // again — increments land in a different registry.
        current().registry().counter("scoped").inc();
        assert_eq!(c.get(), 1);
    }

    #[test]
    fn snapshot_serialization_is_deterministic() {
        let mk = || {
            let reg = Registry::new();
            reg.counter("b").add(2);
            reg.counter("a").inc();
            reg.gauge("g").set(0.5);
            reg.histo("h").record(10);
            serde_json::to_string(&reg.snapshot()).expect("serialize")
        };
        assert_eq!(mk(), mk());
    }

    #[test]
    fn quantiles_interpolate_within_log2_buckets() {
        let h = Histo::default();
        for v in 1..=100u64 {
            h.record(v);
        }
        let snap = h.snapshot();
        // Exact median of 1..=100 is 50.5; the log2 estimate must land in
        // the right bucket ([33, 64]) and be a sane interpolation.
        let p50 = snap.quantile(0.50).expect("non-empty");
        assert!((33.0..=64.0).contains(&p50), "p50 = {p50}");
        let p99 = snap.quantile(0.99).expect("non-empty");
        assert!((65.0..=128.0).contains(&p99), "p99 = {p99}");
        assert!(p50 <= p99);
        // Extremes: q=0 is the smallest sample's bucket, q=1 the largest.
        assert!(snap.quantile(0.0).expect("q0") >= 1.0);
        assert!(snap.quantile(1.0).expect("q1") <= 128.0);
    }

    #[test]
    fn quantile_edge_cases() {
        // Empty histogram and out-of-range q → None.
        let empty = Histo::default().snapshot();
        assert_eq!(empty.quantile(0.5), None);
        let h = Histo::default();
        h.record(7);
        let snap = h.snapshot();
        assert_eq!(snap.quantile(-0.1), None);
        assert_eq!(snap.quantile(1.1), None);
        // A single sample: every quantile lands in its bucket [5, 7].
        let p50 = snap.quantile(0.5).expect("one sample");
        assert!((5.0..=7.0).contains(&p50), "p50 = {p50}");
        // All-zero samples sit in the zero bucket.
        let z = Histo::default();
        z.record(0);
        z.record(0);
        assert_eq!(z.snapshot().quantile(0.9), Some(0.0));
    }

    /// An `io::Write` that always fails, for exercising error surfacing.
    struct FailingWriter;
    impl io::Write for FailingWriter {
        fn write(&mut self, _buf: &[u8]) -> io::Result<usize> {
            Err(io::Error::other("disk gone"))
        }
        fn flush(&mut self) -> io::Result<()> {
            Err(io::Error::other("disk gone"))
        }
    }

    #[test]
    fn flush_reports_sink_error_count() {
        let obs = Obs::with_sink(JsonlSink::new(FailingWriter));
        obs.emit(Time(1), "c", "k", Vec::new);
        obs.emit(Time(2), "c", "k", Vec::new);
        // Two failed writes plus one failed flush.
        assert_eq!(obs.flush(), 3);
        // A healthy sink (and no sink at all) reports zero.
        let ok = Obs::with_sink(JsonlSink::new(Vec::new()));
        ok.emit(Time(1), "c", "k", Vec::new);
        assert_eq!(ok.flush(), 0);
        assert_eq!(Obs::disabled().flush(), 0);
    }

    #[test]
    fn channel_sink_streams_without_blocking() {
        let (sink, rx) = ChannelSink::bounded(2);
        let sink = Rc::new(RefCell::new(sink));
        let obs = Obs::with_sink_handle(sink.clone());
        // Three events into a 2-slot channel with no reader: the third
        // is dropped, not blocked on.
        for t in 0..3 {
            obs.emit(Time(t), "c", "k", Vec::new);
        }
        assert_eq!(sink.borrow().forwarded(), 2);
        assert_eq!(sink.borrow().dropped(), 1);
        assert_eq!(obs.flush(), 1);
        // The subscriber sees the two forwarded events, in order.
        let got: Vec<ObsEvent> = rx.try_iter().collect();
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].t, Time(0));
        assert_eq!(got[1].t, Time(1));
        // Once drained, new events flow again.
        obs.emit(Time(9), "c", "k", Vec::new);
        assert_eq!(rx.try_iter().count(), 1);
        // A hung-up subscriber turns every send into a counted drop.
        drop(rx);
        obs.emit(Time(10), "c", "k", Vec::new);
        assert_eq!(sink.borrow().dropped(), 2);
    }

    #[test]
    fn config_digest_distinguishes_configs() {
        assert_eq!(config_digest(&(1u32, 2u32)), config_digest(&(1u32, 2u32)));
        assert_ne!(config_digest(&(1u32, 2u32)), config_digest(&(2u32, 1u32)));
        assert_eq!(config_digest(&1u8).len(), 16);
    }
}
