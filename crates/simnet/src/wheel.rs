//! Hierarchical time wheel + lockstep batch engine for ensembles of
//! independent simulations.
//!
//! The campaign layer runs hundreds of link-pair measurements per run,
//! and each one steps alone through its own event queue: N sims means N
//! private binary heaps and N cold struct traversals per wall-clock
//! slice. This module replaces that with **one** shared schedule — a
//! two-level time wheel keyed by *epoch index* — and a
//! [`Lockstep`] engine that advances every due member through the same
//! epoch window before touching the next one, so a mostly-idle ensemble
//! costs one wheel pop per *due* member instead of one heap churn per
//! member per slice.
//!
//! Members implement [`LockstepSim`]: the engine only needs to know
//! *when* a member next has work ([`LockstepSim::wake`]) and how to run
//! it up to a horizon ([`LockstepSim::advance`]). Crucially the engine
//! never re-implements member semantics — `advance` is required to
//! behave exactly as the member's own serial stepper would over the
//! same `[now, end)` run, just sliced at epoch boundaries. That is what
//! makes batched execution bit-identical to serial execution: the
//! slices concatenate to the very same step sequence (see
//! `plc-mac/src/batch.rs` and DESIGN.md §13 for the invariant).
//!
//! The wheel itself is allocation-free in steady state: intrusive
//! singly-linked slot lists over a preallocated `next[]` lane, `u64`
//! occupancy bitmaps per level (next-due slot is a `trailing_zeros`),
//! and a `far` overflow list for members scheduled beyond the second
//! level's horizon.

use crate::obs::{self, span, Counter};
use crate::time::{Duration, Time};

/// Sentinel link value: "end of slot list" / "not linked".
const NIL: u32 = u32::MAX;

/// Slots per wheel level. 64 matches the occupancy-bitmap word so the
/// nearest occupied slot is one `trailing_zeros` away.
const SLOTS: usize = 64;

/// A member of a lockstep batch: a simulation the engine can park until
/// its next pending work and then advance through an epoch window.
pub trait LockstepSim {
    /// Earliest instant at which this member has pending work (its
    /// current clock for a sim that steps continuously, or the next
    /// scheduled event for a task-shaped member).
    fn wake(&self) -> Time;

    /// Run all work strictly before `horizon`, exactly as the member's
    /// serial stepper would during a continuous run to `end`
    /// (`horizon <= end` always). Returns the next wake instant
    /// (`>= horizon`), or `None` when the member is permanently
    /// finished and must never be scheduled again.
    ///
    /// The bit-identity contract: for any ascending sequence of
    /// horizons ending at `end`, the concatenated `advance` calls must
    /// leave the member in exactly the state a single serial run to
    /// `end` would — same outputs, same RNG stream, same metrics.
    fn advance(&mut self, horizon: Time, end: Time) -> Option<Time>;
}

/// Two-level hierarchical time wheel over `u64` ticks.
///
/// Level 0 resolves single ticks within the cursor's current 64-tick
/// block; level 1 resolves 64-tick blocks within the next 64 blocks;
/// anything further lands in the `far` list and is promoted when the
/// cursor approaches. Ticks are abstract here — [`Lockstep`] maps one
/// tick to one epoch.
#[derive(Debug)]
pub struct TimeWheel {
    /// Slot heads, level 0: one tick per slot, `l0[t % 64]`.
    l0: [u32; SLOTS],
    /// Slot heads, level 1: one 64-tick block per slot, `l1[(t/64) % 64]`.
    l1: [u32; SLOTS],
    /// Occupancy bitmap per level (bit i set = slot i non-empty).
    l0_occ: u64,
    l1_occ: u64,
    /// Intrusive per-member link to the next member in the same slot.
    next: Vec<u32>,
    /// Exact scheduled tick per member (needed to cascade L1 -> L0).
    tick: Vec<u64>,
    /// Members scheduled beyond the L1 horizon, promoted lazily.
    far: Vec<u32>,
    far_min: u64,
    /// Current tick. Every scheduled tick is `>= cursor`.
    cursor: u64,
    len: usize,
}

impl TimeWheel {
    /// A wheel for members `0..capacity`, starting at tick 0.
    pub fn new(capacity: usize) -> Self {
        TimeWheel {
            l0: [NIL; SLOTS],
            l1: [NIL; SLOTS],
            l0_occ: 0,
            l1_occ: 0,
            next: vec![NIL; capacity],
            tick: vec![0; capacity],
            far: Vec::with_capacity(capacity),
            far_min: u64::MAX,
            cursor: 0,
            len: 0,
        }
    }

    /// Members currently scheduled.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Current tick: no member is scheduled earlier.
    pub fn cursor(&self) -> u64 {
        self.cursor
    }

    /// Schedule member `id` at `tick` (clamped up to the cursor — the
    /// past is not schedulable). Each member may be scheduled at most
    /// once; the caller (the engine) re-schedules after draining.
    pub fn schedule(&mut self, id: u32, tick: u64) {
        let tick = tick.max(self.cursor);
        debug_assert_eq!(self.next[id as usize], NIL, "member {id} already linked");
        self.tick[id as usize] = tick;
        let block = tick / SLOTS as u64;
        let cur_block = self.cursor / SLOTS as u64;
        if block == cur_block {
            let s = (tick % SLOTS as u64) as usize;
            self.next[id as usize] = self.l0[s];
            self.l0[s] = id;
            self.l0_occ |= 1 << s;
        } else if block < cur_block + SLOTS as u64 {
            let s = (block % SLOTS as u64) as usize;
            self.next[id as usize] = self.l1[s];
            self.l1[s] = id;
            self.l1_occ |= 1 << s;
        } else {
            self.far.push(id);
            self.far_min = self.far_min.min(tick);
        }
        self.len += 1;
    }

    /// Drain the earliest occupied tick into `due` (cleared first) and
    /// advance the cursor to it. Returns that tick, or `None` when the
    /// wheel is empty. Members in `due` are no longer scheduled.
    pub fn pop_next(&mut self, due: &mut Vec<u32>) -> Option<u64> {
        due.clear();
        if self.len == 0 {
            return None;
        }
        loop {
            // Promote far members that fell inside the L1 horizon as
            // the cursor advanced; afterwards every far member is
            // strictly later than everything resident in L0/L1, so the
            // level order below is the tick order.
            self.promote_far();
            if self.l0_occ != 0 {
                let s = self.l0_occ.trailing_zeros() as usize;
                let tick = (self.cursor / SLOTS as u64) * SLOTS as u64 + s as u64;
                debug_assert!(tick >= self.cursor);
                self.cursor = tick;
                let mut id = self.l0[s];
                self.l0[s] = NIL;
                self.l0_occ &= !(1 << s);
                while id != NIL {
                    due.push(id);
                    let n = self.next[id as usize];
                    self.next[id as usize] = NIL;
                    id = n;
                }
                self.len -= due.len();
                return Some(tick);
            }
            if self.l1_occ != 0 {
                // Nearest occupied block strictly after the current
                // one: rotate the bitmap so that block cur+1 is bit 0.
                let cur_block = self.cursor / SLOTS as u64;
                let first = ((cur_block + 1) % SLOTS as u64) as u32;
                let rotated = self.l1_occ.rotate_right(first);
                let off = rotated.trailing_zeros() as u64;
                let block = cur_block + 1 + off;
                let s = (block % SLOTS as u64) as usize;
                // Advance into that block and cascade its slot into L0
                // by exact tick; the loop re-runs and pops from L0.
                self.cursor = block * SLOTS as u64;
                let mut id = self.l1[s];
                self.l1[s] = NIL;
                self.l1_occ &= !(1 << s);
                while id != NIL {
                    let n = self.next[id as usize];
                    let t = self.tick[id as usize];
                    debug_assert_eq!(t / SLOTS as u64, block);
                    let ls = (t % SLOTS as u64) as usize;
                    self.next[id as usize] = self.l0[ls];
                    self.l0[ls] = id;
                    self.l0_occ |= 1 << ls;
                    id = n;
                }
                continue;
            }
            // Only far members remain: jump the cursor to the earliest
            // and let promote_far sort them into the levels.
            debug_assert!(!self.far.is_empty());
            self.cursor = self.far_min;
        }
    }

    /// Re-insert far members whose tick is now within the L1 horizon.
    fn promote_far(&mut self) {
        let horizon = (self.cursor / SLOTS as u64 + SLOTS as u64) * SLOTS as u64;
        if self.far_min >= horizon {
            return;
        }
        self.far_min = u64::MAX;
        let mut i = 0;
        while i < self.far.len() {
            let id = self.far[i];
            let t = self.tick[id as usize];
            if t < horizon {
                self.far.swap_remove(i);
                self.len -= 1; // schedule() re-adds it
                self.schedule(id, t);
            } else {
                self.far_min = self.far_min.min(t);
                i += 1;
            }
        }
    }
}

/// Batch-engine counters, registered against the ambient [`Obs`] at
/// engine construction (see [`obs::current`]).
///
/// [`Obs`]: crate::obs::Obs
#[derive(Debug, Clone)]
struct BatchMetrics {
    /// Non-empty epochs processed.
    epochs: Counter,
    /// Sum over epochs of members advanced in that epoch.
    active_sims: Counter,
    /// Sum over epochs of members that stayed parked in the wheel
    /// (scheduled, but not due) while the epoch ran — the work the
    /// per-sim round-robin would have paid and the wheel skips.
    idle_skips: Counter,
}

impl BatchMetrics {
    fn new() -> Self {
        let obs = obs::current();
        let reg = obs.registry();
        BatchMetrics {
            epochs: reg.counter("mac.batch.epochs"),
            active_sims: reg.counter("mac.batch.active_sims"),
            idle_skips: reg.counter("mac.batch.idle_skips"),
        }
    }
}

/// Default epoch width: 10 ms, half a mains cycle — the natural beat of
/// the HomePlug AV MAC and the chunk width the per-sim sweeps already
/// use.
pub const DEFAULT_EPOCH: Duration = Duration::from_millis(10);

/// Lockstep batch engine: advances N independent [`LockstepSim`]s
/// through shared epochs scheduled on a [`TimeWheel`].
///
/// [`run_until`](Lockstep::run_until) admits every unfinished member
/// whose wake falls before `end`, then repeatedly pops the earliest
/// occupied epoch and advances each due member through it. Members
/// whose next wake lands at or beyond `end` are parked (cheap: one
/// `u64` lane write) and re-admitted by a later `run_until`; members
/// whose `advance` returns `None` are finished for good.
///
/// Determinism: members are independent, so per-member results do not
/// depend on the interleaving; the engine still processes epochs in
/// ascending order and members within an epoch in wheel drain order,
/// which is itself a pure function of the schedule history.
#[derive(Debug)]
pub struct Lockstep<S: LockstepSim> {
    sims: Vec<S>,
    wheel: TimeWheel,
    epoch_ns: u64,
    /// SoA wake lane, nanoseconds; `u64::MAX` = permanently finished.
    wake_ns: Vec<u64>,
    /// Reused drain scratch.
    due: Vec<u32>,
    metrics: BatchMetrics,
}

impl<S: LockstepSim> Lockstep<S> {
    /// Engine over `sims` with the [`DEFAULT_EPOCH`] width.
    pub fn new(sims: Vec<S>) -> Self {
        Self::with_epoch(sims, DEFAULT_EPOCH)
    }

    /// Engine over `sims` with an explicit epoch width (must be > 0).
    pub fn with_epoch(sims: Vec<S>, epoch: Duration) -> Self {
        assert!(epoch.as_nanos() > 0, "epoch must be positive");
        let n = sims.len();
        let wake_ns = sims.iter().map(|s| s.wake().as_nanos()).collect();
        Lockstep {
            sims,
            wheel: TimeWheel::new(n),
            epoch_ns: epoch.as_nanos(),
            wake_ns,
            due: Vec::with_capacity(n),
            metrics: BatchMetrics::new(),
        }
    }

    /// Number of members (finished ones included).
    pub fn len(&self) -> usize {
        self.sims.len()
    }

    /// True when the batch has no members.
    pub fn is_empty(&self) -> bool {
        self.sims.is_empty()
    }

    /// The members, for draining outputs between `run_until` calls.
    pub fn sims(&self) -> &[S] {
        &self.sims
    }

    /// Mutable members. Callers may drain buffers or read state but
    /// must not create earlier pending work than the member's `wake`
    /// reported — the engine re-reads `wake()` only at the next
    /// `run_until` admission.
    pub fn sims_mut(&mut self) -> &mut [S] {
        &mut self.sims
    }

    /// Consume the engine and hand the members back.
    pub fn into_sims(self) -> Vec<S> {
        self.sims
    }

    /// Advance every member to `end`, bit-identically to running each
    /// member's own stepper to `end` serially. `end` must not decrease
    /// across calls.
    pub fn run_until(&mut self, end: Time) {
        let end_ns = end.as_nanos();
        // Admit: every unfinished member with pending work before
        // `end`. The wheel is always empty between run_until calls
        // (the loop below drains it), so one O(N) scan per call — not
        // per epoch — is the whole admission cost.
        debug_assert!(self.wheel.is_empty());
        for (i, sim) in self.sims.iter().enumerate() {
            // Re-read wake for parked members: cheap, and robust to
            // callers that drained state between calls.
            if self.wake_ns[i] != u64::MAX {
                let w = sim.wake().as_nanos();
                self.wake_ns[i] = w;
                if w < end_ns {
                    self.wheel.schedule(i as u32, w / self.epoch_ns);
                }
            }
        }
        let mut due = std::mem::take(&mut self.due);
        while let Some(tick) = self.wheel.pop_next(&mut due) {
            let epoch_start = tick * self.epoch_ns;
            debug_assert!(epoch_start < end_ns);
            let horizon = Time(end_ns.min(epoch_start + self.epoch_ns));
            let _ep = span::enter_at("mac.batch_epoch", Time(epoch_start));
            self.metrics.epochs.inc();
            self.metrics.active_sims.add(due.len() as u64);
            self.metrics.idle_skips.add(self.wheel.len() as u64);
            for &id in &due {
                let i = id as usize;
                match self.sims[i].advance(horizon, end) {
                    Some(w) => {
                        let w_ns = w.as_nanos();
                        debug_assert!(w_ns >= horizon.as_nanos());
                        self.wake_ns[i] = w_ns;
                        if w_ns < end_ns {
                            self.wheel.schedule(id, w_ns / self.epoch_ns);
                        }
                        // else: parked until a later run_until.
                    }
                    None => self.wake_ns[i] = u64::MAX,
                }
            }
        }
        self.due = due;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BinaryHeap;

    // -- wheel ----------------------------------------------------------

    /// Drive the wheel and a BinaryHeap model with the same schedule
    /// stream; they must agree on every (tick, member-set) pop.
    fn check_against_model(inserts: &[(u32, u64)], reschedule_gap: u64) {
        let n = inserts.iter().map(|&(id, _)| id + 1).max().unwrap_or(0);
        let mut wheel = TimeWheel::new(n as usize);
        let mut model: BinaryHeap<std::cmp::Reverse<(u64, u32)>> = BinaryHeap::new();
        for &(id, tick) in inserts {
            wheel.schedule(id, tick);
            model.push(std::cmp::Reverse((tick, id)));
        }
        let mut due = Vec::new();
        let mut rounds = 0u64;
        while let Some(tick) = wheel.pop_next(&mut due) {
            let mut expect = Vec::new();
            while let Some(&std::cmp::Reverse((t, id))) = model.peek() {
                if t != tick {
                    break;
                }
                model.pop();
                expect.push(id);
            }
            let mut got = due.clone();
            got.sort_unstable();
            expect.sort_unstable();
            assert_eq!(got, expect, "tick {tick} member set");
            // Reschedule every other popped member further out, like
            // the engine does, to exercise cascades and far promotion.
            if reschedule_gap > 0 && rounds < 200 {
                for (k, &id) in due.iter().enumerate() {
                    if k % 2 == 0 {
                        let t2 = tick + reschedule_gap + id as u64 % 7;
                        wheel.schedule(id, t2);
                        model.push(std::cmp::Reverse((t2, id)));
                    }
                }
            }
            rounds += 1;
        }
        assert!(model.is_empty(), "wheel drained before the model");
    }

    #[test]
    fn wheel_matches_heap_model_short_range() {
        let inserts: Vec<(u32, u64)> = (0..50).map(|i| (i, (i as u64 * 13) % 60)).collect();
        check_against_model(&inserts, 0);
    }

    #[test]
    fn wheel_matches_heap_model_l1_range() {
        let inserts: Vec<(u32, u64)> = (0..80).map(|i| (i, (i as u64 * 101) % 4000)).collect();
        check_against_model(&inserts, 57);
    }

    #[test]
    fn wheel_matches_heap_model_far_range() {
        // Ticks far beyond the L1 horizon (64*64 = 4096) force the far
        // list and its promotion path.
        let inserts: Vec<(u32, u64)> = (0..60).map(|i| (i, (i as u64 * 7919) % 100_000)).collect();
        check_against_model(&inserts, 4096 + 17);
    }

    #[test]
    fn wheel_clamps_past_ticks_to_cursor() {
        let mut wheel = TimeWheel::new(4);
        wheel.schedule(0, 100);
        let mut due = Vec::new();
        assert_eq!(wheel.pop_next(&mut due), Some(100));
        // Scheduling "in the past" lands on the cursor, never before.
        wheel.schedule(1, 3);
        assert_eq!(wheel.pop_next(&mut due), Some(100));
        assert_eq!(due, vec![1]);
        assert!(wheel.pop_next(&mut due).is_none());
    }

    #[test]
    fn wheel_same_tick_members_drain_together() {
        let mut wheel = TimeWheel::new(8);
        for id in 0..8 {
            wheel.schedule(id, 42);
        }
        let mut due = Vec::new();
        assert_eq!(wheel.pop_next(&mut due), Some(42));
        assert_eq!(due.len(), 8);
        assert!(wheel.is_empty());
    }

    // -- engine ---------------------------------------------------------

    /// Toy member: fires at a fixed period, records every firing time,
    /// finishes after `limit` firings. Serial reference = a plain loop.
    struct Ticker {
        period: u64,
        next: u64,
        fired: Vec<u64>,
        limit: usize,
    }

    impl LockstepSim for Ticker {
        fn wake(&self) -> Time {
            Time(self.next)
        }
        fn advance(&mut self, horizon: Time, _end: Time) -> Option<Time> {
            while self.next < horizon.as_nanos() {
                self.fired.push(self.next);
                self.next += self.period;
                if self.fired.len() >= self.limit {
                    return None;
                }
            }
            Some(Time(self.next))
        }
    }

    fn tickers() -> Vec<Ticker> {
        (0..37)
            .map(|i| Ticker {
                period: 1_000 + 317 * i,
                next: 13 * i,
                fired: Vec::new(),
                limit: 50 + (i as usize % 9),
            })
            .collect()
    }

    #[test]
    fn lockstep_matches_serial_execution() {
        let serial: Vec<Vec<u64>> = tickers()
            .into_iter()
            .map(|mut t| {
                // Serial reference: advance straight to the end.
                let _ = t.advance(Time(200_000), Time(200_000));
                t.fired
            })
            .collect();
        let mut batch = Lockstep::with_epoch(tickers(), Duration::from_nanos(4_096));
        // Split the run across several run_until calls to exercise
        // parking and re-admission.
        for end in [50_000u64, 50_000, 120_001, 200_000] {
            batch.run_until(Time(end));
        }
        let batched: Vec<Vec<u64>> = batch.into_sims().into_iter().map(|t| t.fired).collect();
        assert_eq!(serial, batched);
    }

    #[test]
    fn lockstep_counters_account_for_epochs() {
        let obs = obs::Obs::new();
        let reg = obs.registry().clone();
        obs::with_default(obs, || {
            let mut batch = Lockstep::with_epoch(
                (0..4)
                    .map(|i| Ticker {
                        period: 10_000,
                        next: 2_500 * i,
                        fired: Vec::new(),
                        limit: 100,
                    })
                    .collect(),
                Duration::from_nanos(1_000),
            );
            batch.run_until(Time(40_000));
        });
        let snap = reg.snapshot();
        let epochs = snap.counter("mac.batch.epochs");
        let active = snap.counter("mac.batch.active_sims");
        // 4 tickers x 4 firings each before t=40_000, one epoch per
        // firing (periods are multiples of the epoch).
        assert_eq!(active, 16);
        assert_eq!(epochs, 16);
    }

    #[test]
    #[should_panic(expected = "epoch must be positive")]
    fn zero_epoch_is_rejected() {
        let _ = Lockstep::with_epoch(Vec::<Ticker>::new(), Duration::ZERO);
    }
}
