//! Floor geometry for the WiFi path-loss model.
//!
//! The testbed floor (paper Fig. 2) is a 70 m × 40 m office floor. WiFi
//! attenuation depends on the euclidean distance between stations and on
//! the number of walls the direct path crosses; this module provides both.

use serde::{Deserialize, Serialize};

/// A point on the floor plan, in metres.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Point {
    /// Metres along the long side of the floor.
    pub x: f64,
    /// Metres along the short side of the floor.
    pub y: f64,
}

impl Point {
    /// Construct a point.
    pub const fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Euclidean distance to another point, in metres.
    pub fn distance(&self, other: &Point) -> f64 {
        ((self.x - other.x).powi(2) + (self.y - other.y).powi(2)).sqrt()
    }
}

/// An opaque wall segment between two points.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Wall {
    /// One endpoint of the wall.
    pub a: Point,
    /// The other endpoint of the wall.
    pub b: Point,
    /// Attenuation the wall adds to a crossing path, in dB.
    pub attenuation_db: f64,
}

impl Wall {
    /// A standard office drywall partition (≈5 dB at 2.4 GHz).
    pub fn drywall(a: Point, b: Point) -> Self {
        Wall {
            a,
            b,
            attenuation_db: 5.0,
        }
    }

    /// A load-bearing concrete wall (≈12 dB).
    pub fn concrete(a: Point, b: Point) -> Self {
        Wall {
            a,
            b,
            attenuation_db: 12.0,
        }
    }
}

/// Orientation of the ordered triple (p, q, r): >0 counter-clockwise,
/// <0 clockwise, 0 collinear.
fn orient(p: Point, q: Point, r: Point) -> f64 {
    (q.x - p.x) * (r.y - p.y) - (q.y - p.y) * (r.x - p.x)
}

/// Do segments `(p1, p2)` and `(q1, q2)` properly intersect? Shared
/// endpoints and collinear overlaps count as intersections.
pub fn segments_intersect(p1: Point, p2: Point, q1: Point, q2: Point) -> bool {
    let d1 = orient(q1, q2, p1);
    let d2 = orient(q1, q2, p2);
    let d3 = orient(p1, p2, q1);
    let d4 = orient(p1, p2, q2);
    if ((d1 > 0.0 && d2 < 0.0) || (d1 < 0.0 && d2 > 0.0))
        && ((d3 > 0.0 && d4 < 0.0) || (d3 < 0.0 && d4 > 0.0))
    {
        return true;
    }
    let on_segment = |p: Point, q: Point, r: Point| {
        r.x >= p.x.min(q.x) && r.x <= p.x.max(q.x) && r.y >= p.y.min(q.y) && r.y <= p.y.max(q.y)
    };
    (d1 == 0.0 && on_segment(q1, q2, p1))
        || (d2 == 0.0 && on_segment(q1, q2, p2))
        || (d3 == 0.0 && on_segment(p1, p2, q1))
        || (d4 == 0.0 && on_segment(p1, p2, q2))
}

/// A floor plan: bounding dimensions plus wall segments.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Floor {
    /// Floor width in metres (x direction).
    pub width_m: f64,
    /// Floor depth in metres (y direction).
    pub depth_m: f64,
    /// Interior walls.
    pub walls: Vec<Wall>,
}

impl Floor {
    /// An empty floor with the given dimensions.
    pub fn new(width_m: f64, depth_m: f64) -> Self {
        Floor {
            width_m,
            depth_m,
            walls: Vec::new(),
        }
    }

    /// Add a wall.
    pub fn add_wall(&mut self, wall: Wall) {
        self.walls.push(wall);
    }

    /// Total wall attenuation (dB) along the straight line between two
    /// points.
    pub fn wall_attenuation_db(&self, a: Point, b: Point) -> f64 {
        self.walls
            .iter()
            .filter(|w| segments_intersect(a, b, w.a, w.b))
            .map(|w| w.attenuation_db)
            .sum()
    }

    /// Number of walls crossed on the straight line between two points.
    pub fn walls_crossed(&self, a: Point, b: Point) -> usize {
        self.walls
            .iter()
            .filter(|w| segments_intersect(a, b, w.a, w.b))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_is_euclidean() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert!((a.distance(&b) - 5.0).abs() < 1e-12);
        assert_eq!(a.distance(&a), 0.0);
    }

    #[test]
    fn crossing_segments_intersect() {
        assert!(segments_intersect(
            Point::new(0.0, 0.0),
            Point::new(2.0, 2.0),
            Point::new(0.0, 2.0),
            Point::new(2.0, 0.0),
        ));
    }

    #[test]
    fn parallel_segments_do_not_intersect() {
        assert!(!segments_intersect(
            Point::new(0.0, 0.0),
            Point::new(2.0, 0.0),
            Point::new(0.0, 1.0),
            Point::new(2.0, 1.0),
        ));
    }

    #[test]
    fn touching_endpoint_counts() {
        assert!(segments_intersect(
            Point::new(0.0, 0.0),
            Point::new(1.0, 1.0),
            Point::new(1.0, 1.0),
            Point::new(2.0, 0.0),
        ));
    }

    #[test]
    fn floor_accumulates_wall_attenuation() {
        let mut floor = Floor::new(70.0, 40.0);
        floor.add_wall(Wall::drywall(Point::new(5.0, 0.0), Point::new(5.0, 40.0)));
        floor.add_wall(Wall::concrete(
            Point::new(10.0, 0.0),
            Point::new(10.0, 40.0),
        ));
        let a = Point::new(0.0, 20.0);
        let b = Point::new(15.0, 20.0);
        assert_eq!(floor.walls_crossed(a, b), 2);
        assert!((floor.wall_attenuation_db(a, b) - 17.0).abs() < 1e-12);
        // A path that stays left of both walls crosses nothing.
        let c = Point::new(4.0, 5.0);
        assert_eq!(floor.walls_crossed(a, c), 0);
        assert_eq!(floor.wall_attenuation_db(a, c), 0.0);
    }
}
