//! Wall-clock span tracing and self-profiling.
//!
//! The metrics registry says *what* happened; spans say *where the wall
//! clock went*. A span is an RAII region ([`enter`] / [`enter_at`] →
//! [`SpanGuard`]) on a thread-local stack: nested spans attribute their
//! duration to themselves and subtract it from the enclosing span's
//! *self time*, so a profile ranks phases by the time actually spent in
//! them rather than in their callees.
//!
//! Like the rest of [`obs`](crate::obs), everything is hand-rolled (no
//! `tracing` crate) and obeys the inertness invariant:
//!
//! * **Disabled is free and bit-inert.** When no collector is installed
//!   ([`is_enabled`] is false — the default) a span site is one
//!   thread-local boolean load and the guard is a no-op; nothing about a
//!   run's outputs can change. Enabled spans only read the wall clock —
//!   they never touch simulation state, so outputs stay byte-identical
//!   with tracing on; only the (explicitly wall-clock) profile differs.
//! * **Deterministic aggregation.** Per-thread [`SpanReport`]s merge via
//!   [`SpanReport::absorb`] in caller-chosen (chunk) order, mirroring
//!   [`Registry::absorb`](crate::obs::Registry::absorb); stats are keyed
//!   and sorted by span name.
//!
//! Two consumers sit on top:
//!
//! * [`SpanReport::profile`] summarizes into a [`RunProfile`] (top spans
//!   by self time, with p50/p90/p99 from the log2 histogram) that
//!   `bench::RunGuard` embeds in every run manifest.
//! * [`write_chrome_trace`] exports the raw begin/end events as Chrome
//!   `trace_event` JSON, viewable in Perfetto / `chrome://tracing`.
//!   Events are recorded live in call order, so B/E pairs are properly
//!   nested by construction. A per-root sampling knob
//!   ([`SpanConfig::sample_every`]) keeps full campaigns cheap: the
//!   sampling decision is made when a *root* span opens and inherited by
//!   its whole subtree, so sampled traces stay balanced.

use super::{HistoSnapshot, HISTO_BUCKETS};
use crate::time::Time;
use serde::{Deserialize, Serialize};
use std::cell::{Cell, RefCell};
use std::io;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// Cap on buffered trace events per thread (~48 MB worst case). Spans
/// beyond the cap still aggregate into stats; only their trace events are
/// dropped (and counted in [`SpanReport::dropped_events`]).
const MAX_EVENTS_PER_THREAD: usize = 1 << 20;

/// Nanoseconds since the process-wide trace anchor (first use).
///
/// All threads share one anchor so their events land on one Perfetto
/// timeline.
fn now_ns() -> u64 {
    static ANCHOR: OnceLock<Instant> = OnceLock::new();
    ANCHOR.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

/// Stable per-thread id for trace events (assigned on first span).
fn trace_tid() -> u64 {
    static NEXT_TID: AtomicU64 = AtomicU64::new(1);
    thread_local! {
        static TID: Cell<u64> = const { Cell::new(0) };
    }
    TID.with(|t| {
        if t.get() == 0 {
            t.set(NEXT_TID.fetch_add(1, Ordering::Relaxed));
        }
        t.get()
    })
}

// ---------------------------------------------------------------------------
// Configuration and thread-local collector
// ---------------------------------------------------------------------------

/// Span collection configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanConfig {
    /// Record begin/end [`TraceEvent`]s for Chrome trace export. Stats
    /// aggregate regardless; this only controls the (memory-hungry) raw
    /// event buffer.
    pub trace: bool,
    /// Trace every Nth root span's subtree (1 = every root). Ignored when
    /// `trace` is false; 0 is treated as 1.
    pub sample_every: u64,
}

impl Default for SpanConfig {
    fn default() -> Self {
        SpanConfig {
            trace: false,
            sample_every: 1,
        }
    }
}

impl SpanConfig {
    /// Stats-only collection (no trace events).
    pub fn stats() -> Self {
        Self::default()
    }

    /// Stats plus trace events for every `sample_every`-th root span.
    pub fn traced(sample_every: u64) -> Self {
        SpanConfig {
            trace: true,
            sample_every: sample_every.max(1),
        }
    }
}

/// Per-span-name accumulator (a wall-clock analogue of [`Histo`], over
/// self-time nanoseconds).
///
/// [`Histo`]: crate::obs::Histo
#[derive(Debug, Clone)]
struct StatAcc {
    count: u64,
    total_ns: u64,
    self_ns: u64,
    min_ns: u64,
    max_ns: u64,
    /// Log2 buckets over per-call self-time (same encoding as
    /// [`Histo`](crate::obs::Histo)).
    buckets: Box<[u64; HISTO_BUCKETS]>,
}

impl StatAcc {
    fn new() -> Self {
        StatAcc {
            count: 0,
            total_ns: 0,
            self_ns: 0,
            min_ns: u64::MAX,
            max_ns: 0,
            buckets: Box::new([0; HISTO_BUCKETS]),
        }
    }

    fn record(&mut self, total_ns: u64, self_ns: u64) {
        self.count += 1;
        self.total_ns += total_ns;
        self.self_ns += self_ns;
        self.min_ns = self.min_ns.min(total_ns);
        self.max_ns = self.max_ns.max(total_ns);
        let idx = if self_ns == 0 {
            0
        } else {
            64 - self_ns.leading_zeros() as usize
        };
        self.buckets[idx] += 1;
    }

    fn to_stats(&self, name: &str) -> SpanStats {
        let filled = self
            .buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| {
                let le = if i == 0 {
                    0
                } else if i >= 64 {
                    u64::MAX
                } else {
                    (1u64 << i) - 1
                };
                (le, c)
            })
            .collect();
        SpanStats {
            name: name.to_string(),
            count: self.count,
            total_ns: self.total_ns,
            self_ns: self.self_ns,
            min_ns: if self.count == 0 { 0 } else { self.min_ns },
            max_ns: self.max_ns,
            self_histo: HistoSnapshot {
                count: self.count,
                sum: self.self_ns,
                buckets: filled,
            },
        }
    }

    fn absorb(&mut self, s: &SpanStats) {
        self.count += s.count;
        self.total_ns += s.total_ns;
        self.self_ns += s.self_ns;
        if s.count > 0 {
            self.min_ns = self.min_ns.min(s.min_ns);
            self.max_ns = self.max_ns.max(s.max_ns);
        }
        for &(le, c) in &s.self_histo.buckets {
            let idx = if le == 0 {
                0
            } else {
                64 - le.leading_zeros() as usize
            };
            self.buckets[idx] += c;
        }
    }
}

/// One open span on the thread-local stack.
#[derive(Debug, Clone, Copy)]
struct Frame {
    /// Index into the collector's `names` / `stats` tables.
    idx: usize,
    start_ns: u64,
    /// Total duration of already-closed children (subtracted from this
    /// frame's duration to get self time).
    child_ns: u64,
    /// Whether this frame emits trace events (root sampling decision,
    /// inherited by children).
    traced: bool,
}

#[derive(Debug)]
struct Collector {
    cfg: SpanConfig,
    /// Root spans opened so far (drives `sample_every`).
    roots: u64,
    names: Vec<&'static str>,
    stats: Vec<StatAcc>,
    stack: Vec<Frame>,
    events: Vec<TraceEvent>,
    dropped_events: u64,
    tid: u64,
}

impl Collector {
    fn new(cfg: SpanConfig) -> Self {
        Collector {
            cfg,
            roots: 0,
            names: Vec::new(),
            stats: Vec::new(),
            stack: Vec::new(),
            events: Vec::new(),
            dropped_events: 0,
            tid: trace_tid(),
        }
    }

    fn name_idx(&mut self, name: &'static str) -> usize {
        // Linear scan: span sites use a handful of static names, and the
        // common case hits within the first few entries.
        match self.names.iter().position(|&n| n == name) {
            Some(i) => i,
            None => {
                self.names.push(name);
                self.stats.push(StatAcc::new());
                self.names.len() - 1
            }
        }
    }

    fn push(&mut self, name: &'static str, sim_s: Option<f64>) {
        let idx = self.name_idx(name);
        let traced = if let Some(parent) = self.stack.last() {
            parent.traced
        } else {
            let n = self.roots;
            self.roots += 1;
            self.cfg.trace && n.is_multiple_of(self.cfg.sample_every.max(1))
        };
        // The B/E decision is made once, here: if the begin event fits,
        // the matching end event is always recorded too (the frame keeps
        // `traced = true`), so exports stay balanced even at the cap.
        let traced = if traced {
            if self.events.len() < MAX_EVENTS_PER_THREAD {
                true
            } else {
                self.dropped_events += 1;
                false
            }
        } else {
            false
        };
        let start_ns = now_ns();
        if traced {
            self.events.push(TraceEvent {
                name,
                begin: true,
                ts_ns: start_ns,
                tid: self.tid,
                sim_s,
            });
        }
        self.stack.push(Frame {
            idx,
            start_ns,
            child_ns: 0,
            traced,
        });
    }

    fn pop(&mut self) {
        let Some(frame) = self.stack.pop() else {
            return;
        };
        let end_ns = now_ns();
        let total = end_ns.saturating_sub(frame.start_ns);
        let self_ns = total.saturating_sub(frame.child_ns);
        self.stats[frame.idx].record(total, self_ns);
        if let Some(parent) = self.stack.last_mut() {
            parent.child_ns += total;
        }
        if frame.traced {
            self.events.push(TraceEvent {
                name: self.names[frame.idx],
                begin: false,
                ts_ns: end_ns,
                tid: self.tid,
                sim_s: None,
            });
        }
    }

    fn report(&self) -> SpanReport {
        let mut stats: Vec<SpanStats> = self
            .names
            .iter()
            .zip(&self.stats)
            .filter(|(_, acc)| acc.count > 0)
            .map(|(name, acc)| acc.to_stats(name))
            .collect();
        stats.sort_by(|a, b| a.name.cmp(&b.name));
        SpanReport {
            stats,
            events: self.events.clone(),
            dropped_events: self.dropped_events,
        }
    }

    fn absorb(&mut self, report: &SpanReport) {
        for s in &report.stats {
            let idx = match self.names.iter().position(|&n| n == s.name) {
                Some(i) => i,
                None => {
                    self.names.push(leak_name(&s.name));
                    self.stats.push(StatAcc::new());
                    self.names.len() - 1
                }
            };
            self.stats[idx].absorb(s);
        }
        self.events.extend(report.events.iter().cloned());
        self.dropped_events += report.dropped_events;
    }
}

/// Intern a dynamic span name to `&'static str`.
///
/// Span names are a small closed set of static literals; a worker report
/// can only contain names that some thread entered via [`enter`], so the
/// interned set is bounded by the number of distinct span sites in the
/// binary. Names are cached process-wide so repeated absorbs never grow
/// memory.
fn leak_name(name: &str) -> &'static str {
    use std::sync::Mutex;
    static INTERNED: Mutex<Vec<&'static str>> = Mutex::new(Vec::new());
    let mut set = INTERNED.lock().expect("name intern poisoned");
    if let Some(&n) = set.iter().find(|&&n| n == name) {
        return n;
    }
    let leaked: &'static str = Box::leak(name.to_string().into_boxed_str());
    set.push(leaked);
    leaked
}

thread_local! {
    /// Fast-path flag mirroring `COLLECTOR.is_some()`: a disabled span
    /// site costs one thread-local boolean load.
    static ACTIVE: Cell<bool> = const { Cell::new(false) };
    static COLLECTOR: RefCell<Option<Collector>> = const { RefCell::new(None) };
}

// ---------------------------------------------------------------------------
// Public API
// ---------------------------------------------------------------------------

/// Enable span collection on this thread with `cfg`, replacing any
/// previous collector (its data is discarded — use [`disable`] first to
/// keep it).
pub fn enable(cfg: SpanConfig) {
    COLLECTOR.with(|c| *c.borrow_mut() = Some(Collector::new(cfg)));
    ACTIVE.with(|a| a.set(true));
}

/// Disable span collection on this thread, returning everything collected
/// since [`enable`]. Returns an empty report when collection was off.
pub fn disable() -> SpanReport {
    ACTIVE.with(|a| a.set(false));
    COLLECTOR.with(|c| {
        c.borrow_mut()
            .take()
            .map(|col| col.report())
            .unwrap_or_default()
    })
}

/// True when span collection is enabled on this thread.
pub fn is_enabled() -> bool {
    ACTIVE.with(|a| a.get())
}

/// The active [`SpanConfig`], if collection is enabled on this thread.
///
/// Parallel sweeps capture this on the coordinator and re-[`enable`] the
/// same configuration inside each worker (via [`scoped`]), then absorb
/// the workers' reports — the span analogue of snapshot absorption.
pub fn active_config() -> Option<SpanConfig> {
    COLLECTOR.with(|c| c.borrow().as_ref().map(|col| col.cfg))
}

/// Run `f` with span collection enabled under `cfg`, restoring the
/// previous collector state afterwards; returns `f`'s result and the
/// spans collected during the call.
pub fn scoped<T>(cfg: SpanConfig, f: impl FnOnce() -> T) -> (T, SpanReport) {
    let prev = COLLECTOR.with(|c| c.borrow_mut().replace(Collector::new(cfg)));
    let was_active = ACTIVE.with(|a| a.replace(true));
    let out = f();
    let col = COLLECTOR.with(|c| std::mem::replace(&mut *c.borrow_mut(), prev));
    ACTIVE.with(|a| a.set(was_active));
    let report = col.map(|c| c.report()).unwrap_or_default();
    (out, report)
}

/// Merge a worker's [`SpanReport`] into this thread's active collector.
/// No-op when collection is disabled. Callers absorb in deterministic
/// (chunk) order, like [`Registry::absorb`](crate::obs::Registry::absorb).
pub fn absorb(report: &SpanReport) {
    if !is_enabled() {
        return;
    }
    COLLECTOR.with(|c| {
        if let Some(col) = c.borrow_mut().as_mut() {
            col.absorb(report);
        }
    });
}

/// Open a span named `name`; the span closes when the returned guard
/// drops. Guards must drop in reverse open order — RAII scoping gives
/// this for free.
#[must_use = "a span closes when its guard drops; bind it to a variable"]
pub fn enter(name: &'static str) -> SpanGuard {
    enter_inner(name, None)
}

/// [`enter`], additionally stamping the begin event with the simulation
/// time `t` (shown as `sim_s` in the Chrome trace).
#[must_use = "a span closes when its guard drops; bind it to a variable"]
pub fn enter_at(name: &'static str, t: Time) -> SpanGuard {
    enter_inner(name, Some(t.as_secs_f64()))
}

fn enter_inner(name: &'static str, sim_s: Option<f64>) -> SpanGuard {
    let armed = is_enabled();
    if armed {
        COLLECTOR.with(|c| {
            if let Some(col) = c.borrow_mut().as_mut() {
                col.push(name, sim_s);
            }
        });
    }
    SpanGuard {
        armed,
        _not_send: PhantomData,
    }
}

/// RAII guard closing a span on drop. `!Send` by construction (the span
/// stack is thread-local).
#[derive(Debug)]
pub struct SpanGuard {
    armed: bool,
    _not_send: PhantomData<*const ()>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if self.armed {
            COLLECTOR.with(|c| {
                if let Some(col) = c.borrow_mut().as_mut() {
                    col.pop();
                }
            });
        }
    }
}

/// Open a span for the rest of the enclosing scope:
/// `span!("phy.epoch_rebuild");` or `span!("mac.run_until", at: t);`.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        let _span_guard = $crate::obs::span::enter($name);
    };
    ($name:expr, at: $t:expr) => {
        let _span_guard = $crate::obs::span::enter_at($name, $t);
    };
}

// ---------------------------------------------------------------------------
// Reports, profiles, Chrome trace export
// ---------------------------------------------------------------------------

/// Aggregated statistics for one span name.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpanStats {
    /// Span name (`"phy.epoch_rebuild"`, ...).
    pub name: String,
    /// Times the span was entered.
    pub count: u64,
    /// Total wall-clock nanoseconds inside the span (children included).
    pub total_ns: u64,
    /// Nanoseconds attributed to the span itself (children excluded).
    pub self_ns: u64,
    /// Shortest single call (total time), 0 when `count == 0`.
    pub min_ns: u64,
    /// Longest single call (total time).
    pub max_ns: u64,
    /// Log2 histogram over per-call *self* time (for quantiles).
    pub self_histo: HistoSnapshot,
}

/// Everything one collector gathered: per-name stats plus (when tracing)
/// the raw begin/end event stream.
#[derive(Debug, Clone, Default)]
pub struct SpanReport {
    /// Per-span-name statistics, sorted by name.
    pub stats: Vec<SpanStats>,
    /// Raw trace events in record order (empty unless
    /// [`SpanConfig::trace`]).
    pub events: Vec<TraceEvent>,
    /// Trace events dropped at the per-thread buffer cap.
    pub dropped_events: u64,
}

impl SpanReport {
    /// Merge `other` into `self`: stats add by name (result stays
    /// name-sorted), events append, drop counts add.
    pub fn absorb(&mut self, other: &SpanReport) {
        for s in &other.stats {
            match self.stats.binary_search_by(|x| x.name.cmp(&s.name)) {
                Ok(i) => {
                    let mut acc = StatAcc::new();
                    acc.absorb(&self.stats[i]);
                    acc.absorb(s);
                    self.stats[i] = acc.to_stats(&s.name);
                }
                Err(i) => self.stats.insert(i, s.clone()),
            }
        }
        self.events.extend(other.events.iter().cloned());
        self.dropped_events += other.dropped_events;
    }

    /// Stats for span `name`, if it was ever entered.
    pub fn get(&self, name: &str) -> Option<&SpanStats> {
        self.stats.iter().find(|s| s.name == name)
    }

    /// Summarize into a [`RunProfile`]: up to `top` spans by self time
    /// (descending), with p50/p90/p99 self-time quantiles.
    pub fn profile(&self, top: usize) -> RunProfile {
        let mut spans: Vec<&SpanStats> = self.stats.iter().collect();
        spans.sort_by(|a, b| b.self_ns.cmp(&a.self_ns).then(a.name.cmp(&b.name)));
        RunProfile {
            spans: spans
                .into_iter()
                .take(top)
                .map(|s| SpanProfile {
                    name: s.name.clone(),
                    count: s.count,
                    total_ns: s.total_ns,
                    self_ns: s.self_ns,
                    min_ns: s.min_ns,
                    max_ns: s.max_ns,
                    p50_ns: s.self_histo.quantile(0.50).unwrap_or(0.0),
                    p90_ns: s.self_histo.quantile(0.90).unwrap_or(0.0),
                    p99_ns: s.self_histo.quantile(0.99).unwrap_or(0.0),
                })
                .collect(),
        }
    }
}

/// One raw begin/end trace event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceEvent {
    /// Span name.
    pub name: &'static str,
    /// True for begin (`ph: "B"`), false for end (`ph: "E"`).
    pub begin: bool,
    /// Nanoseconds since the process trace anchor.
    pub ts_ns: u64,
    /// Trace thread id (stable per OS thread).
    pub tid: u64,
    /// Simulation time at span entry, when stamped via [`enter_at`].
    pub sim_s: Option<f64>,
}

/// The profile section of a run manifest: top spans by self time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunProfile {
    /// Per-span profile rows, self-time descending.
    pub spans: Vec<SpanProfile>,
}

/// One row of a [`RunProfile`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpanProfile {
    /// Span name.
    pub name: String,
    /// Times entered.
    pub count: u64,
    /// Total ns (children included).
    pub total_ns: u64,
    /// Self ns (children excluded).
    pub self_ns: u64,
    /// Shortest call, ns.
    pub min_ns: u64,
    /// Longest call, ns.
    pub max_ns: u64,
    /// Median per-call self time, ns (log2-bucket estimate).
    pub p50_ns: f64,
    /// 90th percentile per-call self time, ns.
    pub p90_ns: f64,
    /// 99th percentile per-call self time, ns.
    pub p99_ns: f64,
}

/// Write `events` as Chrome `trace_event` JSON (the "JSON array format"
/// with `B`/`E` duration events), loadable in Perfetto and
/// `chrome://tracing`.
///
/// Events must be in record order per thread — which is how collectors
/// produce them — so every `B` is closed by the next unmatched `E` on the
/// same `tid` and the viewer nests them correctly.
pub fn write_chrome_trace<W: io::Write>(events: &[TraceEvent], out: &mut W) -> io::Result<()> {
    writeln!(out, "{{\"displayTimeUnit\":\"ms\",\"traceEvents\":[")?;
    for (i, ev) in events.iter().enumerate() {
        let comma = if i + 1 < events.len() { "," } else { "" };
        let ph = if ev.begin { "B" } else { "E" };
        let ts_us = ev.ts_ns as f64 / 1000.0;
        // Span names are static identifiers; {:?} escapes defensively.
        let name = format!("{:?}", ev.name);
        match ev.sim_s {
            Some(sim_s) if ev.begin => writeln!(
                out,
                "{{\"name\":{name},\"ph\":\"{ph}\",\"ts\":{ts_us:.3},\"pid\":1,\
                 \"tid\":{tid},\"args\":{{\"sim_s\":{sim_s}}}}}{comma}",
                tid = ev.tid,
            )?,
            _ => writeln!(
                out,
                "{{\"name\":{name},\"ph\":\"{ph}\",\"ts\":{ts_us:.3},\"pid\":1,\
                 \"tid\":{tid}}}{comma}",
                tid = ev.tid,
            )?,
        }
    }
    writeln!(out, "]}}")?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spin_ns(ns: u64) {
        let start = Instant::now();
        while (start.elapsed().as_nanos() as u64) < ns {
            std::hint::black_box(0);
        }
    }

    #[test]
    fn disabled_spans_are_noops() {
        assert!(!is_enabled());
        let g = enter("outer");
        assert!(!g.armed);
        drop(g);
        // disable() without enable() yields an empty report.
        let rep = disable();
        assert!(rep.stats.is_empty());
        assert!(rep.events.is_empty());
    }

    #[test]
    fn nested_spans_attribute_self_time() {
        let ((), rep) = scoped(SpanConfig::stats(), || {
            let _outer = enter("outer");
            spin_ns(200_000);
            {
                let _inner = enter("inner");
                spin_ns(200_000);
            }
            spin_ns(100_000);
        });
        let outer = rep.get("outer").expect("outer recorded");
        let inner = rep.get("inner").expect("inner recorded");
        assert_eq!(outer.count, 1);
        assert_eq!(inner.count, 1);
        // Outer's total covers inner; outer's self time does not.
        assert!(outer.total_ns >= inner.total_ns);
        assert!(
            outer.self_ns <= outer.total_ns - inner.total_ns,
            "outer self {} vs total {} minus inner {}",
            outer.self_ns,
            outer.total_ns,
            inner.total_ns
        );
        assert!(inner.self_ns >= 150_000, "inner self {}", inner.self_ns);
        assert!(outer.min_ns <= outer.max_ns);
        // Stats are name-sorted.
        assert_eq!(rep.stats[0].name, "inner");
        assert_eq!(rep.stats[1].name, "outer");
    }

    #[test]
    fn trace_events_are_balanced_and_nested() {
        let ((), rep) = scoped(SpanConfig::traced(1), || {
            for _ in 0..3 {
                let _a = enter_at("a", Time(1_500_000_000));
                let _b = enter("b");
            }
        });
        assert_eq!(rep.events.len(), 12); // 3 roots x (B a, B b, E b, E a)
        let mut depth = 0i64;
        let mut stack = Vec::new();
        for ev in &rep.events {
            if ev.begin {
                depth += 1;
                stack.push(ev.name);
            } else {
                depth -= 1;
                assert_eq!(stack.pop(), Some(ev.name), "E matches innermost B");
            }
            assert!(depth >= 0);
        }
        assert_eq!(depth, 0);
        // enter_at stamps sim time on the begin event only.
        assert_eq!(rep.events[0].sim_s, Some(1.5));
        assert_eq!(rep.events[1].sim_s, None);
        // Guards must drop LIFO: b (declared later) closes before a.
        assert_eq!(rep.events[2].name, "b");
        assert!(!rep.events[2].begin);
    }

    #[test]
    fn sampling_traces_every_nth_root_tree() {
        let ((), rep) = scoped(SpanConfig::traced(3), || {
            for _ in 0..7 {
                let _root = enter("root");
                let _child = enter("child");
            }
        });
        // Roots 0, 3, 6 are traced, each contributing 4 events.
        assert_eq!(rep.events.len(), 12);
        // Stats still cover every call.
        assert_eq!(rep.get("root").unwrap().count, 7);
        assert_eq!(rep.get("child").unwrap().count, 7);
        assert_eq!(rep.dropped_events, 0);
    }

    #[test]
    fn stats_only_config_records_no_events() {
        let ((), rep) = scoped(SpanConfig::stats(), || {
            let _g = enter("x");
        });
        assert!(rep.events.is_empty());
        assert_eq!(rep.get("x").unwrap().count, 1);
    }

    #[test]
    fn scoped_restores_outer_collector() {
        enable(SpanConfig::stats());
        {
            let _outer = enter("outer.before");
        }
        let ((), inner_rep) = scoped(SpanConfig::stats(), || {
            let _g = enter("inner.only");
        });
        {
            let _outer = enter("outer.after");
        }
        let outer_rep = disable();
        assert!(inner_rep.get("inner.only").is_some());
        assert!(inner_rep.get("outer.before").is_none());
        assert!(outer_rep.get("outer.before").is_some());
        assert!(outer_rep.get("outer.after").is_some());
        assert!(outer_rep.get("inner.only").is_none());
        assert!(!is_enabled());
    }

    #[test]
    fn absorb_merges_reports_by_name() {
        let ((), rep_a) = scoped(SpanConfig::stats(), || {
            for _ in 0..2 {
                let _g = enter("shared");
            }
            let _g = enter("only_a");
        });
        let ((), rep_b) = scoped(SpanConfig::stats(), || {
            let _g = enter("shared");
        });
        // Collector-level absorb (the sweep path).
        enable(SpanConfig::stats());
        absorb(&rep_a);
        absorb(&rep_b);
        let merged = disable();
        assert_eq!(merged.get("shared").unwrap().count, 3);
        assert_eq!(merged.get("only_a").unwrap().count, 1);
        // Report-level absorb agrees.
        let mut folded = SpanReport::default();
        folded.absorb(&rep_a);
        folded.absorb(&rep_b);
        assert_eq!(folded.get("shared").unwrap().count, 3);
        assert_eq!(folded.get("only_a").unwrap().count, 1);
        let names: Vec<&str> = folded.stats.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, vec!["only_a", "shared"]);
    }

    #[test]
    fn profile_ranks_by_self_time_with_quantiles() {
        let ((), rep) = scoped(SpanConfig::stats(), || {
            for _ in 0..4 {
                let _fast = enter("fast");
            }
            let _slow = enter("slow");
            spin_ns(500_000);
        });
        let profile = rep.profile(8);
        assert_eq!(profile.spans[0].name, "slow");
        let slow = &profile.spans[0];
        assert!(slow.p50_ns > 0.0);
        assert!(slow.p50_ns <= slow.p90_ns);
        assert!(slow.p90_ns <= slow.p99_ns);
        assert!(slow.p99_ns <= slow.max_ns as f64 * 2.0);
        // top=1 truncates.
        assert_eq!(rep.profile(1).spans.len(), 1);
    }

    #[test]
    fn chrome_trace_output_is_valid_json() {
        let ((), rep) = scoped(SpanConfig::traced(1), || {
            let _a = enter_at("outer", Time(2_000_000_000));
            let _b = enter("inner \"quoted\"");
        });
        let mut buf = Vec::new();
        write_chrome_trace(&rep.events, &mut buf).expect("write");
        let text = String::from_utf8(buf).expect("utf8");
        let parsed: serde_json::Value = serde_json::from_str(&text).expect("valid JSON");
        let serde_json::Value::Arr(events) = parsed.get("traceEvents").expect("traceEvents") else {
            panic!("traceEvents is not an array");
        };
        assert_eq!(events.len(), 4);
        let as_str = |v: &serde_json::Value| match v {
            serde_json::Value::Str(s) => s.clone(),
            other => panic!("expected string, got {}", other.kind()),
        };
        let as_num = |v: &serde_json::Value| match v {
            serde_json::Value::Num(n) => n.as_f64(),
            other => panic!("expected number, got {}", other.kind()),
        };
        assert_eq!(as_str(events[0].get("ph").expect("ph")), "B");
        let sim_s = events[0]
            .get("args")
            .and_then(|a| a.get("sim_s"))
            .expect("sim_s");
        assert_eq!(as_num(sim_s), 2.0);
        assert_eq!(
            as_str(events[1].get("name").expect("name")),
            "inner \"quoted\""
        );
        assert_eq!(as_str(events[3].get("ph").expect("ph")), "E");
        // Timestamps are monotonically non-decreasing microseconds.
        let ts: Vec<f64> = events
            .iter()
            .map(|e| as_num(e.get("ts").expect("ts")))
            .collect();
        assert!(ts.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn event_cap_drops_whole_frames_and_counts_them() {
        // A tiny cap is not reachable without const generics tricks, so
        // exercise the cap logic by filling close to it cheaply: emit
        // enough roots that the buffer would exceed the cap, using the
        // real constant only in a ratio check to keep the test fast.
        // Instead, verify the invariant structurally: traced push at cap
        // marks the frame untraced, so B/E never go out of balance.
        let ((), rep) = scoped(SpanConfig::traced(1), || {
            for _ in 0..100 {
                let _g = enter("r");
            }
        });
        let b = rep.events.iter().filter(|e| e.begin).count();
        let e = rep.events.iter().filter(|e| !e.begin).count();
        assert_eq!(b, e);
    }
}
