//! Simulation time.
//!
//! Time is represented as an unsigned number of **nanoseconds** since the
//! start of the simulation. A `u64` covers more than 584 years, far beyond
//! the two-week experiments of the paper, while still resolving a fraction
//! of the 40.96 µs OFDM symbol.
//!
//! The module also provides mains-cycle helpers: HomePlug AV locks its
//! tone-map slots to the AC line cycle, so "where in the mains cycle are
//! we?" is a first-class question for the PHY.

use core::fmt;
use core::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};
use serde::{Deserialize, Serialize};

/// European mains frequency used throughout the reproduction (EPFL testbed).
pub const MAINS_HZ: u64 = 50;

/// Duration of one full mains cycle (20 ms at 50 Hz).
pub const MAINS_CYCLE: Duration = Duration::from_micros(1_000_000 / MAINS_HZ);

/// Duration of half a mains cycle (10 ms at 50 Hz). HomePlug AV tone-map
/// slots partition the *half* cycle because the noise environment repeats
/// with double the mains frequency (IEEE 1901 §5).
pub const MAINS_HALF_CYCLE: Duration = Duration::from_micros(500_000 / MAINS_HZ);

/// HomePlug AV beacon period: two mains cycles (40 ms at 50 Hz, 33.3 ms at
/// 60 Hz — the paper's Figure 1 labels it "33.3/40 ms").
pub const BEACON_PERIOD: Duration = Duration::from_micros(2 * 1_000_000 / MAINS_HZ);

/// An instant in simulation time, in nanoseconds since simulation start.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct Time(pub u64);

/// A span of simulation time, in nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct Duration(pub u64);

impl electrifi_state::PersistValue for Time {
    fn encode(&self, w: &mut electrifi_state::SectionWriter) {
        w.put_u64(self.0);
    }
    fn decode(
        r: &mut electrifi_state::SectionReader<'_>,
    ) -> Result<Self, electrifi_state::StateError> {
        Ok(Time(r.get_u64()?))
    }
}

impl electrifi_state::PersistValue for Duration {
    fn encode(&self, w: &mut electrifi_state::SectionWriter) {
        w.put_u64(self.0);
    }
    fn decode(
        r: &mut electrifi_state::SectionReader<'_>,
    ) -> Result<Self, electrifi_state::StateError> {
        Ok(Duration(r.get_u64()?))
    }
}

impl Time {
    /// The simulation epoch (t = 0).
    pub const ZERO: Time = Time(0);

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        Time(s * 1_000_000_000)
    }

    /// Construct from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        Time(ms * 1_000_000)
    }

    /// Construct from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        Time(us * 1_000)
    }

    /// Construct from hours (useful for the random-scale experiments).
    pub const fn from_hours(h: u64) -> Self {
        Time(h * 3_600_000_000_000)
    }

    /// Nanoseconds since simulation start.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Fractional seconds since simulation start.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Whole seconds since simulation start (truncated).
    pub const fn as_secs(self) -> u64 {
        self.0 / 1_000_000_000
    }

    /// Whole milliseconds since simulation start (truncated).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Phase within the mains cycle, in `[0, 1)`. Phase 0 is the positive
    /// zero crossing at t = 0; the simulation is mains-locked by
    /// construction.
    pub fn mains_phase(self) -> f64 {
        (self.0 % MAINS_CYCLE.0) as f64 / MAINS_CYCLE.0 as f64
    }

    /// Phase within the *half* mains cycle, in `[0, 1)`. Tone-map slots are
    /// laid out over this interval.
    pub fn half_cycle_phase(self) -> f64 {
        (self.0 % MAINS_HALF_CYCLE.0) as f64 / MAINS_HALF_CYCLE.0 as f64
    }

    /// Index of the tone-map slot active at this instant, given `l` slots
    /// of equal duration over the half mains cycle (HomePlug AV uses
    /// `l = 6`).
    pub fn tonemap_slot(self, l: usize) -> usize {
        debug_assert!(l > 0);
        let slot = (self.half_cycle_phase() * l as f64) as usize;
        slot.min(l - 1)
    }

    /// Saturating subtraction between two instants.
    pub fn saturating_since(self, earlier: Time) -> Duration {
        Duration(self.0.saturating_sub(earlier.0))
    }

    /// Hour of the (simulated) day in `[0, 24)`, assuming the simulation
    /// starts at midnight of day 0.
    pub fn hour_of_day(self) -> f64 {
        let day_ns = 24 * 3_600_000_000_000u64;
        (self.0 % day_ns) as f64 / 3_600_000_000_000_f64
    }

    /// Day index since simulation start (day 0 is the first day).
    pub const fn day_index(self) -> u64 {
        self.0 / (24 * 3_600_000_000_000)
    }

    /// True on Saturdays and Sundays, with day 0 being a Monday. The paper's
    /// Figures 13-14 contrast weekday and weekend behaviour.
    pub const fn is_weekend(self) -> bool {
        matches!(self.day_index() % 7, 5 | 6)
    }
}

impl Duration {
    /// Zero-length duration.
    pub const ZERO: Duration = Duration(0);

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        Duration(s * 1_000_000_000)
    }

    /// Construct from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        Duration(ms * 1_000_000)
    }

    /// Construct from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        Duration(us * 1_000)
    }

    /// Construct from nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        Duration(ns)
    }

    /// Construct from fractional seconds; negative values clamp to zero.
    pub fn from_secs_f64(s: f64) -> Self {
        Duration((s.max(0.0) * 1e9).round() as u64)
    }

    /// Construct from fractional microseconds; negative values clamp to zero.
    pub fn from_micros_f64(us: f64) -> Self {
        Duration((us.max(0.0) * 1e3).round() as u64)
    }

    /// Nanoseconds in this duration.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Fractional microseconds.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: Duration) -> Duration {
        Duration(self.0.saturating_sub(other.0))
    }

    /// Checked integer division of two durations (how many `other` fit in
    /// `self`).
    pub fn div_duration(self, other: Duration) -> u64 {
        debug_assert!(other.0 > 0);
        self.0 / other.0
    }
}

impl Add<Duration> for Time {
    type Output = Time;
    fn add(self, rhs: Duration) -> Time {
        Time(self.0 + rhs.0)
    }
}

impl AddAssign<Duration> for Time {
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}

impl Sub<Duration> for Time {
    type Output = Time;
    fn sub(self, rhs: Duration) -> Time {
        Time(self.0 - rhs.0)
    }
}

impl Sub<Time> for Time {
    type Output = Duration;
    fn sub(self, rhs: Time) -> Duration {
        Duration(self.0 - rhs.0)
    }
}

impl Add for Duration {
    type Output = Duration;
    fn add(self, rhs: Duration) -> Duration {
        Duration(self.0 + rhs.0)
    }
}

impl AddAssign for Duration {
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}

impl Sub for Duration {
    type Output = Duration;
    fn sub(self, rhs: Duration) -> Duration {
        Duration(self.0 - rhs.0)
    }
}

impl SubAssign for Duration {
    fn sub_assign(&mut self, rhs: Duration) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for Duration {
    type Output = Duration;
    fn mul(self, rhs: u64) -> Duration {
        Duration(self.0 * rhs)
    }
}

impl Mul<f64> for Duration {
    type Output = Duration;
    fn mul(self, rhs: f64) -> Duration {
        Duration((self.0 as f64 * rhs).round() as u64)
    }
}

impl Div<u64> for Duration {
    type Output = Duration;
    fn div(self, rhs: u64) -> Duration {
        Duration(self.0 / rhs)
    }
}

impl fmt::Debug for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Debug for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 < 1_000 {
            write!(f, "{}ns", self.0)
        } else if self.0 < 1_000_000 {
            write!(f, "{:.3}us", self.as_micros_f64())
        } else if self.0 < 1_000_000_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else {
            write!(f, "{:.3}s", self.as_secs_f64())
        }
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mains_constants_are_consistent() {
        assert_eq!(MAINS_CYCLE.as_nanos(), 20_000_000);
        assert_eq!(MAINS_HALF_CYCLE.as_nanos(), 10_000_000);
        assert_eq!(BEACON_PERIOD.as_nanos(), 40_000_000);
    }

    #[test]
    fn tonemap_slot_partitions_half_cycle() {
        // 6 slots over 10 ms => each slot lasts 1.666... ms.
        let l = 6;
        assert_eq!(Time::ZERO.tonemap_slot(l), 0);
        assert_eq!(Time::from_micros(1_600).tonemap_slot(l), 0);
        assert_eq!(Time::from_micros(1_700).tonemap_slot(l), 1);
        assert_eq!(Time::from_micros(9_999).tonemap_slot(l), 5);
        // Periodicity over the half cycle: slot(t) == slot(t + 10 ms).
        for us in [0u64, 123, 4_000, 9_000] {
            let a = Time::from_micros(us).tonemap_slot(l);
            let b = Time::from_micros(us + 10_000).tonemap_slot(l);
            assert_eq!(a, b, "slot must repeat every half cycle");
        }
    }

    #[test]
    fn mains_phase_wraps() {
        assert_eq!(Time::ZERO.mains_phase(), 0.0);
        let quarter = Time::from_micros(5_000);
        assert!((quarter.mains_phase() - 0.25).abs() < 1e-12);
        let wrapped = Time::from_micros(25_000);
        assert!((wrapped.mains_phase() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn arithmetic_roundtrips() {
        let t = Time::from_millis(100);
        let d = Duration::from_micros(250);
        assert_eq!((t + d) - t, d);
        assert_eq!((t + d) - d, t);
        assert_eq!(d * 4, Duration::from_millis(1));
        assert_eq!(Duration::from_millis(1) / 4, d);
    }

    #[test]
    fn day_and_weekend_accounting() {
        let monday_noon = Time::from_hours(12);
        assert_eq!(monday_noon.day_index(), 0);
        assert!(!monday_noon.is_weekend());
        assert!((monday_noon.hour_of_day() - 12.0).abs() < 1e-9);
        let saturday = Time::from_hours(5 * 24 + 3);
        assert!(saturday.is_weekend());
        let next_monday = Time::from_hours(7 * 24 + 1);
        assert!(!next_monday.is_weekend());
    }

    #[test]
    fn duration_formatting_scales() {
        assert_eq!(format!("{}", Duration::from_nanos(12)), "12ns");
        assert_eq!(format!("{}", Duration::from_micros(41)), "41.000us");
        assert_eq!(format!("{}", Duration::from_millis(20)), "20.000ms");
        assert_eq!(format!("{}", Duration::from_secs(3)), "3.000s");
    }

    #[test]
    fn from_secs_f64_clamps_negative() {
        assert_eq!(Duration::from_secs_f64(-1.0), Duration::ZERO);
        assert_eq!(Duration::from_secs_f64(1.5), Duration::from_millis(1500));
    }
}
