//! Validated worker-count parsing, shared by every surface that accepts
//! one.
//!
//! Three places accept a worker count — the `ELECTRIFI_THREADS`
//! environment variable, `campaign --workers`, and `serve --workers` —
//! and all of them must agree on what a valid count is: a positive
//! integer. `0` and garbage are rejected with a typed
//! [`WorkerCountError`] naming the **source** of the bad value, so the
//! message tells the user which knob to fix ("--workers must be..."
//! vs "ELECTRIFI_THREADS must be..."). Silently serializing on a typo
//! is exactly the misconfiguration this module exists to prevent.

use std::fmt;

/// Environment variable overriding the sweep/campaign worker count.
pub const THREADS_ENV: &str = "ELECTRIFI_THREADS";

/// Environment variable setting the in-worker sim batch size (see
/// `campaign --batch` and `serve --batch`). Parsed exactly like
/// [`THREADS_ENV`]: a positive integer, rejected with a typed error
/// otherwise.
pub const BATCH_ENV: &str = "ELECTRIFI_BATCH";

/// What was wrong with a worker-count value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WorkerCountErrorKind {
    /// The value parsed as `0`, which would silently serialize.
    Zero,
    /// The value is not a base-10 positive integer at all.
    NotANumber,
}

/// A rejected worker-count value: which source supplied it, what it
/// was, and why it was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerCountError {
    /// Where the value came from (`ELECTRIFI_THREADS`, `--workers`, ...).
    pub source: String,
    /// The raw value as supplied (trimmed).
    pub raw: String,
    /// Why it was rejected.
    pub kind: WorkerCountErrorKind,
}

impl fmt::Display for WorkerCountError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            WorkerCountErrorKind::Zero => {
                write!(
                    f,
                    "{} must be a positive worker count, got \"0\"",
                    self.source
                )?;
                if self.source == THREADS_ENV {
                    write!(
                        f,
                        " (unset the variable to use all cores, or set 1 to \
                         force sequential sweeps)"
                    )?;
                } else {
                    write!(f, " (use 1 to force sequential execution)")?;
                }
                Ok(())
            }
            WorkerCountErrorKind::NotANumber => write!(
                f,
                "{} must be a positive integer worker count, got {:?}",
                self.source, self.raw
            ),
        }
    }
}

impl std::error::Error for WorkerCountError {}

/// Parse a worker count supplied by `source` (an env-var or flag name,
/// used verbatim in the error message). Accepts positive integers;
/// rejects `0`, empty strings and garbage.
pub fn parse_worker_count(source: &str, raw: &str) -> Result<usize, WorkerCountError> {
    let trimmed = raw.trim();
    match trimmed.parse::<usize>() {
        Ok(0) => Err(WorkerCountError {
            source: source.to_string(),
            raw: trimmed.to_string(),
            kind: WorkerCountErrorKind::Zero,
        }),
        Ok(n) => Ok(n),
        Err(_) => Err(WorkerCountError {
            source: source.to_string(),
            raw: trimmed.to_string(),
            kind: WorkerCountErrorKind::NotANumber,
        }),
    }
}

/// Read and validate a positive count from the environment variable
/// `var`: `Ok(None)` when unset, `Ok(Some(n))` for a valid value,
/// `Err` for a set-but-invalid one. Shared by [`worker_count_from_env`]
/// and [`batch_from_env`] so every counted knob fails the same way.
pub fn count_from_env(var: &'static str) -> Result<Option<usize>, WorkerCountError> {
    match std::env::var(var) {
        Err(_) => Ok(None),
        Ok(v) => parse_worker_count(var, &v).map(Some),
    }
}

/// The worker count configured via [`THREADS_ENV`]: `Ok(None)` when the
/// variable is unset, `Ok(Some(n))` for a valid value, `Err` for a
/// set-but-invalid one.
pub fn worker_count_from_env() -> Result<Option<usize>, WorkerCountError> {
    count_from_env(THREADS_ENV)
}

/// The sim batch size configured via [`BATCH_ENV`], same contract as
/// [`worker_count_from_env`]. `0` is rejected (batching cannot be
/// disabled below one sim per step); unset means "no batching" and is
/// resolved to 1 by the callers.
pub fn batch_from_env() -> Result<Option<usize>, WorkerCountError> {
    count_from_env(BATCH_ENV)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_positive_integers() {
        assert_eq!(parse_worker_count(THREADS_ENV, "1"), Ok(1));
        assert_eq!(parse_worker_count("--workers", " 8 "), Ok(8));
        assert_eq!(parse_worker_count("--workers", "64"), Ok(64));
    }

    #[test]
    fn zero_is_rejected_and_names_the_source() {
        let env = parse_worker_count(THREADS_ENV, "0").unwrap_err();
        assert_eq!(env.kind, WorkerCountErrorKind::Zero);
        let msg = env.to_string();
        assert!(msg.contains(THREADS_ENV), "{msg}");
        assert!(msg.contains("positive"), "{msg}");
        assert!(msg.contains("unset the variable"), "{msg}");

        let flag = parse_worker_count("--workers", "0").unwrap_err();
        let msg = flag.to_string();
        assert!(msg.starts_with("--workers"), "{msg}");
        assert!(msg.contains("positive"), "{msg}");
        assert!(!msg.contains(THREADS_ENV), "{msg}");
    }

    #[test]
    fn batch_env_shares_the_typed_parser() {
        // ELECTRIFI_BATCH goes through the very same validation as
        // ELECTRIFI_THREADS: zero and garbage produce the typed error
        // naming the batch variable, not an ad-hoc parse.
        let err = parse_worker_count(BATCH_ENV, "0").unwrap_err();
        assert_eq!(err.kind, WorkerCountErrorKind::Zero);
        let msg = err.to_string();
        assert!(msg.starts_with(BATCH_ENV), "{msg}");
        let err = parse_worker_count(BATCH_ENV, "lots").unwrap_err();
        assert_eq!(err.kind, WorkerCountErrorKind::NotANumber);
    }

    #[test]
    fn garbage_is_rejected_with_the_raw_value() {
        for bad in ["", "  ", "four", "-2", "3.5", "8x"] {
            let err = parse_worker_count("--workers", bad).unwrap_err();
            assert_eq!(err.kind, WorkerCountErrorKind::NotANumber, "{bad:?}");
            let msg = err.to_string();
            assert!(msg.contains("positive integer"), "{bad:?}: {msg}");
        }
    }
}
