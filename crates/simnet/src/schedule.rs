//! Appliance schedules: when is each appliance switched on?
//!
//! Random-scale channel variation (paper §6.3) is driven by human activity:
//! appliances switch with the working day, lights go off building-wide at
//! 9 pm ("Every day at 9pm, all lights are turned off in our building,
//! leading to a channel change for PLC", Fig. 12), and weekends are quiet
//! (Figs. 13-14).
//!
//! Schedules are **pure functions of time** (plus a per-appliance seed for
//! randomized schedules), so any component can query `is_on(t)` at any
//! instant without shared mutable state, and long-horizon experiments can
//! sample the channel at arbitrary times.

use crate::time::Time;
use serde::{Deserialize, Serialize};

/// Nanoseconds per hour.
const HOUR_NS: u64 = 3_600_000_000_000;
/// Nanoseconds per day.
const DAY_NS: u64 = 24 * HOUR_NS;
/// Safety margin (ns) around schedule boundaries that are derived from
/// floating-point hour arithmetic (office arrivals, sporadic ramp
/// crossings). [`Schedule::next_transition`] may under-report by up to
/// this margin — callers rescan a few nanoseconds of sim time early —
/// but must never over-report past a real transition.
const BOUNDARY_MARGIN_NS: u64 = 16;

/// Deterministic per-slot hash used for randomized schedules: maps
/// (seed, slot) to a uniform value in [0, 1).
fn slot_hash(seed: u64, slot: u64) -> f64 {
    let mut z = seed ^ slot.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^= z >> 31;
    (z >> 11) as f64 / (1u64 << 53) as f64
}

/// When an appliance is powered.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Schedule {
    /// Always on (IT equipment, fridges' plug connection).
    AlwaysOn,
    /// Building lighting: on 07:00–21:00 on weekdays, off all weekend.
    /// The 21:00 cut is sharp — it produces the visible channel step in
    /// the paper's Fig. 12.
    BuildingLights,
    /// Office-hours usage (PCs, monitors): on roughly 08:00–19:00 weekdays
    /// with per-appliance randomized arrival/departure of ±1 h, off on
    /// weekends except occasional visits.
    OfficeHours {
        /// Per-appliance seed randomizing arrival/departure.
        seed: u64,
    },
    /// Duty-cycled appliance (fridge compressor): `on_s` seconds on,
    /// `off_s` seconds off, phase-shifted by seed.
    DutyCycle {
        /// Seconds per ON period.
        on_s: u64,
        /// Seconds per OFF period.
        off_s: u64,
        /// Per-appliance seed shifting the cycle phase.
        seed: u64,
    },
    /// Sporadic usage bursts (printer, microwave, coffee machine): during
    /// active hours each 10-minute slot is on with probability `p_active`
    /// (scaled by working-hours activity), off otherwise.
    Sporadic {
        /// Probability that a 10-minute slot during working hours is on.
        p_active: f64,
        /// Per-appliance seed.
        seed: u64,
    },
}

impl Schedule {
    /// Is the appliance drawing power at instant `t`?
    pub fn is_on(&self, t: Time) -> bool {
        match *self {
            Schedule::AlwaysOn => true,
            Schedule::BuildingLights => {
                let h = t.hour_of_day();
                !t.is_weekend() && (7.0..21.0).contains(&h)
            }
            Schedule::OfficeHours { seed } => {
                if t.is_weekend() {
                    // Rare weekend visits: ~5% of weekend hours.
                    let slot = t.as_secs() / 3600;
                    return slot_hash(seed ^ 0xDEAD, slot) < 0.05;
                }
                let day = t.day_index();
                let arrive = 8.0 + 2.0 * (slot_hash(seed, day) - 0.5); // 7..9
                let leave = 18.5 + 2.0 * (slot_hash(seed ^ 1, day) - 0.5); // 17.5..19.5
                let h = t.hour_of_day();
                (arrive..leave).contains(&h)
            }
            Schedule::DutyCycle { on_s, off_s, seed } => {
                let period = on_s + off_s;
                debug_assert!(period > 0);
                let phase = (slot_hash(seed, 0) * period as f64) as u64;
                ((t.as_secs() + phase) % period) < on_s
            }
            Schedule::Sporadic { p_active, seed } => {
                let slot = t.as_secs() / 600; // 10-minute slots
                let p = p_active * working_activity(t);
                slot_hash(seed, slot) < p
            }
        }
    }

    /// Earliest instant after `t` at which [`Schedule::is_on`] may change.
    ///
    /// Contract: `Some(u)` guarantees `is_on` is **constant on `[t, u)`**;
    /// `None` guarantees it is constant on `[t, ∞)`. The bound is
    /// conservative — the state may in fact stay put at `u` (a rescan
    /// simply finds the same answer) — but it never skips past a real
    /// flip. Boundaries derived from float hour arithmetic are pulled in
    /// by [`BOUNDARY_MARGIN_NS`]; inside that uncertainty window the
    /// function degrades to `t + 1 ns` (rescan every call for a few
    /// nanoseconds of sim time rather than risk missing the edge).
    ///
    /// This is what lets epoch-keyed caches (the PLC spectrum cache)
    /// skip re-scanning every schedule per evaluation: the earliest
    /// transition across all relevant schedules bounds how long the
    /// packed on/off key stays valid.
    pub fn next_transition(&self, t: Time) -> Option<Time> {
        let now = t.as_nanos();
        let day_start = now - now % DAY_NS;
        let in_day = now - day_start;
        match *self {
            Schedule::AlwaysOn => None,
            Schedule::BuildingLights => {
                // Flips at 07:00 and 21:00 (weekdays); the weekday/weekend
                // state itself can only change at midnight. All three
                // boundaries are exact in nanoseconds.
                let cand = [7 * HOUR_NS, 21 * HOUR_NS, DAY_NS]
                    .into_iter()
                    .filter(|&c| c > in_day)
                    .min()
                    .expect("DAY_NS > in_day always");
                Some(Time(day_start + cand))
            }
            Schedule::OfficeHours { seed } => {
                if t.is_weekend() {
                    // Weekend visits re-draw per whole hour; hour
                    // boundaries (and midnight, a multiple) are exact.
                    return Some(Time::from_secs((t.as_secs() / 3600 + 1) * 3600));
                }
                let day = t.day_index();
                let arrive = 8.0 + 2.0 * (slot_hash(seed, day) - 0.5);
                let leave = 18.5 + 2.0 * (slot_hash(seed ^ 1, day) - 0.5);
                let mut best = DAY_NS;
                for hours in [arrive, leave] {
                    if let Some(c) = float_boundary_after(in_day, hours * HOUR_NS as f64) {
                        best = best.min(c);
                    }
                }
                Some(Time(day_start + best))
            }
            Schedule::DutyCycle { on_s, off_s, seed } => {
                let period = on_s + off_s;
                if period == 0 || on_s == 0 || off_s == 0 {
                    // Degenerate cycles never change state.
                    return None;
                }
                // `is_on` depends on whole seconds only, so the flip
                // lands exactly on a second boundary.
                let phase = (slot_hash(seed, 0) * period as f64) as u64;
                let s = t.as_secs();
                let r = (s + phase) % period;
                let delta = if r < on_s { on_s - r } else { period - r };
                Some(Time::from_secs(s + delta))
            }
            Schedule::Sporadic { p_active, seed } => {
                // The per-slot draw re-rolls every 600 s (slot boundaries
                // divide midnight exactly); within a slot the state can
                // still flip where `p_active · working_activity(t)`
                // crosses the slot's hash, which only moves inside the
                // two weekday activity ramps.
                let slot = t.as_secs() / 600;
                let slot_end = Time::from_secs((slot + 1) * 600).as_nanos();
                if t.is_weekend() {
                    return Some(Time(slot_end));
                }
                // Weekday piecewise-activity edges, all exact in ns
                // (17.5 h = 63e12 ns).
                const EDGES_H: [f64; 7] = [7.0, 9.0, 12.0, 13.0, 17.5, 21.0, 24.0];
                let region_end = EDGES_H
                    .into_iter()
                    .map(|h| (h * HOUR_NS as f64) as u64)
                    .find(|&c| c > in_day)
                    .expect("24 h edge bounds the day");
                let mut best = slot_end.min(day_start + region_end);
                let h = t.hour_of_day();
                let hash = slot_hash(seed, slot);
                let crossing_h = if (7.0..9.0).contains(&h) {
                    // activity = (h − 7)/2, rising: p crosses the hash at
                    // h* = 7 + 2·hash/p_active.
                    Some(7.0 + 2.0 * hash / p_active)
                } else if (17.5..21.0).contains(&h) {
                    // activity = (21 − h)/3.5·0.8, falling.
                    Some(21.0 - 3.5 * hash / (0.8 * p_active))
                } else {
                    None
                };
                if let Some(hx) = crossing_h {
                    if let Some(c) = float_boundary_after(in_day, hx * HOUR_NS as f64) {
                        best = best.min(day_start + c);
                    }
                }
                Some(Time(best))
            }
        }
    }

    /// Fraction of a long window around `t` (one hour) this schedule is
    /// expected to be on — a smooth "load level" for analytic models.
    pub fn duty_at(&self, t: Time) -> f64 {
        match *self {
            Schedule::AlwaysOn => 1.0,
            Schedule::BuildingLights => {
                if self.is_on(t) {
                    1.0
                } else {
                    0.0
                }
            }
            Schedule::OfficeHours { .. } => {
                if t.is_weekend() {
                    0.05
                } else {
                    let h = t.hour_of_day();
                    if (9.0..18.0).contains(&h) {
                        1.0
                    } else if (7.0..9.0).contains(&h) {
                        (h - 7.0) / 2.0
                    } else if (18.0..19.5).contains(&h) {
                        (19.5 - h) / 1.5
                    } else {
                        0.0
                    }
                }
            }
            Schedule::DutyCycle { on_s, off_s, .. } => on_s as f64 / (on_s + off_s) as f64,
            Schedule::Sporadic { p_active, .. } => p_active * working_activity(t),
        }
    }
}

/// Conservative "next boundary" filter for float-derived candidates.
/// `now` and the candidate are both offsets within the current day, ns.
///
/// * candidate safely ahead → report it [`BOUNDARY_MARGIN_NS`] early;
/// * `now` inside the ±margin uncertainty window → report `now + 1`
///   (degrade to rescan-per-call until the window passes);
/// * candidate safely behind (or not finite) → no candidate.
fn float_boundary_after(now: u64, cand_ns: f64) -> Option<u64> {
    if !cand_ns.is_finite() || cand_ns < 0.0 {
        return None;
    }
    let c = cand_ns as u64;
    if now + BOUNDARY_MARGIN_NS < c {
        Some(c - BOUNDARY_MARGIN_NS)
    } else if now < c.saturating_add(BOUNDARY_MARGIN_NS) {
        Some(now + 1)
    } else {
        None
    }
}

/// Building-wide human-activity level in `[0, 1]`: ~1 during weekday
/// working hours, low at night, very low on weekends. Used to scale both
/// sporadic appliance usage and ambient WiFi interference.
pub fn working_activity(t: Time) -> f64 {
    if t.is_weekend() {
        return 0.08;
    }
    let h = t.hour_of_day();
    if (9.0..12.0).contains(&h) || (13.0..17.5).contains(&h) {
        1.0
    } else if (12.0..13.0).contains(&h) {
        0.7 // lunch dip
    } else if (7.0..9.0).contains(&h) {
        (h - 7.0) / 2.0
    } else if (17.5..21.0).contains(&h) {
        (21.0 - h) / 3.5 * 0.8
    } else {
        0.05
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at(day: u64, hour: f64) -> Time {
        Time((day * 24 * 3_600_000_000_000) + (hour * 3_600_000_000_000.0) as u64)
    }

    #[test]
    fn always_on_is_always_on() {
        assert!(Schedule::AlwaysOn.is_on(Time::ZERO));
        assert!(Schedule::AlwaysOn.is_on(at(6, 3.0)));
        assert_eq!(Schedule::AlwaysOn.duty_at(Time::ZERO), 1.0);
    }

    #[test]
    fn lights_cut_at_9pm_weekdays() {
        let lights = Schedule::BuildingLights;
        assert!(lights.is_on(at(0, 12.0)));
        assert!(lights.is_on(at(0, 20.9)));
        assert!(!lights.is_on(at(0, 21.01)));
        assert!(!lights.is_on(at(0, 3.0)));
        // Weekend: off even at noon (day 5 = Saturday).
        assert!(!lights.is_on(at(5, 12.0)));
    }

    #[test]
    fn office_hours_bracket_the_working_day() {
        let s = Schedule::OfficeHours { seed: 99 };
        // Midday weekday is always within any arrival/departure jitter.
        assert!(s.is_on(at(1, 12.0)));
        // 4 am never is.
        assert!(!s.is_on(at(1, 4.0)));
        // Determinism.
        assert_eq!(s.is_on(at(2, 8.2)), s.is_on(at(2, 8.2)));
    }

    #[test]
    fn duty_cycle_fraction_matches() {
        let s = Schedule::DutyCycle {
            on_s: 600,
            off_s: 1800,
            seed: 3,
        };
        let mut on = 0usize;
        let total = 24 * 60;
        for m in 0..total {
            if s.is_on(Time::from_secs(m * 60)) {
                on += 1;
            }
        }
        let frac = on as f64 / total as f64;
        assert!((frac - 0.25).abs() < 0.03, "frac={frac}");
        assert!((s.duty_at(Time::ZERO) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn sporadic_respects_activity() {
        let s = Schedule::Sporadic {
            p_active: 0.5,
            seed: 7,
        };
        let mut day_on = 0;
        let mut night_on = 0;
        for d in 0..5u64 {
            for ten_min in 0..18 {
                // 09:00..12:00 in 10-minute steps
                let t = at(d, 9.0 + ten_min as f64 / 6.0);
                if s.is_on(t) {
                    day_on += 1;
                }
                let tn = at(d, 1.0 + ten_min as f64 / 6.0);
                if s.is_on(tn) {
                    night_on += 1;
                }
            }
        }
        assert!(day_on > night_on, "day={day_on} night={night_on}");
    }

    #[test]
    fn activity_profile_shape() {
        assert!(working_activity(at(0, 10.0)) > 0.9);
        assert!(working_activity(at(0, 12.5)) < working_activity(at(0, 10.0)));
        assert!(working_activity(at(0, 2.0)) < 0.1);
        assert!(working_activity(at(5, 12.0)) < 0.1); // Saturday
    }

    /// Every schedule family worth exercising for transition bounds.
    fn transition_schedules() -> Vec<Schedule> {
        vec![
            Schedule::AlwaysOn,
            Schedule::BuildingLights,
            Schedule::OfficeHours { seed: 11 },
            Schedule::OfficeHours { seed: 0xFEED },
            Schedule::DutyCycle {
                on_s: 120,
                off_s: 300,
                seed: 5,
            },
            Schedule::DutyCycle {
                on_s: 7,
                off_s: 13,
                seed: 9,
            },
            Schedule::Sporadic {
                p_active: 0.4,
                seed: 21,
            },
            Schedule::Sporadic {
                p_active: 0.9,
                seed: 3,
            },
        ]
    }

    /// Cheap deterministic u64 stream for sampling instants.
    fn scramble(x: u64) -> u64 {
        let mut z = x.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z ^ (z >> 31)
    }

    #[test]
    fn next_transition_is_strictly_ahead() {
        for s in transition_schedules() {
            for k in 0..500u64 {
                let t = Time(scramble(k) % (14 * 24 * HOUR_NS));
                if let Some(u) = s.next_transition(t) {
                    assert!(u > t, "{s:?}: next_transition({t:?}) = {u:?} not ahead");
                }
            }
        }
    }

    #[test]
    fn state_is_constant_until_next_transition() {
        // The contract the PHY epoch-key skip relies on: is_on may not
        // change anywhere in [t, next_transition(t)). Sample the window
        // densely, including both ends.
        for s in transition_schedules() {
            for k in 0..400u64 {
                let t = Time(scramble(k ^ 0xABCD) % (14 * 24 * HOUR_NS));
                let state = s.is_on(t);
                let Some(u) = s.next_transition(t) else {
                    // Constant forever: spot-check far ahead.
                    for d in [1u64, HOUR_NS, 30 * DAY_NS] {
                        assert_eq!(s.is_on(Time(t.0 + d)), state, "{s:?} changed");
                    }
                    continue;
                };
                let span = u.0 - t.0;
                for i in 0..32u64 {
                    let off = (scramble(k * 37 + i) % span).max(if i == 0 { 0 } else { 1 });
                    let probe = Time(t.0 + off);
                    assert!(probe < u);
                    assert_eq!(
                        s.is_on(probe),
                        state,
                        "{s:?}: flipped inside [{t:?}, {u:?}) at {probe:?}"
                    );
                }
                // The last representable instant of the window too.
                assert_eq!(s.is_on(Time(u.0 - 1)), state, "{s:?} flipped at window end");
            }
        }
    }

    #[test]
    fn next_transition_makes_progress() {
        // Chained windows must cross a full week in a bounded number of
        // steps — the skip cache would otherwise thrash. The uncertainty
        // fallback (t+1 ns) is allowed, but only near boundaries, so the
        // step count stays small.
        for s in transition_schedules() {
            let mut t = Time(3 * HOUR_NS + 123_456);
            let goal = Time(t.0 + 7 * DAY_NS);
            let mut steps = 0u32;
            while t < goal {
                match s.next_transition(t) {
                    Some(u) => t = u,
                    None => break,
                }
                steps += 1;
                // A 20 s duty cycle legitimately flips ~60k times per week;
                // the failure mode guarded here is 1-ns uncertainty-fallback
                // thrash, which would need billions of steps.
                assert!(steps < 200_000, "{s:?}: transition chain too dense");
            }
        }
    }

    #[test]
    fn degenerate_cycles_never_transition() {
        let t = Time::from_secs(1234);
        assert_eq!(Schedule::AlwaysOn.next_transition(t), None);
        assert_eq!(
            Schedule::DutyCycle {
                on_s: 0,
                off_s: 60,
                seed: 1
            }
            .next_transition(t),
            None
        );
        assert_eq!(
            Schedule::DutyCycle {
                on_s: 60,
                off_s: 0,
                seed: 1
            }
            .next_transition(t),
            None
        );
    }

    #[test]
    fn lights_transition_lands_on_the_9pm_cut() {
        // Weekday noon: the very next flip is the 21:00 lights-out step
        // of Fig. 12, exactly on the boundary.
        let u = Schedule::BuildingLights
            .next_transition(at(0, 12.0))
            .unwrap();
        assert_eq!(u, at(0, 21.0));
        // 22:00: nothing more today; next candidate is midnight.
        let u = Schedule::BuildingLights
            .next_transition(at(0, 22.0))
            .unwrap();
        assert_eq!(u, Time(DAY_NS));
    }

    #[test]
    fn schedules_are_pure_functions() {
        let schedules = [
            Schedule::AlwaysOn,
            Schedule::BuildingLights,
            Schedule::OfficeHours { seed: 1 },
            Schedule::DutyCycle {
                on_s: 100,
                off_s: 50,
                seed: 2,
            },
            Schedule::Sporadic {
                p_active: 0.3,
                seed: 3,
            },
        ];
        for s in schedules {
            for hour in [0.0, 8.5, 13.0, 21.5] {
                let t = at(3, hour);
                assert_eq!(s.is_on(t), s.is_on(t), "{s:?}");
            }
        }
    }
}
