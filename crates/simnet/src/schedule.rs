//! Appliance schedules: when is each appliance switched on?
//!
//! Random-scale channel variation (paper §6.3) is driven by human activity:
//! appliances switch with the working day, lights go off building-wide at
//! 9 pm ("Every day at 9pm, all lights are turned off in our building,
//! leading to a channel change for PLC", Fig. 12), and weekends are quiet
//! (Figs. 13-14).
//!
//! Schedules are **pure functions of time** (plus a per-appliance seed for
//! randomized schedules), so any component can query `is_on(t)` at any
//! instant without shared mutable state, and long-horizon experiments can
//! sample the channel at arbitrary times.

use crate::time::Time;
use serde::{Deserialize, Serialize};

/// Deterministic per-slot hash used for randomized schedules: maps
/// (seed, slot) to a uniform value in [0, 1).
fn slot_hash(seed: u64, slot: u64) -> f64 {
    let mut z = seed ^ slot.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^= z >> 31;
    (z >> 11) as f64 / (1u64 << 53) as f64
}

/// When an appliance is powered.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Schedule {
    /// Always on (IT equipment, fridges' plug connection).
    AlwaysOn,
    /// Building lighting: on 07:00–21:00 on weekdays, off all weekend.
    /// The 21:00 cut is sharp — it produces the visible channel step in
    /// the paper's Fig. 12.
    BuildingLights,
    /// Office-hours usage (PCs, monitors): on roughly 08:00–19:00 weekdays
    /// with per-appliance randomized arrival/departure of ±1 h, off on
    /// weekends except occasional visits.
    OfficeHours {
        /// Per-appliance seed randomizing arrival/departure.
        seed: u64,
    },
    /// Duty-cycled appliance (fridge compressor): `on_s` seconds on,
    /// `off_s` seconds off, phase-shifted by seed.
    DutyCycle {
        /// Seconds per ON period.
        on_s: u64,
        /// Seconds per OFF period.
        off_s: u64,
        /// Per-appliance seed shifting the cycle phase.
        seed: u64,
    },
    /// Sporadic usage bursts (printer, microwave, coffee machine): during
    /// active hours each 10-minute slot is on with probability `p_active`
    /// (scaled by working-hours activity), off otherwise.
    Sporadic {
        /// Probability that a 10-minute slot during working hours is on.
        p_active: f64,
        /// Per-appliance seed.
        seed: u64,
    },
}

impl Schedule {
    /// Is the appliance drawing power at instant `t`?
    pub fn is_on(&self, t: Time) -> bool {
        match *self {
            Schedule::AlwaysOn => true,
            Schedule::BuildingLights => {
                let h = t.hour_of_day();
                !t.is_weekend() && (7.0..21.0).contains(&h)
            }
            Schedule::OfficeHours { seed } => {
                if t.is_weekend() {
                    // Rare weekend visits: ~5% of weekend hours.
                    let slot = t.as_secs() / 3600;
                    return slot_hash(seed ^ 0xDEAD, slot) < 0.05;
                }
                let day = t.day_index();
                let arrive = 8.0 + 2.0 * (slot_hash(seed, day) - 0.5); // 7..9
                let leave = 18.5 + 2.0 * (slot_hash(seed ^ 1, day) - 0.5); // 17.5..19.5
                let h = t.hour_of_day();
                (arrive..leave).contains(&h)
            }
            Schedule::DutyCycle { on_s, off_s, seed } => {
                let period = on_s + off_s;
                debug_assert!(period > 0);
                let phase = (slot_hash(seed, 0) * period as f64) as u64;
                ((t.as_secs() + phase) % period) < on_s
            }
            Schedule::Sporadic { p_active, seed } => {
                let slot = t.as_secs() / 600; // 10-minute slots
                let p = p_active * working_activity(t);
                slot_hash(seed, slot) < p
            }
        }
    }

    /// Fraction of a long window around `t` (one hour) this schedule is
    /// expected to be on — a smooth "load level" for analytic models.
    pub fn duty_at(&self, t: Time) -> f64 {
        match *self {
            Schedule::AlwaysOn => 1.0,
            Schedule::BuildingLights => {
                if self.is_on(t) {
                    1.0
                } else {
                    0.0
                }
            }
            Schedule::OfficeHours { .. } => {
                if t.is_weekend() {
                    0.05
                } else {
                    let h = t.hour_of_day();
                    if (9.0..18.0).contains(&h) {
                        1.0
                    } else if (7.0..9.0).contains(&h) {
                        (h - 7.0) / 2.0
                    } else if (18.0..19.5).contains(&h) {
                        (19.5 - h) / 1.5
                    } else {
                        0.0
                    }
                }
            }
            Schedule::DutyCycle { on_s, off_s, .. } => on_s as f64 / (on_s + off_s) as f64,
            Schedule::Sporadic { p_active, .. } => p_active * working_activity(t),
        }
    }
}

/// Building-wide human-activity level in `[0, 1]`: ~1 during weekday
/// working hours, low at night, very low on weekends. Used to scale both
/// sporadic appliance usage and ambient WiFi interference.
pub fn working_activity(t: Time) -> f64 {
    if t.is_weekend() {
        return 0.08;
    }
    let h = t.hour_of_day();
    if (9.0..12.0).contains(&h) || (13.0..17.5).contains(&h) {
        1.0
    } else if (12.0..13.0).contains(&h) {
        0.7 // lunch dip
    } else if (7.0..9.0).contains(&h) {
        (h - 7.0) / 2.0
    } else if (17.5..21.0).contains(&h) {
        (21.0 - h) / 3.5 * 0.8
    } else {
        0.05
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at(day: u64, hour: f64) -> Time {
        Time((day * 24 * 3_600_000_000_000) + (hour * 3_600_000_000_000.0) as u64)
    }

    #[test]
    fn always_on_is_always_on() {
        assert!(Schedule::AlwaysOn.is_on(Time::ZERO));
        assert!(Schedule::AlwaysOn.is_on(at(6, 3.0)));
        assert_eq!(Schedule::AlwaysOn.duty_at(Time::ZERO), 1.0);
    }

    #[test]
    fn lights_cut_at_9pm_weekdays() {
        let lights = Schedule::BuildingLights;
        assert!(lights.is_on(at(0, 12.0)));
        assert!(lights.is_on(at(0, 20.9)));
        assert!(!lights.is_on(at(0, 21.01)));
        assert!(!lights.is_on(at(0, 3.0)));
        // Weekend: off even at noon (day 5 = Saturday).
        assert!(!lights.is_on(at(5, 12.0)));
    }

    #[test]
    fn office_hours_bracket_the_working_day() {
        let s = Schedule::OfficeHours { seed: 99 };
        // Midday weekday is always within any arrival/departure jitter.
        assert!(s.is_on(at(1, 12.0)));
        // 4 am never is.
        assert!(!s.is_on(at(1, 4.0)));
        // Determinism.
        assert_eq!(s.is_on(at(2, 8.2)), s.is_on(at(2, 8.2)));
    }

    #[test]
    fn duty_cycle_fraction_matches() {
        let s = Schedule::DutyCycle {
            on_s: 600,
            off_s: 1800,
            seed: 3,
        };
        let mut on = 0usize;
        let total = 24 * 60;
        for m in 0..total {
            if s.is_on(Time::from_secs(m * 60)) {
                on += 1;
            }
        }
        let frac = on as f64 / total as f64;
        assert!((frac - 0.25).abs() < 0.03, "frac={frac}");
        assert!((s.duty_at(Time::ZERO) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn sporadic_respects_activity() {
        let s = Schedule::Sporadic {
            p_active: 0.5,
            seed: 7,
        };
        let mut day_on = 0;
        let mut night_on = 0;
        for d in 0..5u64 {
            for ten_min in 0..18 {
                // 09:00..12:00 in 10-minute steps
                let t = at(d, 9.0 + ten_min as f64 / 6.0);
                if s.is_on(t) {
                    day_on += 1;
                }
                let tn = at(d, 1.0 + ten_min as f64 / 6.0);
                if s.is_on(tn) {
                    night_on += 1;
                }
            }
        }
        assert!(day_on > night_on, "day={day_on} night={night_on}");
    }

    #[test]
    fn activity_profile_shape() {
        assert!(working_activity(at(0, 10.0)) > 0.9);
        assert!(working_activity(at(0, 12.5)) < working_activity(at(0, 10.0)));
        assert!(working_activity(at(0, 2.0)) < 0.1);
        assert!(working_activity(at(5, 12.0)) < 0.1); // Saturday
    }

    #[test]
    fn schedules_are_pure_functions() {
        let schedules = [
            Schedule::AlwaysOn,
            Schedule::BuildingLights,
            Schedule::OfficeHours { seed: 1 },
            Schedule::DutyCycle {
                on_s: 100,
                off_s: 50,
                seed: 2,
            },
            Schedule::Sporadic {
                p_active: 0.3,
                seed: 3,
            },
        ];
        for s in schedules {
            for hour in [0.0, 8.5, 13.0, 21.5] {
                let t = at(3, hour);
                assert_eq!(s.is_on(t), s.is_on(t), "{s:?}");
            }
        }
    }
}
