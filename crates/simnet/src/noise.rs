//! Deterministic correlated noise with random access.
//!
//! The channel models need temporally correlated fluctuations that can be
//! sampled at *arbitrary* instants: a two-week experiment samples once a
//! second, a MAC-level run samples every frame. A stateful AR(1) process
//! cannot be sampled out of order, so this module provides **value noise**:
//! hash values on a fixed time lattice, smoothly interpolated. The result
//! is a pure function of `(seed, t)` with correlation length of one lattice
//! step and approximately normal marginals when octaves are summed.

use serde::{Deserialize, Serialize};

/// 64-bit mix (SplitMix64 finalizer).
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Uniform in [-1, 1) from (seed, lattice index).
fn lattice_value(seed: u64, k: i64) -> f64 {
    let h = mix(seed ^ (k as u64).wrapping_mul(0xd6e8_feb8_6659_fd93));
    ((h >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
}

/// Smoothstep interpolation weight.
fn smooth(x: f64) -> f64 {
    x * x * (3.0 - 2.0 * x)
}

/// Smoothly interpolated hash noise on a 1-D lattice.
///
/// `eval(x)` is deterministic, continuous, has zero mean, and decorrelates
/// over roughly one lattice unit. Scale `x` by your desired correlation
/// time before calling, or use [`ValueNoise::eval_t`] with a period.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ValueNoise {
    seed: u64,
}

impl ValueNoise {
    /// Create a noise function with the given seed.
    pub fn new(seed: u64) -> Self {
        ValueNoise { seed }
    }

    /// Evaluate at lattice coordinate `x` (one unit = one correlation
    /// length). Output is in `(-1, 1)`.
    pub fn eval(&self, x: f64) -> f64 {
        let k = x.floor() as i64;
        let frac = x - x.floor();
        let a = lattice_value(self.seed, k);
        let b = lattice_value(self.seed, k + 1);
        a + (b - a) * smooth(frac)
    }

    /// Evaluate at time `t_s` seconds with correlation time `corr_s`
    /// seconds.
    pub fn eval_t(&self, t_s: f64, corr_s: f64) -> f64 {
        debug_assert!(corr_s > 0.0);
        self.eval(t_s / corr_s)
    }

    /// Sum of `octaves` noise layers with halving correlation times and
    /// amplitudes, normalized to unit peak amplitude. Richer spectrum than
    /// a single layer; still deterministic and random-access.
    pub fn fbm(&self, x: f64, octaves: u32) -> f64 {
        let mut sum = 0.0;
        let mut amp = 1.0;
        let mut freq = 1.0;
        let mut norm = 0.0;
        for o in 0..octaves.max(1) {
            let layer = ValueNoise {
                seed: mix(self.seed ^ o as u64),
            };
            sum += amp * layer.eval(x * freq);
            norm += amp;
            amp *= 0.5;
            freq *= 2.0;
        }
        sum / norm
    }
}

/// Deterministic sparse impulsive events: does an impulse overlap instant
/// `t_s`, given an average `rate_hz` and impulse duration `dur_s`?
///
/// Time is cut into windows of `dur_s`; each window independently contains
/// an impulse with probability `rate_hz * dur_s` (clamped), decided by a
/// hash of the window index. This reproduces the bursty, appliance-driven
/// impulsive noise of the PLC literature while staying a pure function.
pub fn impulse_at(seed: u64, t_s: f64, rate_hz: f64, dur_s: f64) -> bool {
    if rate_hz <= 0.0 || dur_s <= 0.0 || t_s < 0.0 {
        return false;
    }
    let window = (t_s / dur_s) as i64;
    let p = (rate_hz * dur_s).clamp(0.0, 1.0);
    let u = (lattice_value(seed ^ 0xABCD_EF01, window) + 1.0) / 2.0;
    u < p
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noise_is_deterministic_and_bounded() {
        let n = ValueNoise::new(7);
        for i in 0..1000 {
            let x = i as f64 * 0.137;
            let v = n.eval(x);
            assert_eq!(v, n.eval(x));
            assert!((-1.0..=1.0).contains(&v));
        }
    }

    #[test]
    fn noise_is_continuous() {
        let n = ValueNoise::new(3);
        for i in 0..2000 {
            let x = i as f64 * 0.01;
            let dv = (n.eval(x + 1e-6) - n.eval(x)).abs();
            assert!(dv < 1e-4, "jump at x={x}");
        }
    }

    #[test]
    fn noise_decorrelates_over_lattice() {
        let n = ValueNoise::new(11);
        // Correlation at lag 0.1 should be much higher than at lag 10.
        let xs: Vec<f64> = (0..2000).map(|i| i as f64 * 0.5).collect();
        let corr = |lag: f64| {
            let pairs: Vec<(f64, f64)> = xs.iter().map(|&x| (n.eval(x), n.eval(x + lag))).collect();
            simnet_pearson(&pairs)
        };
        assert!(corr(0.05) > 0.9);
        assert!(corr(17.3).abs() < 0.15);
    }

    fn simnet_pearson(points: &[(f64, f64)]) -> f64 {
        crate::stats::pearson(points).unwrap()
    }

    #[test]
    fn noise_has_near_zero_mean() {
        let n = ValueNoise::new(5);
        let mean: f64 = (0..10_000).map(|i| n.eval(i as f64 * 0.77)).sum::<f64>() / 10_000.0;
        assert!(mean.abs() < 0.05, "mean={mean}");
    }

    #[test]
    fn different_seeds_differ() {
        let a = ValueNoise::new(1);
        let b = ValueNoise::new(2);
        let same = (0..100)
            .filter(|&i| a.eval(i as f64) == b.eval(i as f64))
            .count();
        assert!(same < 5);
    }

    #[test]
    fn fbm_stays_bounded_and_deterministic() {
        let n = ValueNoise::new(9);
        for i in 0..500 {
            let x = i as f64 * 0.31;
            let v = n.fbm(x, 3);
            assert!((-1.0..=1.0).contains(&v));
            assert_eq!(v, n.fbm(x, 3));
        }
    }

    #[test]
    fn impulse_rate_is_approximately_respected() {
        let hits = (0..100_000)
            .filter(|&i| impulse_at(42, i as f64 * 0.01, 0.5, 0.01))
            .count();
        // 1000 s of simulated time at 0.5 impulses/s of 10 ms each:
        // expected fraction of 10 ms samples inside an impulse = 0.5 * 0.01.
        let frac = hits as f64 / 100_000.0;
        assert!((frac - 0.005).abs() < 0.002, "frac={frac}");
    }

    #[test]
    fn impulse_handles_degenerate_inputs() {
        assert!(!impulse_at(1, 10.0, 0.0, 0.01));
        assert!(!impulse_at(1, 10.0, 1.0, 0.0));
        assert!(!impulse_at(1, -5.0, 1.0, 0.01));
    }
}
