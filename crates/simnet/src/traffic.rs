//! Traffic generators mirroring the paper's workloads.
//!
//! The measurement study uses a handful of traffic shapes, all reproduced
//! here:
//!
//! * **saturated UDP** (`iperf`-style, link always has a frame to send) —
//!   throughput experiments (§4, §5, Fig. 3/6/7),
//! * **CBR probes** at a fixed packet rate and size — the capacity
//!   estimation study (§7, Fig. 16-18) and the 150 kb/s "probe traffic"
//!   of §8,
//! * **probe bursts** — the §8.2 fix (bursts of 20 packets at the same
//!   average rate),
//! * **file transfer** — the 600 MB download completion-time comparison
//!   (Fig. 20),
//! * **Poisson arrivals** — background traffic with natural jitter.

use crate::time::{Duration, Time};
use electrifi_state::{Persist, PersistValue, SectionReader, SectionWriter, StateError};
use serde::{Deserialize, Serialize};

/// A packet handed to a MAC layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Packet {
    /// Flow-scoped sequence number (also plays the role of the IP
    /// identification field used by the reordering algorithm of §7.4).
    pub seq: u64,
    /// Payload size in bytes (Ethernet payload, as in the paper's 1500 B /
    /// 1300 B / 520 B probes).
    pub bytes: u32,
    /// Creation timestamp.
    pub created: Time,
}

/// Shape of a traffic source.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum TrafficPattern {
    /// Always backlogged: the source offers a packet whenever the MAC can
    /// take one. `pkt_bytes` is the packet size.
    Saturated {
        /// Packet size in bytes.
        pkt_bytes: u32,
    },
    /// Constant bit rate: packets of `pkt_bytes` spaced to achieve
    /// `rate_bps` bits per second.
    Cbr {
        /// Target rate in bits per second.
        rate_bps: f64,
        /// Packet size in bytes.
        pkt_bytes: u32,
    },
    /// Bursts of `burst_len` back-to-back packets, with bursts spaced so
    /// the long-run average rate is `rate_bps`.
    Bursts {
        /// Long-run average rate in bits per second.
        rate_bps: f64,
        /// Packet size in bytes.
        pkt_bytes: u32,
        /// Packets per burst.
        burst_len: u32,
    },
    /// Transfer `total_bytes` as fast as the link allows, then stop.
    FileTransfer {
        /// Total bytes to move.
        total_bytes: u64,
        /// Packet size in bytes.
        pkt_bytes: u32,
    },
}

/// A stateful traffic source.
///
/// `next_arrival(now)` returns the time the next packet becomes available
/// (for saturated sources that is `now`), and `take(now)` consumes it.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrafficSource {
    pattern: TrafficPattern,
    next_seq: u64,
    next_at: Time,
    sent_bytes: u64,
    in_burst: u32,
}

impl TrafficSource {
    /// Create a source that starts emitting at `start`.
    pub fn new(pattern: TrafficPattern, start: Time) -> Self {
        TrafficSource {
            pattern,
            next_seq: 0,
            next_at: start,
            sent_bytes: 0,
            in_burst: 0,
        }
    }

    /// The pattern this source follows.
    pub fn pattern(&self) -> TrafficPattern {
        self.pattern
    }

    /// Packets emitted so far.
    pub fn packets_sent(&self) -> u64 {
        self.next_seq
    }

    /// Bytes emitted so far.
    pub fn bytes_sent(&self) -> u64 {
        self.sent_bytes
    }

    /// When the next packet is available, or `None` if the source is done
    /// (file fully sent).
    pub fn next_arrival(&self, now: Time) -> Option<Time> {
        match self.pattern {
            TrafficPattern::Saturated { .. } => Some(now.max(self.next_at)),
            TrafficPattern::FileTransfer { total_bytes, .. } => {
                if self.sent_bytes >= total_bytes {
                    None
                } else {
                    Some(now.max(self.next_at))
                }
            }
            _ => Some(self.next_at),
        }
    }

    /// Packet size this source emits (every pattern uses a fixed size).
    /// Lets a MAC peek the next packet's footprint for backpressure
    /// without consuming it.
    pub fn pkt_bytes(&self) -> u32 {
        match self.pattern {
            TrafficPattern::Saturated { pkt_bytes }
            | TrafficPattern::Cbr { pkt_bytes, .. }
            | TrafficPattern::Bursts { pkt_bytes, .. }
            | TrafficPattern::FileTransfer { pkt_bytes, .. } => pkt_bytes,
        }
    }

    /// Whether `next_arrival` is independent of the `now` it is asked at
    /// (until the next [`take`](Self::take)). True for paced sources (CBR,
    /// bursts: the release clock `next_at` alone decides) and for finished
    /// file transfers (`None` forever); false for saturated and unfinished
    /// file-transfer sources, whose arrival is `now` itself. A MAC may
    /// cache the minimum arrival across static sources and skip re-scanning
    /// flows on every idle step — the cache only needs invalidating when a
    /// packet is actually taken.
    pub fn arrival_is_static(&self) -> bool {
        match self.pattern {
            TrafficPattern::Saturated { .. } => false,
            TrafficPattern::FileTransfer { total_bytes, .. } => self.sent_bytes >= total_bytes,
            TrafficPattern::Cbr { .. } | TrafficPattern::Bursts { .. } => true,
        }
    }

    /// Is a packet available right now?
    pub fn ready(&self, now: Time) -> bool {
        self.next_arrival(now).is_some_and(|t| t <= now)
    }

    /// Consume the next packet. Returns `None` when no packet is available
    /// at `now` (not yet due, or the file is finished).
    pub fn take(&mut self, now: Time) -> Option<Packet> {
        if !self.ready(now) {
            return None;
        }
        let pkt_bytes = match self.pattern {
            TrafficPattern::Saturated { pkt_bytes }
            | TrafficPattern::Cbr { pkt_bytes, .. }
            | TrafficPattern::Bursts { pkt_bytes, .. }
            | TrafficPattern::FileTransfer { pkt_bytes, .. } => pkt_bytes,
        };
        let pkt = Packet {
            seq: self.next_seq,
            bytes: pkt_bytes,
            created: now,
        };
        self.next_seq += 1;
        self.sent_bytes += pkt_bytes as u64;
        // Advance the release clock.
        match self.pattern {
            TrafficPattern::Saturated { .. } | TrafficPattern::FileTransfer { .. } => {
                self.next_at = now;
            }
            TrafficPattern::Cbr {
                rate_bps,
                pkt_bytes,
            } => {
                // Pure pacing: the release clock advances by one gap per
                // packet without snapping to `now`, so a source that was
                // starved by a busy medium catches up afterwards (iperf
                // UDP semantics).
                let gap = Duration::from_secs_f64(pkt_bytes as f64 * 8.0 / rate_bps);
                self.next_at += gap;
            }
            TrafficPattern::Bursts {
                rate_bps,
                pkt_bytes,
                burst_len,
            } => {
                self.in_burst += 1;
                if self.in_burst >= burst_len {
                    self.in_burst = 0;
                    // Next burst starts after the inter-burst gap that keeps
                    // the average rate: burst_len packets per gap.
                    let gap = Duration::from_secs_f64(
                        burst_len as f64 * pkt_bytes as f64 * 8.0 / rate_bps,
                    );
                    self.next_at = self.next_at.max(now) + gap;
                } else {
                    self.next_at = now; // back-to-back within the burst
                }
            }
        }
        Some(pkt)
    }

    /// For file transfers: has everything been sent?
    pub fn finished(&self) -> bool {
        match self.pattern {
            TrafficPattern::FileTransfer { total_bytes, .. } => self.sent_bytes >= total_bytes,
            _ => false,
        }
    }
}

impl PersistValue for TrafficPattern {
    fn encode(&self, w: &mut SectionWriter) {
        match *self {
            TrafficPattern::Saturated { pkt_bytes } => {
                w.put_u8(0);
                w.put_u32(pkt_bytes);
            }
            TrafficPattern::Cbr {
                rate_bps,
                pkt_bytes,
            } => {
                w.put_u8(1);
                w.put_f64(rate_bps);
                w.put_u32(pkt_bytes);
            }
            TrafficPattern::Bursts {
                rate_bps,
                pkt_bytes,
                burst_len,
            } => {
                w.put_u8(2);
                w.put_f64(rate_bps);
                w.put_u32(pkt_bytes);
                w.put_u32(burst_len);
            }
            TrafficPattern::FileTransfer {
                total_bytes,
                pkt_bytes,
            } => {
                w.put_u8(3);
                w.put_u64(total_bytes);
                w.put_u32(pkt_bytes);
            }
        }
    }

    fn decode(r: &mut SectionReader<'_>) -> Result<Self, StateError> {
        match r.get_u8()? {
            0 => Ok(TrafficPattern::Saturated {
                pkt_bytes: r.get_u32()?,
            }),
            1 => Ok(TrafficPattern::Cbr {
                rate_bps: r.get_f64()?,
                pkt_bytes: r.get_u32()?,
            }),
            2 => Ok(TrafficPattern::Bursts {
                rate_bps: r.get_f64()?,
                pkt_bytes: r.get_u32()?,
                burst_len: r.get_u32()?,
            }),
            3 => Ok(TrafficPattern::FileTransfer {
                total_bytes: r.get_u64()?,
                pkt_bytes: r.get_u32()?,
            }),
            tag => Err(r.malformed(format!("traffic pattern tag {tag}"))),
        }
    }
}

impl PersistValue for TrafficSource {
    fn encode(&self, w: &mut SectionWriter) {
        self.pattern.encode(w);
        w.put_u64(self.next_seq);
        w.put(&self.next_at);
        w.put_u64(self.sent_bytes);
        w.put_u32(self.in_burst);
    }

    fn decode(r: &mut SectionReader<'_>) -> Result<Self, StateError> {
        Ok(TrafficSource {
            pattern: TrafficPattern::decode(r)?,
            next_seq: r.get_u64()?,
            next_at: r.get()?,
            sent_bytes: r.get_u64()?,
            in_burst: r.get_u32()?,
        })
    }
}

impl Persist for TrafficSource {
    fn save_state(&self, w: &mut SectionWriter) {
        self.encode(w);
    }
    fn load_state(&mut self, r: &mut SectionReader<'_>) -> Result<(), StateError> {
        *self = TrafficSource::decode(r)?;
        Ok(())
    }
}

/// Convenience constructors matching the paper's named workloads.
impl TrafficSource {
    /// Saturated UDP with 1500-byte packets starting at t = 0 (the default
    /// `iperf` workload of the paper).
    pub fn iperf_saturated() -> Self {
        TrafficSource::new(TrafficPattern::Saturated { pkt_bytes: 1500 }, Time::ZERO)
    }

    /// The §8 low-rate probe traffic: 1500 B packets at 150 kb/s (one
    /// packet every ~80 ms; the paper rounds to "approximately every
    /// 75 ms").
    pub fn probe_150kbps() -> Self {
        TrafficSource::new(
            TrafficPattern::Cbr {
                rate_bps: 150_000.0,
                pkt_bytes: 1500,
            },
            Time::ZERO,
        )
    }

    /// The §8.2 burst fix: bursts of 20 × 1500 B packets, 150 kb/s average.
    pub fn probe_bursts_150kbps() -> Self {
        TrafficSource::new(
            TrafficPattern::Bursts {
                rate_bps: 150_000.0,
                pkt_bytes: 1500,
                burst_len: 20,
            },
            Time::ZERO,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn saturated_is_always_ready() {
        let mut s = TrafficSource::iperf_saturated();
        for i in 0..10 {
            let t = Time::from_millis(i);
            assert!(s.ready(t));
            let p = s.take(t).unwrap();
            assert_eq!(p.seq, i);
            assert_eq!(p.bytes, 1500);
        }
        assert_eq!(s.packets_sent(), 10);
        assert_eq!(s.bytes_sent(), 15_000);
    }

    #[test]
    fn cbr_spacing_matches_rate() {
        // 150 kb/s with 1500 B packets => one packet per 80 ms.
        let mut s = TrafficSource::probe_150kbps();
        let p0 = s.take(Time::ZERO).unwrap();
        assert_eq!(p0.seq, 0);
        assert!(!s.ready(Time::from_millis(79)));
        assert!(s.take(Time::from_millis(79)).is_none());
        assert!(s.ready(Time::from_millis(80)));
        s.take(Time::from_millis(80)).unwrap();
        assert_eq!(
            s.next_arrival(Time::from_millis(80)),
            Some(Time::from_millis(160))
        );
    }

    #[test]
    fn cbr_long_run_rate() {
        let mut s = TrafficSource::new(
            TrafficPattern::Cbr {
                rate_bps: 1_000_000.0,
                pkt_bytes: 1250,
            },
            Time::ZERO,
        );
        // 1 Mb/s at 10 kb per packet => 100 packets/s.
        let mut t = Time::ZERO;
        let horizon = Time::from_secs(10);
        let mut count = 0u64;
        while let Some(at) = s.next_arrival(t) {
            if at > horizon {
                break;
            }
            t = at;
            s.take(t).unwrap();
            count += 1;
        }
        assert!((count as i64 - 1000).abs() <= 1, "count={count}");
    }

    #[test]
    fn bursts_are_back_to_back_then_gap() {
        let mut s = TrafficSource::probe_bursts_150kbps();
        let t0 = Time::ZERO;
        // 20 packets immediately available.
        for _ in 0..20 {
            assert!(s.ready(t0));
            s.take(t0).unwrap();
        }
        // Then a gap of 20 * 1500 * 8 / 150000 = 1.6 s.
        assert!(!s.ready(t0));
        assert_eq!(s.next_arrival(t0), Some(Time::from_millis(1600)));
        assert!(s.ready(Time::from_millis(1600)));
    }

    #[test]
    fn burst_average_rate_matches_cbr() {
        let mut s = TrafficSource::probe_bursts_150kbps();
        let mut t = Time::ZERO;
        let horizon = Time::from_secs(16);
        let mut bytes = 0u64;
        while let Some(at) = s.next_arrival(t) {
            if at >= horizon {
                break;
            }
            t = at;
            bytes += s.take(t).unwrap().bytes as u64;
        }
        let rate = bytes as f64 * 8.0 / 16.0;
        assert!((rate - 150_000.0).abs() / 150_000.0 < 0.05, "rate={rate}");
    }

    #[test]
    fn file_transfer_finishes() {
        let mut s = TrafficSource::new(
            TrafficPattern::FileTransfer {
                total_bytes: 4_500,
                pkt_bytes: 1500,
            },
            Time::ZERO,
        );
        let t = Time::ZERO;
        assert!(s.take(t).is_some());
        assert!(s.take(t).is_some());
        assert!(!s.finished());
        assert!(s.take(t).is_some());
        assert!(s.finished());
        assert!(s.take(t).is_none());
        assert!(s.next_arrival(t).is_none());
    }

    #[test]
    fn arrival_staticness_matches_patterns() {
        assert!(!TrafficSource::iperf_saturated().arrival_is_static());
        assert!(TrafficSource::probe_150kbps().arrival_is_static());
        assert!(TrafficSource::probe_bursts_150kbps().arrival_is_static());
        // A file transfer becomes static (None forever) once done.
        let mut ft = TrafficSource::new(
            TrafficPattern::FileTransfer {
                total_bytes: 1500,
                pkt_bytes: 1500,
            },
            Time::ZERO,
        );
        assert!(!ft.arrival_is_static());
        ft.take(Time::ZERO).unwrap();
        assert!(ft.arrival_is_static());
        // Static sources really do report the same arrival for any `now`
        // before the release time.
        let mut cbr = TrafficSource::probe_150kbps();
        cbr.take(Time::ZERO).unwrap();
        let a = cbr.next_arrival(Time::from_millis(1));
        let b = cbr.next_arrival(Time::from_millis(79));
        assert_eq!(a, b);
    }

    #[test]
    fn pkt_bytes_peeks_without_consuming() {
        let s = TrafficSource::iperf_saturated();
        assert_eq!(s.pkt_bytes(), 1500);
        assert_eq!(s.packets_sent(), 0);
    }

    #[test]
    fn sequence_numbers_are_contiguous() {
        let mut s = TrafficSource::iperf_saturated();
        for expect in 0..100 {
            assert_eq!(s.take(Time::ZERO).unwrap().seq, expect);
        }
    }
}
