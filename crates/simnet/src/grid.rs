//! The electrical network: the medium PLC runs over.
//!
//! A [`Grid`] is a graph of distribution boards, junction boxes and wall
//! outlets connected by mains cable segments. Appliances attach to outlets.
//! The PLC channel model in `plc-phy` derives everything it needs from this
//! graph:
//!
//! * **cable distance** between two modems (shortest path over the wiring)
//!   — throughput degrades with distance (paper Fig. 7);
//! * **discontinuities** along that path — branch junctions and appliance
//!   outlets create impedance mismatches, hence reflections, hence
//!   multipath fading (paper Fig. 5);
//! * the **appliances** near each endpoint — an appliance with a strong
//!   mismatch near *one* endpoint attenuates the two link directions
//!   differently, producing the severe asymmetry of §5.

use crate::appliance::{ApplianceKind, ApplianceProfile};
use crate::schedule::Schedule;
use crate::time::Time;
use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Identifier of a node (board, junction or outlet) in the grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(pub usize);

/// Identifier of an attached appliance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ApplianceId(pub usize);

/// What a grid node is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum NodeKind {
    /// A distribution board (fuse box). The testbed has two, B1 and B2,
    /// joined by a long basement cable.
    Board,
    /// A junction box where cables branch.
    Junction,
    /// A wall outlet where modems and appliances plug in.
    Outlet,
}

/// A node in the electrical graph.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Node {
    /// What the node is.
    pub kind: NodeKind,
    /// Human-readable label (used in diagnostics).
    pub name: String,
}

/// An appliance attached to an outlet.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AttachedAppliance {
    /// The outlet the appliance is plugged into.
    pub outlet: NodeId,
    /// What kind of appliance it is.
    pub kind: ApplianceKind,
    /// When it is on.
    pub schedule: Schedule,
}

impl AttachedAppliance {
    /// The appliance's electrical profile.
    pub fn profile(&self) -> ApplianceProfile {
        self.kind.profile()
    }

    /// Impedance presented to the line at instant `t`.
    pub fn impedance_at(&self, t: Time) -> f64 {
        let p = self.profile();
        if self.schedule.is_on(t) {
            p.impedance_on_ohms
        } else {
            p.impedance_off_ohms
        }
    }
}

/// A shortest path between two nodes, with its total cable length.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PathInfo {
    /// Nodes along the path, endpoints included.
    pub nodes: Vec<NodeId>,
    /// Total cable length in metres.
    pub length_m: f64,
    /// Cumulative distance from the first node to each node of `nodes`.
    pub cum_dist_m: Vec<f64>,
}

/// An impedance discontinuity along a transmission path: a point where the
/// signal is partially reflected.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Discontinuity {
    /// The node where the discontinuity sits.
    pub node: NodeId,
    /// Distance of the node from the path's first endpoint, in metres.
    pub dist_from_a_m: f64,
    /// Number of cable branches leaving the path at this node (0 for a
    /// plain outlet on the path).
    pub off_path_branches: usize,
    /// Appliances electrically visible at this discontinuity: attached at
    /// the node itself or hanging off its side branches. Each entry is the
    /// appliance id plus its extra cable distance behind the node.
    pub appliances: Vec<(ApplianceId, f64)>,
}

/// A structural error raised while building a [`Grid`].
///
/// The fallible construction API ([`Grid::try_connect`],
/// [`Grid::try_attach`], [`Grid::try_node`]) returns these instead of
/// panicking, so callers assembling grids from untrusted input (e.g. the
/// `scenario` crate's loader) can surface actionable diagnostics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum GridError {
    /// A node id referenced a node that does not exist.
    UnknownNode {
        /// The offending id.
        id: NodeId,
        /// Number of nodes the grid actually has.
        node_count: usize,
    },
    /// A cable was declared from a node to itself.
    SelfLoop {
        /// The node at both ends.
        node: NodeId,
    },
    /// A cable segment with a non-positive length.
    NonPositiveLength {
        /// One endpoint.
        a: NodeId,
        /// Other endpoint.
        b: NodeId,
        /// The rejected length.
        length_m: f64,
    },
    /// An appliance was attached to a node that is not an outlet.
    NotAnOutlet {
        /// The offending node.
        node: NodeId,
        /// What the node actually is.
        kind: NodeKind,
    },
}

impl std::fmt::Display for GridError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GridError::UnknownNode { id, node_count } => {
                write!(f, "unknown node id {} (grid has {node_count} nodes)", id.0)
            }
            GridError::SelfLoop { node } => {
                write!(f, "self-loop cable at node {}", node.0)
            }
            GridError::NonPositiveLength { a, b, length_m } => write!(
                f,
                "cable length must be positive: {length_m} m between nodes {} and {}",
                a.0, b.0
            ),
            GridError::NotAnOutlet { node, kind } => write!(
                f,
                "appliances attach to outlets, but node {} is a {kind:?}",
                node.0
            ),
        }
    }
}

impl std::error::Error for GridError {}

/// The electrical network graph.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Grid {
    nodes: Vec<Node>,
    /// adjacency: for each node, (neighbor, cable length m).
    adj: Vec<Vec<(NodeId, f64)>>,
    appliances: Vec<AttachedAppliance>,
}

impl Grid {
    /// Create an empty grid.
    pub fn new() -> Self {
        Grid::default()
    }

    /// Add a node of the given kind.
    pub fn add_node(&mut self, kind: NodeKind, name: impl Into<String>) -> NodeId {
        let id = NodeId(self.nodes.len());
        self.nodes.push(Node {
            kind,
            name: name.into(),
        });
        self.adj.push(Vec::new());
        id
    }

    /// Add a distribution board.
    pub fn add_board(&mut self, name: impl Into<String>) -> NodeId {
        self.add_node(NodeKind::Board, name)
    }

    /// Add a junction box.
    pub fn add_junction(&mut self, name: impl Into<String>) -> NodeId {
        self.add_node(NodeKind::Junction, name)
    }

    /// Add a wall outlet.
    pub fn add_outlet(&mut self, name: impl Into<String>) -> NodeId {
        self.add_node(NodeKind::Outlet, name)
    }

    /// Connect two nodes with a cable segment of the given length,
    /// reporting structural problems instead of panicking.
    pub fn try_connect(&mut self, a: NodeId, b: NodeId, length_m: f64) -> Result<(), GridError> {
        let n = self.nodes.len();
        for id in [a, b] {
            if id.0 >= n {
                return Err(GridError::UnknownNode { id, node_count: n });
            }
        }
        if a == b {
            return Err(GridError::SelfLoop { node: a });
        }
        // NaN must land here too, hence the explicit is_nan arm.
        if length_m.is_nan() || length_m <= 0.0 {
            return Err(GridError::NonPositiveLength { a, b, length_m });
        }
        self.adj[a.0].push((b, length_m));
        self.adj[b.0].push((a, length_m));
        Ok(())
    }

    /// Connect two nodes with a cable segment of the given length.
    ///
    /// # Panics
    /// Panics if either node id is out of range, the nodes are equal, or
    /// the length is not strictly positive. Use [`Grid::try_connect`] to
    /// get a typed [`GridError`] instead.
    pub fn connect(&mut self, a: NodeId, b: NodeId, length_m: f64) {
        self.try_connect(a, b, length_m)
            .unwrap_or_else(|e| panic!("{e}"));
    }

    /// Plug an appliance into an outlet, reporting structural problems
    /// instead of panicking.
    pub fn try_attach(
        &mut self,
        outlet: NodeId,
        kind: ApplianceKind,
        schedule: Schedule,
    ) -> Result<ApplianceId, GridError> {
        let node = self.try_node(outlet)?;
        if node.kind != NodeKind::Outlet {
            return Err(GridError::NotAnOutlet {
                node: outlet,
                kind: node.kind,
            });
        }
        let id = ApplianceId(self.appliances.len());
        self.appliances.push(AttachedAppliance {
            outlet,
            kind,
            schedule,
        });
        Ok(id)
    }

    /// Plug an appliance into an outlet.
    ///
    /// # Panics
    /// Panics if the node does not exist or is not an outlet. Use
    /// [`Grid::try_attach`] to get a typed [`GridError`] instead.
    pub fn attach(
        &mut self,
        outlet: NodeId,
        kind: ApplianceKind,
        schedule: Schedule,
    ) -> ApplianceId {
        self.try_attach(outlet, kind, schedule)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Look up a node, reporting an out-of-range id as a [`GridError`].
    pub fn try_node(&self, id: NodeId) -> Result<&Node, GridError> {
        self.nodes.get(id.0).ok_or(GridError::UnknownNode {
            id,
            node_count: self.nodes.len(),
        })
    }

    /// Look up a node.
    ///
    /// # Panics
    /// Panics if the id is out of range. Use [`Grid::try_node`] to get a
    /// typed [`GridError`] instead.
    pub fn node(&self, id: NodeId) -> &Node {
        self.try_node(id).unwrap_or_else(|e| panic!("{e}"))
    }

    /// All attached appliances.
    pub fn appliances(&self) -> &[AttachedAppliance] {
        &self.appliances
    }

    /// Look up an appliance.
    pub fn appliance(&self, id: ApplianceId) -> &AttachedAppliance {
        &self.appliances[id.0]
    }

    /// Neighbors of a node with cable lengths.
    pub fn neighbors(&self, id: NodeId) -> &[(NodeId, f64)] {
        &self.adj[id.0]
    }

    /// Degree (number of cable segments) of a node.
    pub fn degree(&self, id: NodeId) -> usize {
        self.adj[id.0].len()
    }

    /// Shortest cable path between two nodes (Dijkstra). `None` when the
    /// nodes are not electrically connected.
    pub fn shortest_path(&self, a: NodeId, b: NodeId) -> Option<PathInfo> {
        if a == b {
            return Some(PathInfo {
                nodes: vec![a],
                length_m: 0.0,
                cum_dist_m: vec![0.0],
            });
        }
        let n = self.nodes.len();
        let mut dist = vec![f64::INFINITY; n];
        let mut prev: Vec<Option<NodeId>> = vec![None; n];
        let mut heap: BinaryHeap<Reverse<(u64, usize)>> = BinaryHeap::new();
        dist[a.0] = 0.0;
        heap.push(Reverse((0, a.0)));
        while let Some(Reverse((dbits, u))) = heap.pop() {
            let d = f64::from_bits(dbits);
            if d > dist[u] {
                continue;
            }
            if u == b.0 {
                break;
            }
            for &(v, len) in &self.adj[u] {
                let nd = d + len;
                if nd < dist[v.0] {
                    dist[v.0] = nd;
                    prev[v.0] = Some(NodeId(u));
                    heap.push(Reverse((nd.to_bits(), v.0)));
                }
            }
        }
        if !dist[b.0].is_finite() {
            return None;
        }
        let mut nodes = vec![b];
        let mut cur = b;
        while let Some(p) = prev[cur.0] {
            nodes.push(p);
            cur = p;
            if cur == a {
                break;
            }
        }
        nodes.reverse();
        let cum_dist_m: Vec<f64> = nodes.iter().map(|n| dist[n.0]).collect();
        Some(PathInfo {
            nodes,
            length_m: dist[b.0],
            cum_dist_m,
        })
    }

    /// Cable distance between two nodes in metres, `None` if disconnected.
    pub fn cable_distance(&self, a: NodeId, b: NodeId) -> Option<f64> {
        self.shortest_path(a, b).map(|p| p.length_m)
    }

    /// Appliances plugged in at a specific outlet.
    pub fn appliances_at(&self, node: NodeId) -> impl Iterator<Item = ApplianceId> + '_ {
        self.appliances
            .iter()
            .enumerate()
            .filter(move |(_, a)| a.outlet == node)
            .map(|(i, _)| ApplianceId(i))
    }

    /// Appliances within `radius_m` metres of cable from `node`, with
    /// their cable distance (BFS over the wiring). Used for the
    /// receiver-local noise and the transmitter coupling loss of the PLC
    /// channel model.
    pub fn appliances_within(&self, node: NodeId, radius_m: f64) -> Vec<(ApplianceId, f64)> {
        use std::cmp::Reverse;
        let mut dist = vec![f64::INFINITY; self.nodes.len()];
        let mut heap: BinaryHeap<Reverse<(u64, usize)>> = BinaryHeap::new();
        dist[node.0] = 0.0;
        heap.push(Reverse((0u64, node.0)));
        while let Some(Reverse((dbits, u))) = heap.pop() {
            let d = f64::from_bits(dbits);
            if d > dist[u] {
                continue;
            }
            for &(v, len) in &self.adj[u] {
                let nd = d + len;
                if nd <= radius_m && nd < dist[v.0] {
                    dist[v.0] = nd;
                    heap.push(Reverse((nd.to_bits(), v.0)));
                }
            }
        }
        self.appliances
            .iter()
            .enumerate()
            .filter(|(_, a)| dist[a.outlet.0].is_finite())
            .map(|(i, a)| (ApplianceId(i), dist[a.outlet.0]))
            .collect()
    }

    /// Impedance discontinuities along a path: every path node that has
    /// off-path branches or attached appliances, with the appliances
    /// electrically visible behind it.
    ///
    /// The search behind a branch is a BFS that does not re-enter the path,
    /// bounded by `max_depth_m` metres of extra cable (reflections from
    /// farther away are attenuated into irrelevance).
    pub fn discontinuities(&self, path: &PathInfo, max_depth_m: f64) -> Vec<Discontinuity> {
        use std::collections::{HashSet, VecDeque};
        let on_path: HashSet<NodeId> = path.nodes.iter().copied().collect();
        let mut out = Vec::new();
        for (i, &node) in path.nodes.iter().enumerate() {
            let prev = if i > 0 { Some(path.nodes[i - 1]) } else { None };
            let next = if i + 1 < path.nodes.len() {
                Some(path.nodes[i + 1])
            } else {
                None
            };
            let off_path_branches = self.adj[node.0]
                .iter()
                .filter(|(nb, _)| Some(*nb) != prev && Some(*nb) != next && !on_path.contains(nb))
                .count();
            // BFS into side branches collecting appliances.
            let mut appliances: Vec<(ApplianceId, f64)> =
                self.appliances_at(node).map(|a| (a, 0.0)).collect();
            let mut visited: HashSet<NodeId> = on_path.clone();
            let mut queue: VecDeque<(NodeId, f64)> = VecDeque::new();
            for &(nb, len) in &self.adj[node.0] {
                if !on_path.contains(&nb) && len <= max_depth_m {
                    queue.push_back((nb, len));
                }
            }
            while let Some((n, d)) = queue.pop_front() {
                if !visited.insert(n) {
                    continue;
                }
                for a in self.appliances_at(n) {
                    appliances.push((a, d));
                }
                for &(nb, len) in &self.adj[n.0] {
                    if d + len <= max_depth_m && !visited.contains(&nb) {
                        queue.push_back((nb, d + len));
                    }
                }
            }
            if off_path_branches > 0 || !appliances.is_empty() {
                out.push(Discontinuity {
                    node,
                    dist_from_a_m: path.cum_dist_m[i],
                    off_path_branches,
                    appliances,
                });
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// board -- 10m -- j1 -- 5m -- o1
    ///                  \--- 3m -- o2 (fridge)
    fn tiny_grid() -> (Grid, NodeId, NodeId, NodeId, NodeId) {
        let mut g = Grid::new();
        let board = g.add_board("B1");
        let j1 = g.add_junction("J1");
        let o1 = g.add_outlet("O1");
        let o2 = g.add_outlet("O2");
        g.connect(board, j1, 10.0);
        g.connect(j1, o1, 5.0);
        g.connect(j1, o2, 3.0);
        g.attach(o2, ApplianceKind::Fridge, Schedule::AlwaysOn);
        (g, board, j1, o1, o2)
    }

    #[test]
    fn shortest_path_lengths() {
        let (g, board, _, o1, o2) = tiny_grid();
        assert_eq!(g.cable_distance(board, o1), Some(15.0));
        assert_eq!(g.cable_distance(o1, o2), Some(8.0));
        assert_eq!(g.cable_distance(o1, o1), Some(0.0));
    }

    #[test]
    fn shortest_path_nodes_and_cumdist() {
        let (g, board, j1, o1, _) = tiny_grid();
        let p = g.shortest_path(board, o1).unwrap();
        assert_eq!(p.nodes, vec![board, j1, o1]);
        assert_eq!(p.cum_dist_m, vec![0.0, 10.0, 15.0]);
    }

    #[test]
    fn disconnected_nodes_have_no_path() {
        let mut g = Grid::new();
        let a = g.add_outlet("a");
        let b = g.add_outlet("b");
        assert!(g.shortest_path(a, b).is_none());
        assert!(g.cable_distance(a, b).is_none());
    }

    #[test]
    fn dijkstra_prefers_shorter_route() {
        let mut g = Grid::new();
        let a = g.add_outlet("a");
        let b = g.add_outlet("b");
        let c = g.add_junction("c");
        g.connect(a, b, 100.0);
        g.connect(a, c, 10.0);
        g.connect(c, b, 10.0);
        let p = g.shortest_path(a, b).unwrap();
        assert_eq!(p.length_m, 20.0);
        assert_eq!(p.nodes, vec![a, c, b]);
    }

    #[test]
    fn discontinuities_find_branch_and_appliance() {
        let (g, board, j1, o1, o2) = tiny_grid();
        let p = g.shortest_path(board, o1).unwrap();
        let discs = g.discontinuities(&p, 50.0);
        // j1 has a side branch toward o2 carrying the fridge.
        let dj = discs
            .iter()
            .find(|d| d.node == j1)
            .expect("j1 discontinuity");
        assert_eq!(dj.off_path_branches, 1);
        assert_eq!(dj.appliances.len(), 1);
        let (aid, extra) = dj.appliances[0];
        assert_eq!(g.appliance(aid).outlet, o2);
        assert_eq!(extra, 3.0);
        assert_eq!(dj.dist_from_a_m, 10.0);
    }

    #[test]
    fn discontinuity_depth_bound_applies() {
        let (g, board, _, o1, _) = tiny_grid();
        let p = g.shortest_path(board, o1).unwrap();
        // With a 1 m search depth the fridge 3 m down the branch is unseen,
        // but the branch itself still counts as a discontinuity.
        let discs = g.discontinuities(&p, 1.0);
        let dj = discs
            .iter()
            .find(|d| d.off_path_branches > 0)
            .expect("branch discontinuity");
        assert!(dj.appliances.is_empty());
    }

    #[test]
    fn appliances_within_respects_radius() {
        let (g, board, _, o1, o2) = tiny_grid();
        // Fridge at o2: 8 m of cable from o1, 13 m from board.
        let near_o1 = g.appliances_within(o1, 10.0);
        assert_eq!(near_o1.len(), 1);
        assert_eq!(near_o1[0].1, 8.0);
        assert!(g.appliances_within(o1, 5.0).is_empty());
        assert_eq!(g.appliances_within(board, 13.0).len(), 1);
        assert_eq!(g.appliances_within(o2, 1.0).len(), 1); // itself at 0 m
    }

    #[test]
    #[should_panic(expected = "appliances attach to outlets")]
    fn attach_rejects_non_outlets() {
        let mut g = Grid::new();
        let b = g.add_board("B");
        g.attach(b, ApplianceKind::Fridge, Schedule::AlwaysOn);
    }

    #[test]
    #[should_panic(expected = "cable length must be positive")]
    fn connect_rejects_zero_length() {
        let mut g = Grid::new();
        let a = g.add_outlet("a");
        let b = g.add_outlet("b");
        g.connect(a, b, 0.0);
    }

    #[test]
    fn try_connect_reports_typed_errors() {
        let mut g = Grid::new();
        let a = g.add_outlet("a");
        let b = g.add_outlet("b");
        assert_eq!(
            g.try_connect(a, NodeId(99), 5.0),
            Err(GridError::UnknownNode {
                id: NodeId(99),
                node_count: 2
            })
        );
        assert_eq!(
            g.try_connect(a, a, 5.0),
            Err(GridError::SelfLoop { node: a })
        );
        assert_eq!(
            g.try_connect(a, b, -1.0),
            Err(GridError::NonPositiveLength {
                a,
                b,
                length_m: -1.0
            })
        );
        // NaN lengths are rejected too (NaN != NaN, so match on shape).
        assert!(matches!(
            g.try_connect(a, b, f64::NAN),
            Err(GridError::NonPositiveLength { .. })
        ));
        assert!(g.try_connect(a, b, 5.0).is_ok());
        assert_eq!(g.degree(a), 1);
    }

    #[test]
    fn try_attach_reports_typed_errors() {
        let mut g = Grid::new();
        let board = g.add_board("B");
        let o = g.add_outlet("o");
        assert_eq!(
            g.try_attach(board, ApplianceKind::Fridge, Schedule::AlwaysOn),
            Err(GridError::NotAnOutlet {
                node: board,
                kind: NodeKind::Board
            })
        );
        assert_eq!(
            g.try_attach(NodeId(7), ApplianceKind::Fridge, Schedule::AlwaysOn),
            Err(GridError::UnknownNode {
                id: NodeId(7),
                node_count: 2
            })
        );
        assert!(g
            .try_attach(o, ApplianceKind::Fridge, Schedule::AlwaysOn)
            .is_ok());
    }

    #[test]
    fn try_node_reports_unknown_ids() {
        let mut g = Grid::new();
        let a = g.add_outlet("a");
        assert!(g.try_node(a).is_ok());
        let err = g.try_node(NodeId(3)).unwrap_err();
        assert!(err.to_string().contains("unknown node id 3"));
    }

    #[test]
    fn grid_error_messages_are_actionable() {
        let e = GridError::NonPositiveLength {
            a: NodeId(1),
            b: NodeId(2),
            length_m: 0.0,
        };
        assert!(e.to_string().contains("cable length must be positive"));
        let e = GridError::NotAnOutlet {
            node: NodeId(4),
            kind: NodeKind::Junction,
        };
        assert!(e.to_string().contains("appliances attach to outlets"));
    }

    #[test]
    fn appliance_impedance_follows_schedule() {
        let mut g = Grid::new();
        let o = g.add_outlet("o");
        let id = g.attach(o, ApplianceKind::SpaceHeater, Schedule::BuildingLights);
        let app = g.appliance(id);
        // Weekday noon: on (low impedance). 3 am: off (near-open).
        let noon = Time::from_hours(12);
        let night = Time::from_hours(3);
        assert!(app.impedance_at(noon) < 10.0);
        assert!(app.impedance_at(night) > 1e4);
    }
}
