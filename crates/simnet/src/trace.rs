//! Time-series capture for experiment outputs.
//!
//! Every figure of the paper is a time series or a reduction of one. A
//! [`Series`] collects `(Time, value)` samples and offers the reductions
//! the paper uses: windowed averages (Fig. 12 "averaged over 1 minute
//! intervals"), per-hour-of-day averages with error bars (Fig. 13), and
//! plain mean/std (Fig. 3).

use crate::stats::RunningStats;
use crate::time::{Duration, Time};
use electrifi_state::{Persist, SectionReader, SectionWriter, StateError};
use serde::{Deserialize, Serialize};

/// A named time series of scalar samples.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Series {
    /// Name used in dumps and tables.
    pub name: String,
    /// Samples in non-decreasing time order (enforced on push).
    points: Vec<(Time, f64)>,
    /// Out-of-order samples rejected by [`Series::push`].
    dropped: u64,
}

impl Series {
    /// Create an empty series.
    pub fn new(name: impl Into<String>) -> Self {
        Series {
            name: name.into(),
            points: Vec::new(),
            dropped: 0,
        }
    }

    /// Append a sample. Samples must arrive in non-decreasing time order;
    /// out-of-order pushes panic in debug builds. In release builds they
    /// are rejected — but never silently: the rejection is counted on the
    /// series ([`Series::dropped`]) and in the ambient metrics registry
    /// (`simnet.trace.dropped`), so experiments can assert no data was
    /// lost.
    pub fn push(&mut self, t: Time, value: f64) {
        if let Some(&(last, _)) = self.points.last() {
            debug_assert!(t >= last, "out-of-order sample at {t:?} after {last:?}");
            if t < last {
                self.dropped += 1;
                crate::obs::current()
                    .registry()
                    .counter("simnet.trace.dropped")
                    .inc();
                return;
            }
        }
        self.points.push((t, value));
    }

    /// Number of out-of-order samples rejected by [`Series::push`].
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when the series has no samples.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Raw samples.
    pub fn points(&self) -> &[(Time, f64)] {
        &self.points
    }

    /// Values only.
    pub fn values(&self) -> impl Iterator<Item = f64> + '_ {
        self.points.iter().map(|p| p.1)
    }

    /// Mean and standard deviation over the whole series.
    pub fn stats(&self) -> RunningStats {
        let mut s = RunningStats::new();
        for &(_, v) in &self.points {
            s.push(v);
        }
        s
    }

    /// Average the series into fixed windows of width `bin`. Each output
    /// point is (window start, mean of samples in the window); empty
    /// windows are skipped.
    pub fn window_average(&self, bin: Duration) -> Series {
        assert!(bin.as_nanos() > 0);
        let mut out = Series::new(format!("{} ({} avg)", self.name, bin));
        let mut idx = 0usize;
        while idx < self.points.len() {
            let start = Time(self.points[idx].0.as_nanos() / bin.as_nanos() * bin.as_nanos());
            let end = start + bin;
            let mut stats = RunningStats::new();
            while idx < self.points.len() && self.points[idx].0 < end {
                stats.push(self.points[idx].1);
                idx += 1;
            }
            if stats.count() > 0 {
                out.points.push((start, stats.mean()));
            }
        }
        out
    }

    /// Group samples by hour of the simulated day, optionally filtering by
    /// weekend/weekday, returning per-hour statistics (Fig. 13 style:
    /// "lines represent the BLE averaged over the same hour of the day and
    /// error bars show standard deviation").
    pub fn by_hour_of_day(&self, weekend: Option<bool>) -> Vec<(u32, RunningStats)> {
        let mut bins: Vec<RunningStats> = (0..24).map(|_| RunningStats::new()).collect();
        for &(t, v) in &self.points {
            if let Some(want_weekend) = weekend {
                if t.is_weekend() != want_weekend {
                    continue;
                }
            }
            bins[t.hour_of_day() as usize % 24].push(v);
        }
        bins.into_iter()
            .enumerate()
            .filter(|(_, s)| s.count() > 0)
            .map(|(h, s)| (h as u32, s))
            .collect()
    }

    /// Inter-arrival times between consecutive samples whose value differs
    /// from the previous one by more than `epsilon` — used for the paper's
    /// tone-map update inter-arrival metric α (Fig. 11).
    pub fn change_interarrivals(&self, epsilon: f64) -> Vec<Duration> {
        let mut out = Vec::new();
        let mut last_change: Option<(Time, f64)> = None;
        for &(t, v) in &self.points {
            match last_change {
                None => last_change = Some((t, v)),
                Some((t0, v0)) => {
                    if (v - v0).abs() > epsilon {
                        out.push(t - t0);
                        last_change = Some((t, v));
                    }
                }
            }
        }
        out
    }

    /// Serialize to CSV with a `time_s,value` header.
    pub fn to_csv(&self) -> String {
        let mut s = String::with_capacity(self.points.len() * 24 + 16);
        s.push_str("time_s,value\n");
        for &(t, v) in &self.points {
            s.push_str(&format!("{:.6},{:.6}\n", t.as_secs_f64(), v));
        }
        s
    }
}

/// Checkpointing: a series is already canonical (time-ordered `Vec`), so
/// the encoding is just name + points + the dropped counter.
impl Persist for Series {
    fn save_state(&self, w: &mut SectionWriter) {
        w.put_str(&self.name);
        w.put_seq(&self.points);
        w.put_u64(self.dropped);
    }

    fn load_state(&mut self, r: &mut SectionReader<'_>) -> Result<(), StateError> {
        self.name = r.get_str()?.to_string();
        let points: Vec<(Time, f64)> = r.get_vec()?;
        if points.windows(2).any(|p| p[1].0 < p[0].0) {
            return Err(r.malformed("series points not in time order"));
        }
        self.points = points;
        self.dropped = r.get_u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_stats() {
        let mut s = Series::new("x");
        s.push(Time::from_secs(0), 1.0);
        s.push(Time::from_secs(1), 3.0);
        assert_eq!(s.len(), 2);
        let st = s.stats();
        assert_eq!(st.mean(), 2.0);
    }

    #[test]
    fn window_average_bins_correctly() {
        let mut s = Series::new("x");
        for i in 0..10u64 {
            s.push(Time::from_secs(i), i as f64);
        }
        let avg = s.window_average(Duration::from_secs(5));
        assert_eq!(avg.len(), 2);
        assert_eq!(avg.points()[0], (Time::ZERO, 2.0)); // mean of 0..=4
        assert_eq!(avg.points()[1], (Time::from_secs(5), 7.0)); // mean of 5..=9
    }

    #[test]
    fn window_average_skips_empty_windows() {
        let mut s = Series::new("x");
        s.push(Time::from_secs(0), 1.0);
        s.push(Time::from_secs(100), 2.0);
        let avg = s.window_average(Duration::from_secs(10));
        assert_eq!(avg.len(), 2);
        assert_eq!(avg.points()[1].0, Time::from_secs(100));
    }

    #[test]
    fn by_hour_filters_weekends() {
        let mut s = Series::new("x");
        // Monday 10:00 (day 0) value 1, Saturday 10:00 (day 5) value 9.
        s.push(Time::from_hours(10), 1.0);
        s.push(Time::from_hours(5 * 24 + 10), 9.0);
        let weekdays = s.by_hour_of_day(Some(false));
        assert_eq!(weekdays.len(), 1);
        assert_eq!(weekdays[0].0, 10);
        assert_eq!(weekdays[0].1.mean(), 1.0);
        let weekends = s.by_hour_of_day(Some(true));
        assert_eq!(weekends[0].1.mean(), 9.0);
        let all = s.by_hour_of_day(None);
        assert_eq!(all[0].1.count(), 2);
    }

    #[test]
    fn change_interarrivals_detects_updates() {
        let mut s = Series::new("ble");
        s.push(Time::from_secs(0), 50.0);
        s.push(Time::from_secs(1), 50.0); // no change
        s.push(Time::from_secs(2), 52.0); // change after 2 s
        s.push(Time::from_secs(5), 52.0);
        s.push(Time::from_secs(7), 49.0); // change after 5 s
        let gaps = s.change_interarrivals(0.5);
        assert_eq!(gaps, vec![Duration::from_secs(2), Duration::from_secs(5)]);
    }

    // The out-of-order path debug_asserts, so its counting behaviour is
    // only observable in release builds (`cargo test --release`).
    #[cfg(not(debug_assertions))]
    #[test]
    fn out_of_order_pushes_are_counted() {
        let obs = crate::obs::Obs::new();
        let dropped = crate::obs::with_default(obs.clone(), || {
            let mut s = Series::new("x");
            s.push(Time::from_secs(5), 1.0);
            s.push(Time::from_secs(3), 2.0); // out of order: rejected
            s.push(Time::from_secs(6), 3.0);
            assert_eq!(s.len(), 2);
            s.dropped()
        });
        assert_eq!(dropped, 1);
        assert_eq!(obs.registry().snapshot().counter("simnet.trace.dropped"), 1);
    }

    #[test]
    fn csv_roundtrip_shape() {
        let mut s = Series::new("x");
        s.push(Time::from_millis(1500), 2.5);
        let csv = s.to_csv();
        assert!(csv.starts_with("time_s,value\n"));
        assert!(csv.contains("1.500000,2.500000"));
    }
}
