//! Property-based tests for the simulation substrate.

use proptest::prelude::*;
use simnet::grid::Grid;
use simnet::noise::ValueNoise;
use simnet::obs::{MetricsSnapshot, ObsEvent, ObsSink, Registry, RingSink};
use simnet::stats::{linear_fit, Ecdf, RunningStats};
use simnet::time::{Duration, Time};
use simnet::{EventQueue, RngPool};

/// A numbered event for exercising sinks.
fn numbered_event(i: usize) -> ObsEvent {
    ObsEvent {
        t: Time::from_micros(i as u64),
        component: "test".to_string(),
        kind: format!("e{i}"),
        fields: Vec::new(),
    }
}

/// Replay a worker's instrument operations into a fresh registry and
/// snapshot it — the exact shape `sweep::par_map_workers` folds back
/// into the coordinator.
fn worker_snapshot(ops: &[(u8, u64)]) -> MetricsSnapshot {
    let r = Registry::new();
    for &(which, v) in ops {
        match which % 4 {
            0 => r.counter("c.alpha").add(v),
            1 => r.counter("c.beta").add(v % 7),
            2 => r.histo("h.alpha").record(v),
            _ => r.histo("h.beta").record(v % 1000),
        }
    }
    r.snapshot()
}

/// Deterministic Fisher–Yates permutation of `0..n` from an LCG seed.
fn permutation(n: usize, seed: u64) -> Vec<usize> {
    let mut order: Vec<usize> = (0..n).collect();
    let mut s = seed | 1;
    for i in (1..n).rev() {
        s = s
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let j = (s >> 33) as usize % (i + 1);
        order.swap(i, j);
    }
    order
}

proptest! {
    /// The event queue pops events in non-decreasing time order, FIFO
    /// within a timestamp, regardless of insertion order.
    #[test]
    fn event_queue_total_order(times in proptest::collection::vec(0u64..1_000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(Time::from_micros(t), i);
        }
        let mut last: Option<(Time, usize)> = None;
        while let Some(ev) = q.pop() {
            if let Some((lt, li)) = last {
                prop_assert!(ev.at >= lt);
                if ev.at == lt {
                    // FIFO within the instant: payload indices (insertion
                    // order) increase.
                    prop_assert!(ev.event > li);
                }
            }
            last = Some((ev.at, ev.event));
        }
    }

    /// Welford statistics agree with the naive two-pass computation.
    #[test]
    fn running_stats_matches_naive(xs in proptest::collection::vec(-1e6f64..1e6, 2..300)) {
        let mut s = RunningStats::new();
        for &x in &xs {
            s.push(x);
        }
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0);
        prop_assert!((s.mean() - mean).abs() <= 1e-6 * mean.abs().max(1.0));
        prop_assert!((s.variance() - var).abs() <= 1e-6 * var.abs().max(1.0));
        prop_assert_eq!(s.count(), xs.len() as u64);
    }

    /// Merging split statistics equals computing them in one pass.
    #[test]
    fn running_stats_merge_is_associative(
        xs in proptest::collection::vec(-1e3f64..1e3, 2..200),
        split in 0usize..200,
    ) {
        let split = split.min(xs.len());
        let mut whole = RunningStats::new();
        xs.iter().for_each(|&x| whole.push(x));
        let mut a = RunningStats::new();
        let mut b = RunningStats::new();
        xs[..split].iter().for_each(|&x| a.push(x));
        xs[split..].iter().for_each(|&x| b.push(x));
        a.merge(&b);
        prop_assert!((a.mean() - whole.mean()).abs() < 1e-7 * whole.mean().abs().max(1.0));
        prop_assert!((a.variance() - whole.variance()).abs() < 1e-6 * whole.variance().max(1.0));
    }

    /// An ECDF is a valid distribution function: monotone, 0 below the
    /// minimum, 1 at and above the maximum, and quantiles invert it.
    #[test]
    fn ecdf_is_a_distribution(xs in proptest::collection::vec(-1e3f64..1e3, 1..200)) {
        let e = Ecdf::new(xs.clone());
        let lo = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert_eq!(e.eval(lo - 1.0), 0.0);
        prop_assert_eq!(e.eval(hi), 1.0);
        let mut prev = 0.0;
        for k in 0..20 {
            let x = lo + (hi - lo) * k as f64 / 19.0;
            let v = e.eval(x);
            prop_assert!(v >= prev - 1e-12);
            prop_assert!((0.0..=1.0).contains(&v));
            prev = v;
        }
        for q in [0.0, 0.25, 0.5, 0.75, 1.0] {
            let x = e.quantile(q);
            prop_assert!((lo..=hi).contains(&x));
        }
    }

    /// Least squares recovers a noiseless line exactly for any slope and
    /// intercept.
    #[test]
    fn linear_fit_recovers_lines(
        slope in -100f64..100.0,
        intercept in -100f64..100.0,
        n in 3usize..50,
    ) {
        let pts: Vec<(f64, f64)> = (0..n)
            .map(|i| (i as f64, slope * i as f64 + intercept))
            .collect();
        let fit = linear_fit(&pts).expect("distinct xs");
        prop_assert!((fit.slope - slope).abs() < 1e-6 * slope.abs().max(1.0));
        prop_assert!((fit.intercept - intercept).abs() < 1e-5 * intercept.abs().max(1.0));
    }

    /// Value noise is bounded, deterministic and continuous for any seed.
    #[test]
    fn value_noise_bounded_and_continuous(seed in any::<u64>(), x in -1e4f64..1e4) {
        let n = ValueNoise::new(seed);
        let v = n.eval(x);
        prop_assert!((-1.0..=1.0).contains(&v));
        prop_assert_eq!(v, n.eval(x));
        let dv = (n.eval(x + 1e-7) - v).abs();
        prop_assert!(dv < 1e-4);
    }

    /// Independently labelled RNG streams do not collide for distinct
    /// labels (probabilistically: first draws differ).
    #[test]
    fn rng_streams_distinct(seed in any::<u64>(), a in 0u64..1_000, b in 0u64..1_000) {
        prop_assume!(a != b);
        let pool = RngPool::new(seed);
        let mut ra = pool.stream_n("s", a, 0);
        let mut rb = pool.stream_n("s", b, 0);
        let xa = simnet::rng::Distributions::uniform(&mut ra);
        let xb = simnet::rng::Distributions::uniform(&mut rb);
        prop_assert_ne!(xa, xb);
    }

    /// Dijkstra shortest paths over random trees match the unique tree
    /// path length (sum of edge weights on the path).
    #[test]
    fn grid_paths_on_trees_are_exact(
        parents in proptest::collection::vec((0usize..100, 1.0f64..50.0), 1..60),
    ) {
        let mut g = Grid::new();
        let root = g.add_junction("root");
        let mut nodes = vec![root];
        let mut depth = vec![0.0f64];
        let mut cum = vec![0.0f64];
        for (p, w) in parents {
            let parent = nodes[p % nodes.len()];
            let pd = cum[p % nodes.len()];
            let n = g.add_junction(format!("n{}", nodes.len()));
            g.connect(parent, n, w);
            nodes.push(n);
            depth.push(w);
            cum.push(pd + w);
        }
        // Distance from root to any node equals its cumulative depth.
        for (i, &n) in nodes.iter().enumerate() {
            let d = g.cable_distance(root, n).expect("tree is connected");
            prop_assert!((d - cum[i]).abs() < 1e-9, "node {i}: {d} vs {}", cum[i]);
        }
    }

    /// Mains-cycle helpers: slot indices are always valid and periodic.
    #[test]
    fn tonemap_slots_valid_and_periodic(ns in 0u64..10_000_000_000, l in 1usize..12) {
        let t = Time(ns);
        let s = t.tonemap_slot(l);
        prop_assert!(s < l);
        let shifted = t + Duration::from_millis(10); // half mains cycle
        prop_assert_eq!(s, shifted.tonemap_slot(l));
    }

    /// The ring sink accounts for every event: `len + dropped == n` for
    /// any capacity (including zero), and what it keeps are exactly the
    /// newest `len` events in arrival order.
    #[test]
    fn ring_sink_drop_accounting(cap in 0usize..24, n in 0usize..120) {
        let mut sink = RingSink::new(cap);
        for i in 0..n {
            sink.record(&numbered_event(i));
        }
        prop_assert_eq!(sink.len(), n.min(cap));
        prop_assert_eq!(sink.is_empty(), n.min(cap) == 0);
        prop_assert_eq!(sink.dropped(), n.saturating_sub(cap) as u64);
        prop_assert_eq!(sink.len() as u64 + sink.dropped(), n as u64);
        let first_kept = n - sink.len();
        for (j, ev) in sink.events().enumerate() {
            prop_assert_eq!(ev.kind.clone(), format!("e{}", first_kept + j));
        }
    }

    /// `Registry::absorb` is order-insensitive for counters and
    /// histograms: folding worker snapshots in any permutation yields
    /// the same coordinator snapshot. (Gauges are deliberately
    /// last-write-wins and excluded.)
    #[test]
    fn registry_absorb_order_insensitive(
        workers in proptest::collection::vec(
            proptest::collection::vec((any::<u8>(), 0u64..1_000_000), 0..20),
            0..6,
        ),
        seed in any::<u64>(),
    ) {
        let snaps: Vec<MetricsSnapshot> =
            workers.iter().map(|w| worker_snapshot(w)).collect();
        let in_order = Registry::new();
        for s in &snaps {
            in_order.absorb(s);
        }
        let shuffled = Registry::new();
        for &i in &permutation(snaps.len(), seed) {
            shuffled.absorb(&snaps[i]);
        }
        let a = in_order.snapshot();
        let b = shuffled.snapshot();
        prop_assert_eq!(a.counters, b.counters);
        prop_assert_eq!(a.histos, b.histos);
    }

    /// `Registry::absorb` is associative for counters and histograms:
    /// pre-merging a group of worker snapshots through an intermediate
    /// registry and absorbing its snapshot equals absorbing the workers
    /// directly — so sweeps may fold in chunks of any shape.
    #[test]
    fn registry_absorb_associative(
        workers in proptest::collection::vec(
            proptest::collection::vec((any::<u8>(), 0u64..1_000_000), 0..20),
            1..6,
        ),
        split in 0usize..6,
    ) {
        let snaps: Vec<MetricsSnapshot> =
            workers.iter().map(|w| worker_snapshot(w)).collect();
        let split = split.min(snaps.len());
        let flat = Registry::new();
        for s in &snaps {
            flat.absorb(s);
        }
        let left = Registry::new();
        for s in &snaps[..split] {
            left.absorb(s);
        }
        let right = Registry::new();
        for s in &snaps[split..] {
            right.absorb(s);
        }
        let grouped = Registry::new();
        grouped.absorb(&left.snapshot());
        grouped.absorb(&right.snapshot());
        let a = flat.snapshot();
        let b = grouped.snapshot();
        prop_assert_eq!(a.counters, b.counters);
        prop_assert_eq!(a.histos, b.histos);
    }
}
