//! # plc-mac — the IEEE 1901 (HomePlug AV) MAC layer
//!
//! Implements the MAC machinery the paper's measurements go through
//! (paper §2.2, Fig. 1):
//!
//! * [`timing`] — slot, inter-frame-space and frame-duration constants.
//! * [`csma`] — the 1901 CSMA/CA backoff engine, including the **deferral
//!   counter**: unlike 802.11, stations escalate their contention window
//!   not only on collisions but also after sensing the medium busy.
//! * [`pb`] — two-level frame aggregation: Ethernet packets are segmented
//!   into 512-byte **physical blocks** (PBs), PBs are merged into PLC
//!   frames, and a **selective acknowledgment** (SACK) retransmits only
//!   the corrupted PBs.
//! * [`frame`] — PLC frames and the **start-of-frame (SoF) delimiter**
//!   carrying the BLE that the paper's capacity estimation reads.
//! * [`cco`] — central-coordinator election and logical (encryption)
//!   networks: the paper's two-network floor with statically pinned
//!   CCos, plus HomePlug's dynamic election.
//! * [`sim`] — an event-driven contention-domain simulation: stations,
//!   traffic flows, channel estimation, tone-map exchange, SACKs,
//!   collisions with the capture effect, beacons, broadcast (ROBO) frames
//!   and a sniffer.
//! * [`mm`] — the management-message interface mirroring the Qualcomm
//!   Atheros Open Powerline Toolkit tools the paper uses (`ampstat` for
//!   PBerr, `int6krate` for average BLE, device reset, CCo pinning).
//! * [`throughput`] — an analytic saturation-throughput model (BLE and
//!   PBerr in, UDP goodput out) used by long-horizon experiments where
//!   frame-level simulation would be wasteful.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod cco;
pub mod csma;
pub mod frame;
pub mod mm;
pub mod pb;
mod persist;
pub mod reference;
mod scratch;
pub mod sim;
pub mod throughput;
pub mod timing;

pub use batch::PlcBatch;
pub use csma::BackoffState;
pub use frame::{Frame, SofDelimiter, SofRecord};
pub use sim::{Flow, PlcSim, SimConfig, StationId};
pub use throughput::saturation_throughput_mbps;
