//! Event-driven simulation of one PLC contention domain.
//!
//! A [`PlcSim`] hosts a set of stations plugged into outlets of an
//! electrical [`Grid`], the physical channels between every connected
//! pair, traffic flows, and the full 1901 MAC: CSMA/CA with deferral
//! counters, priority-resolution slots, frame aggregation against the
//! current tone map, selective acknowledgments, tone-map
//! estimation/exchange, beacons, ROBO broadcast, collisions with an
//! optional capture effect, and a SoF sniffer.
//!
//! Everything the paper measures at the MAC level comes out of this
//! simulation: per-frame SoF captures (Fig. 9), saturation throughput
//! (Figs. 3/6/7/15), estimated-capacity convergence (Figs. 16-18), U-ETX
//! retransmission counts (Fig. 22), broadcast loss rates (Fig. 21), and
//! the background-traffic sensitivity of link metrics (Figs. 23-24).

use crate::csma::BackoffState;
use crate::frame::{SofDelimiter, SofRecord};
use crate::pb::{pbs_for_packet, CompletedPacket, QueuedPb, Reassembler, PB_WIRE_BITS};
use crate::scratch::{BuiltFrame, SimScratch};
use crate::timing;
use plc_phy::carrier::SYMBOL_US;
use plc_phy::channel::{LinkDir, PlcChannelParams};
use plc_phy::error::pb_error_prob;
use plc_phy::estimation::EstimatorConfig;
use plc_phy::tonemap::{ToneMap, TONEMAP_SLOTS};
use plc_phy::{ChannelEstimator, PlcChannel, PlcTechnology, SnrSpectrum};
use rand::rngs::StdRng;
use rand::SeedableRng;
use simnet::grid::{Grid, NodeId};
use simnet::obs::{self, Counter, Obs, Registry};
use simnet::rng::Distributions;
use simnet::time::{Duration, Time, BEACON_PERIOD};
use simnet::traffic::TrafficSource;
use std::collections::HashMap;

/// Shared handles into the metrics registry for the MAC's hot paths.
/// Registered once per simulation; incrementing is a cheap shared-cell
/// add, and none of it feeds back into simulation state (observation is
/// inert — see `simnet::obs`).
pub(crate) struct MacMetrics {
    pub(crate) steps: Counter,
    pub(crate) events_fired: Counter,
    pub(crate) csma_attempts: Counter,
    pub(crate) csma_collisions: Counter,
    pub(crate) csma_deferrals: Counter,
    pub(crate) sack_retrans_pbs: Counter,
    pub(crate) tonemap_updates: Counter,
    pub(crate) sound_frames: Counter,
    pub(crate) spec_hits: Counter,
    pub(crate) spec_refreshes: Counter,
    /// Idle steps answered from the cached min next-arrival.
    pub(crate) idle_skips: Counter,
    /// Idle steps that had to re-scan the flows (cache dirty or a
    /// now-dependent source present).
    pub(crate) idle_rescans: Counter,
    /// Steps served by warm scratch buffers (no fresh allocations).
    pub(crate) scratch_reuses: Counter,
    /// Heap allocations the pre-optimization stepper would have made that
    /// the scratch/pooled path avoided (an accounting estimate, counted at
    /// each reuse site).
    pub(crate) allocs_saved: Counter,
}

impl MacMetrics {
    fn register(reg: &Registry) -> Self {
        MacMetrics {
            steps: reg.counter("plc.mac.steps"),
            events_fired: reg.counter("sim.events_fired"),
            csma_attempts: reg.counter("plc.mac.csma.attempts"),
            csma_collisions: reg.counter("plc.mac.csma.collisions"),
            csma_deferrals: reg.counter("plc.mac.csma.deferrals"),
            sack_retrans_pbs: reg.counter("plc.mac.sack.retrans_pbs"),
            tonemap_updates: reg.counter("plc.mac.tonemap.updates"),
            sound_frames: reg.counter("plc.mac.sound_frames"),
            spec_hits: reg.counter("plc.mac.spectrum_hits"),
            spec_refreshes: reg.counter("plc.mac.spectrum_refreshes"),
            idle_skips: reg.counter("plc.mac.idle_skips"),
            idle_rescans: reg.counter("plc.mac.idle_rescans"),
            scratch_reuses: reg.counter("plc.mac.scratch_reuses"),
            allocs_saved: reg.counter("plc.mac.allocs_saved"),
        }
    }
}

/// Station identifier within a simulation (the paper numbers its stations
/// 0–18).
pub type StationId = u16;

/// Destination marker for broadcast flows.
pub const BROADCAST: StationId = StationId::MAX;

/// 1901 channel-access priority classes, resolved in the PRS0/PRS1 slots
/// that precede every contention period: when any station signals a
/// higher class, lower-class stations sit the contention out. Best-effort
/// data uses CA1; latency-sensitive streams CA2/CA3.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize, serde::Deserialize,
)]
pub enum Priority {
    /// Background.
    Ca0,
    /// Best effort (default for data).
    Ca1,
    /// Video/voice.
    Ca2,
    /// Network-critical.
    Ca3,
}

/// Simulation configuration.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Master RNG seed.
    pub seed: u64,
    /// PLC generation (HPAV or HPAV500).
    pub technology: PlcTechnology,
    /// Channel-model constants.
    pub channel: PlcChannelParams,
    /// Channel-estimator configuration used by every receiver.
    pub estimator: EstimatorConfig,
    /// Enable the collision capture effect (paper §8.2).
    pub capture_effect: bool,
    /// Minimum signal-to-interference ratio (dB) for a frame to be
    /// (partially) decoded during a collision.
    pub capture_sinr_db: f64,
    /// The interfering frame must be at least this many times longer than
    /// the captured frame (short probes inside long saturated frames).
    pub capture_duration_ratio: f64,
    /// PB error rate applied to a captured frame's blocks.
    pub capture_pberr: f64,
    /// How often cached per-slot SNR spectra are refreshed.
    pub spectrum_refresh: Duration,
    /// Minimum gap between two estimator observations on one link
    /// direction (subsampling keeps long saturated runs cheap without
    /// changing convergence behaviour at probe rates).
    pub observe_min_gap: Duration,
    /// Fraction of a frame's airtime carrying useful payload bits after
    /// PB padding, partial last symbols and tone-map-slot truncation
    /// (calibrated together with `exchange_extra` so saturation goodput
    /// matches the paper's Fig. 15 fit, BLE = 1.7 T − 0.65).
    pub frame_efficiency: f64,
    /// Extra per-exchange dead time (management traffic, tone-map
    /// exchange, aggregation slack).
    pub exchange_extra: Duration,
    /// ABLATION: disable the 1901 deferral counter, making the backoff
    /// 802.11-style (stations escalate only on collisions, never on
    /// sensing the medium busy). Used to demonstrate the deferral
    /// counter's short-term unfairness/jitter effect (paper §2.2,
    /// \[19\], \[21\]).
    pub disable_deferral: bool,
    /// Record SoF delimiters of all successfully transmitted frames.
    pub sniffer: bool,
    /// Transmit-queue capacity in PBs (device buffer; PLC queues are
    /// non-blocking and drop on overflow, paper footnote 11).
    pub queue_cap_pbs: usize,
    /// Scripted medium outage (breaker trip seen from the MAC): windows
    /// during which no station of this contention domain can transmit.
    /// Pure function of time, so outaged runs stay deterministic across
    /// execution shapes. `None` (the default) costs nothing per step.
    pub outage: Option<electrifi_faults::OutageProfile>,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            seed: 1,
            technology: PlcTechnology::HpAv,
            channel: PlcChannelParams::default(),
            estimator: EstimatorConfig::default(),
            capture_effect: true,
            capture_sinr_db: 12.0,
            capture_duration_ratio: 2.0,
            capture_pberr: 0.75,
            spectrum_refresh: Duration::from_millis(200),
            observe_min_gap: Duration::from_millis(10),
            frame_efficiency: 0.82,
            exchange_extra: Duration::from_micros(150),
            disable_deferral: false,
            sniffer: false,
            queue_cap_pbs: 600,
            outage: None,
        }
    }
}

/// A traffic flow between two stations (or a broadcast source).
#[derive(Debug, Clone)]
pub struct Flow {
    /// Source station.
    pub src: StationId,
    /// Destination station; [`BROADCAST`] for broadcast probing.
    pub dst: StationId,
    /// The traffic shape.
    pub source: TrafficSource,
    /// Channel-access priority class.
    pub priority: Priority,
}

impl Flow {
    /// Unicast flow at the default CA1 (best-effort data) priority.
    pub fn unicast(src: StationId, dst: StationId, source: TrafficSource) -> Self {
        Flow {
            src,
            dst,
            source,
            priority: Priority::Ca1,
        }
    }

    /// Broadcast flow (ROBO-modulated, unacknowledged — paper §8.1).
    pub fn broadcast(src: StationId, source: TrafficSource) -> Self {
        Flow {
            src,
            dst: BROADCAST,
            source,
            priority: Priority::Ca1,
        }
    }

    /// Set the channel-access priority.
    pub fn with_priority(mut self, priority: Priority) -> Self {
        self.priority = priority;
        self
    }

    pub(crate) fn is_broadcast(&self) -> bool {
        self.dst == BROADCAST
    }
}

/// Receiver-side state for one directed link.
pub(crate) struct RxState {
    pub(crate) estimator: ChannelEstimator,
    /// PBs (total, errored) since the last tone-map regeneration — the
    /// estimator's own error window.
    pub(crate) window: (u64, u64),
    /// PBs (total, errored) since the last `ampstat` drain — the
    /// measurement tool's window.
    pub(crate) ampstat: (u64, u64),
    /// Cumulative PB counters (never reset).
    pub(crate) cumulative: (u64, u64),
    pub(crate) last_observe: Option<Time>,
    /// Per-slot memo of `info_bits_per_symbol()` keyed by tone-map id —
    /// the O(carriers) sum only reruns after a regeneration changes the
    /// id. The reference stepper ignores this and recomputes per frame.
    pub(crate) bits_memo: [Option<(u32, f64)>; TONEMAP_SLOTS],
}

/// Per-flow simulation state.
pub(crate) struct FlowState {
    pub(crate) flow: Flow,
    pub(crate) queue: std::collections::VecDeque<QueuedPb>,
    /// Frames each packet participated in (sender side, for U-ETX).
    pub(crate) tx_counts: HashMap<u64, u32>,
    /// Completed tx counts of delivered packets.
    pub(crate) delivered_tx_counts: Vec<u32>,
    pub(crate) reassembler: Reassembler,
    pub(crate) delivered: Vec<CompletedPacket>,
    /// Broadcast accounting per receiver: (received packets, lost packets).
    pub(crate) broadcast_rx: HashMap<StationId, (u64, u64)>,
    /// Packets dropped at the full transmit queue.
    pub(crate) dropped: u64,
}

pub(crate) struct Station {
    pub(crate) outlet: NodeId,
    pub(crate) backoff: Option<BackoffState>,
    /// Flow indices sourced at this station.
    pub(crate) flows: Vec<usize>,
    /// Round-robin pointer over `flows`.
    pub(crate) rr: usize,
}

pub(crate) struct CachedSpectrum {
    pub(crate) at: Time,
    pub(crate) spec: SnrSpectrum,
    /// PBerr memoized for (tonemap id); invalidated with the spectrum.
    pub(crate) pberr_for: Option<(u32, f64)>,
    /// `spec.mean_db()` memoized; invalidated with the spectrum. The
    /// capture path takes the wideband mean of every interferer spectrum
    /// on each collision, so recomputing the 917-carrier mean per query
    /// dominates collision handling without this.
    pub(crate) mean_db: Option<f64>,
}

/// Memoized strongest-interferer scan for one (receiver, tone-map slot):
/// the two largest wideband mean spectra among stations with a channel to
/// the receiver, so a capture check is O(1) instead of
/// O(stations × carriers).
#[derive(Clone, Copy)]
pub(crate) struct CaptureEntry {
    /// `spectra_gen` at build time; any refresh anywhere invalidates.
    pub(crate) gen: u64,
    /// Oldest `at` among the group's spectra at build time. The entry is
    /// only valid while `now - min_at < spectrum_refresh`, i.e. while a
    /// rescan would refresh nothing and read identical spectra.
    pub(crate) min_at: Time,
    /// Largest mean (dB) and the transmitter it belongs to.
    pub(crate) top1: f64,
    pub(crate) top1_src: usize,
    /// Second-largest mean (dB), for when `top1_src` is the sender itself.
    pub(crate) top2: f64,
    pub(crate) valid: bool,
}

impl Default for CaptureEntry {
    fn default() -> Self {
        CaptureEntry {
            gen: 0,
            min_at: Time::ZERO,
            top1: f64::NEG_INFINITY,
            top1_src: usize::MAX,
            top2: f64::NEG_INFINITY,
            valid: false,
        }
    }
}

/// One PLC contention domain.
pub struct PlcSim {
    pub(crate) cfg: SimConfig,
    pub(crate) now: Time,
    pub(crate) rng: StdRng,
    pub(crate) ids: Vec<StationId>,
    pub(crate) index: HashMap<StationId, usize>,
    pub(crate) stations: Vec<Station>,
    /// Undirected physical channels, keyed by (min idx, max idx).
    pub(crate) channels: HashMap<(usize, usize), PlcChannel>,
    /// Directed receiver state keyed by (src idx, dst idx).
    pub(crate) rx: HashMap<(usize, usize), RxState>,
    pub(crate) flows: Vec<FlowState>,
    pub(crate) sniffer: Vec<SofRecord>,
    pub(crate) spectra: HashMap<(usize, usize, u8), CachedSpectrum>,
    /// Bumped whenever any cached spectrum is actually refreshed;
    /// version-stamps the capture cache.
    pub(crate) spectra_gen: u64,
    /// Per-(receiver, slot) strongest-interferer memo for capture checks.
    pub(crate) capture_cache: Vec<[CaptureEntry; TONEMAP_SLOTS]>,
    pub(crate) n_carriers: usize,
    /// Prebuilt ROBO map for this carrier count (broadcasts, sounding,
    /// dead-map fallback) — avoids rebuilding the carrier vector per frame.
    pub(crate) robo: ToneMap,
    /// `info_bits_per_symbol()` of `robo`, computed once.
    pub(crate) robo_bits: f64,
    pub(crate) obs: Obs,
    pub(crate) metrics: MacMetrics,
    /// Reusable hot-loop buffers (`mem::take`n per step).
    pub(crate) scratch: SimScratch,
    /// Cached `next_arrival` over all (empty-queue) flows. `None` = dirty;
    /// `Some(v)` is the memoized scan result, valid until a source hands
    /// out a packet (`refill_queues` take) or a flow is added. Only set
    /// when every contributing source's arrival is time-independent
    /// ([`TrafficSource::arrival_is_static`]).
    pub(crate) arrival_cache: Option<Option<Time>>,
}

impl PlcSim {
    /// Build a simulation for stations plugged into `outlets` of `grid`.
    /// Channels are derived for every electrically connected pair.
    pub fn new(cfg: SimConfig, grid: &Grid, outlets: &[(StationId, NodeId)]) -> Self {
        let ids: Vec<StationId> = outlets.iter().map(|(id, _)| *id).collect();
        let index: HashMap<StationId, usize> =
            ids.iter().enumerate().map(|(i, id)| (*id, i)).collect();
        assert_eq!(index.len(), ids.len(), "duplicate station ids");
        let stations: Vec<Station> = outlets
            .iter()
            .map(|&(_, outlet)| Station {
                outlet,
                backoff: None,
                flows: Vec::new(),
                rr: 0,
            })
            .collect();
        let mut channels = HashMap::new();
        for i in 0..stations.len() {
            for j in (i + 1)..stations.len() {
                let seed = cfg
                    .seed
                    .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                    .wrapping_add((ids[i] as u64) << 16 | ids[j] as u64);
                if let Some(ch) = PlcChannel::from_grid(
                    grid,
                    stations[i].outlet,
                    stations[j].outlet,
                    cfg.technology,
                    cfg.channel,
                    seed,
                ) {
                    channels.insert((i, j), ch);
                }
            }
        }
        let n_carriers = cfg.technology.carrier_count();
        let rng = StdRng::seed_from_u64(cfg.seed);
        let obs = simnet::obs::current();
        let metrics = MacMetrics::register(obs.registry());
        let robo = ToneMap::robo(n_carriers);
        let robo_bits = robo.info_bits_per_symbol();
        let n_stations = stations.len();
        PlcSim {
            cfg,
            now: Time::ZERO,
            rng,
            ids,
            index,
            stations,
            channels,
            rx: HashMap::new(),
            flows: Vec::new(),
            sniffer: Vec::new(),
            spectra: HashMap::new(),
            spectra_gen: 0,
            capture_cache: vec![[CaptureEntry::default(); TONEMAP_SLOTS]; n_stations],
            n_carriers,
            robo,
            robo_bits,
            obs,
            metrics,
            scratch: SimScratch::default(),
            arrival_cache: None,
        }
    }

    /// Route this simulation's metrics and events to `obs` instead of the
    /// ambient handle captured at construction.
    pub fn attach_obs(&mut self, obs: Obs) {
        self.metrics = MacMetrics::register(obs.registry());
        self.obs = obs;
    }

    /// Current simulation time.
    pub fn now(&self) -> Time {
        self.now
    }

    /// Add a traffic flow; returns its handle.
    pub fn add_flow(&mut self, flow: Flow) -> usize {
        let src_idx = self.idx(flow.src);
        if !flow.is_broadcast() {
            let dst_idx = self.idx(flow.dst);
            let key = Self::pair(src_idx, dst_idx);
            assert!(
                self.channels.contains_key(&key),
                "no electrical path between stations {} and {}",
                flow.src,
                flow.dst
            );
        }
        let id = self.flows.len();
        self.flows.push(FlowState {
            flow,
            queue: Default::default(),
            tx_counts: HashMap::new(),
            delivered_tx_counts: Vec::new(),
            reassembler: Reassembler::new(),
            delivered: Vec::new(),
            broadcast_rx: HashMap::new(),
            dropped: 0,
        });
        self.stations[src_idx].flows.push(id);
        // A new source can move the minimum next-arrival.
        self.arrival_cache = None;
        id
    }

    /// Override the minimum estimator-observation gap mid-run. Used by
    /// `bench_mac` to quiesce the estimation pipeline after convergence so
    /// the timed window isolates the MAC stepping cost; experiments keep
    /// the constructor-time value.
    pub fn set_observe_min_gap(&mut self, gap: Duration) {
        self.cfg.observe_min_gap = gap;
    }

    /// Override the spectrum staleness interval mid-run (the bench hook
    /// companion of [`set_observe_min_gap`](Self::set_observe_min_gap)).
    /// `bench_mac` freezes refreshes after warmup so its gated comparison
    /// isolates the MAC scheduling loop from the PHY recompute cost that
    /// `BENCH_channel.json` measures on its own; experiments keep the
    /// constructor-time value.
    pub fn set_spectrum_refresh(&mut self, interval: Duration) {
        self.cfg.spectrum_refresh = interval;
    }

    /// Materialize the per-(link, slot) spectrum-cache entry for every
    /// connected station pair in both directions.
    ///
    /// The hot loop creates these entries lazily, so the first-ever
    /// collision between a given pair allocates a spectrum buffer deep
    /// into a run. `bench_mac` prewarms before its timed window so the
    /// steady state is measurably allocation-free; entries still refresh
    /// on their normal staleness schedule afterwards. Deterministic: no
    /// RNG draws, identical across steppers at the same simulation time.
    pub fn prewarm_spectra(&mut self) {
        for src in 0..self.stations.len() {
            for dst in 0..self.stations.len() {
                if src == dst || !self.channels.contains_key(&Self::pair(src, dst)) {
                    continue;
                }
                for slot in 0..TONEMAP_SLOTS {
                    self.refresh_spectrum(src, dst, slot);
                }
            }
        }
    }

    pub(crate) fn idx(&self, id: StationId) -> usize {
        *self
            .index
            .get(&id)
            .unwrap_or_else(|| panic!("unknown station id {id}"))
    }

    pub(crate) fn pair(a: usize, b: usize) -> (usize, usize) {
        (a.min(b), a.max(b))
    }

    pub(crate) fn dir(a: usize, b: usize) -> LinkDir {
        if a < b {
            LinkDir::AtoB
        } else {
            LinkDir::BtoA
        }
    }

    /// Does a physical channel exist between two stations?
    pub fn connected(&self, a: StationId, b: StationId) -> bool {
        self.channels
            .contains_key(&Self::pair(self.idx(a), self.idx(b)))
    }

    /// Cable distance between two stations, metres.
    pub fn cable_distance_m(&self, a: StationId, b: StationId) -> Option<f64> {
        self.channels
            .get(&Self::pair(self.idx(a), self.idx(b)))
            .map(|c| c.cable_distance_m())
    }

    pub(crate) fn rx_state(&mut self, src: usize, dst: usize) -> &mut RxState {
        let cfg = self.cfg.estimator;
        let n = self.n_carriers;
        self.rx.entry((src, dst)).or_insert_with(|| RxState {
            estimator: ChannelEstimator::new(cfg, n),
            window: (0, 0),
            ampstat: (0, 0),
            cumulative: (0, 0),
            last_observe: None,
            bits_memo: [None; TONEMAP_SLOTS],
        })
    }

    /// Refresh the cached per-slot spectrum for a directed link if older
    /// than `spectrum_refresh`, rewriting the entry's buffer in place.
    pub(crate) fn refresh_spectrum(&mut self, src: usize, dst: usize, slot: usize) {
        let key = (src, dst, slot as u8);
        let refresh = self.cfg.spectrum_refresh;
        let now = self.now;
        let needs = match self.spectra.get(&key) {
            Some(c) => now.saturating_since(c.at) >= refresh,
            None => true,
        };
        if needs {
            let _span = obs::span::enter_at("mac.spectrum_refresh", now);
            self.metrics.spec_refreshes.inc();
            self.spectra_gen += 1;
            let ch = self
                .channels
                .get(&Self::pair(src, dst))
                .expect("channel exists for active link");
            let phase = (slot as f64 + 0.5) / TONEMAP_SLOTS as f64;
            let entry = self.spectra.entry(key).or_insert_with(|| CachedSpectrum {
                at: now,
                spec: SnrSpectrum::empty(),
                pberr_for: None,
                mean_db: None,
            });
            entry.at = now;
            entry.pberr_for = None;
            entry.mean_db = None;
            ch.spectrum_at_phase_into(Self::dir(src, dst), now, phase, &mut entry.spec);
        } else {
            self.metrics.spec_hits.inc();
        }
    }

    /// Cached per-slot spectrum for a directed link (refreshed every
    /// `spectrum_refresh`).
    pub(crate) fn spectrum(&mut self, src: usize, dst: usize, slot: usize) -> &SnrSpectrum {
        self.refresh_spectrum(src, dst, slot);
        &self
            .spectra
            .get(&(src, dst, slot as u8))
            .expect("just refreshed")
            .spec
    }

    /// Wideband mean (dB) of the cached spectrum for a directed link,
    /// memoized until the next refresh. `SnrSpectrum::mean_db` is a pure
    /// function of the buffer, so caching it is bit-identical to
    /// recomputing.
    pub(crate) fn spectrum_mean(&mut self, src: usize, dst: usize, slot: usize) -> f64 {
        self.refresh_spectrum(src, dst, slot);
        let cached = self
            .spectra
            .get_mut(&(src, dst, slot as u8))
            .expect("just refreshed");
        if let Some(m) = cached.mean_db {
            return m;
        }
        let m = cached.spec.mean_db();
        cached.mean_db = Some(m);
        m
    }

    /// PBerr of `map` against the cached spectrum, memoized per tone-map
    /// id.
    pub(crate) fn pberr_for(&mut self, src: usize, dst: usize, slot: usize, map: &ToneMap) -> f64 {
        self.spectrum(src, dst, slot); // ensure fresh
        let key = (src, dst, slot as u8);
        let cached = self.spectra.get_mut(&key).expect("cached");
        if let Some((id, p)) = cached.pberr_for {
            if id == map.id {
                return p;
            }
        }
        let p = pb_error_prob(map, &cached.spec);
        cached.pberr_for = Some((map.id, p));
        p
    }

    // ----- Measurement interface (management messages & sniffer) -----

    /// `int6krate`-style query: the average BLE the destination's
    /// estimator currently advertises for `src → dst`, Mb/s.
    pub fn int6krate(&self, src: StationId, dst: StationId) -> f64 {
        let (s, d) = (self.idx(src), self.idx(dst));
        self.rx
            .get(&(s, d))
            .map(|r| r.estimator.ble_avg())
            .unwrap_or_else(|| self.robo.ble())
    }

    /// BLE of one tone-map slot for `src → dst`, Mb/s.
    pub fn ble_slot(&self, src: StationId, dst: StationId, slot: usize) -> f64 {
        let (s, d) = (self.idx(src), self.idx(dst));
        self.rx
            .get(&(s, d))
            .map(|r| r.estimator.ble_slot(slot))
            .unwrap_or_else(|| self.robo.ble())
    }

    /// `ampstat`-style query: PB error rate on `src → dst` since the last
    /// call (drains the tool window). `None` when no PBs flowed.
    pub fn ampstat(&mut self, src: StationId, dst: StationId) -> Option<f64> {
        let (s, d) = (self.idx(src), self.idx(dst));
        let rx = self.rx.get_mut(&(s, d))?;
        let (total, err) = rx.ampstat;
        rx.ampstat = (0, 0);
        if total == 0 {
            None
        } else {
            Some(err as f64 / total as f64)
        }
    }

    /// Cumulative PB counters (total, errored) for `src → dst`.
    pub fn pb_counters(&self, src: StationId, dst: StationId) -> (u64, u64) {
        let (s, d) = (self.idx(src), self.idx(dst));
        self.rx.get(&(s, d)).map(|r| r.cumulative).unwrap_or((0, 0))
    }

    /// Factory-reset a station: clears every channel estimate it holds as
    /// a receiver and every estimate other stations hold about links *to*
    /// it (tone maps are per-link state shared by both ends).
    pub fn reset_device(&mut self, station: StationId) {
        let idx = self.idx(station);
        for ((s, d), rx) in self.rx.iter_mut() {
            if *s == idx || *d == idx {
                rx.estimator.reset();
                rx.window = (0, 0);
                // Reset re-seeds tone-map ids from 1, so a stale memo
                // entry could collide with a fresh id.
                rx.bits_memo = [None; TONEMAP_SLOTS];
            }
        }
    }

    /// Drain packets delivered on a unicast flow.
    pub fn take_delivered(&mut self, flow: usize) -> Vec<CompletedPacket> {
        std::mem::take(&mut self.flows[flow].delivered)
    }

    /// Drain delivered packets into a caller-owned buffer (appended),
    /// keeping the internal buffer's capacity: the heap-free counterpart
    /// of [`take_delivered`](Self::take_delivered) for long sampled runs.
    pub fn drain_delivered_into(&mut self, flow: usize, out: &mut Vec<CompletedPacket>) {
        out.append(&mut self.flows[flow].delivered);
    }

    /// Drain the per-packet transmission counts (frames each delivered
    /// packet needed — the U-ETX samples of §8.1).
    pub fn take_tx_counts(&mut self, flow: usize) -> Vec<u32> {
        std::mem::take(&mut self.flows[flow].delivered_tx_counts)
    }

    /// Drain per-packet transmission counts into a caller-owned buffer
    /// (appended), keeping the internal buffer's capacity.
    pub fn drain_tx_counts_into(&mut self, flow: usize, out: &mut Vec<u32>) {
        out.append(&mut self.flows[flow].delivered_tx_counts);
    }

    /// Pre-reserve every flow's transmit queue and delivery buffers.
    ///
    /// The `drain_*_into` methods keep buffer capacity across drains, so
    /// one generous reservation up front keeps the steady-state loop free
    /// of the occasional high-water-mark regrowth a delivery burst would
    /// otherwise trigger. `pkts` sizes the per-flow delivery buffers; the
    /// transmit queue is reserved to its hard cap (`queue_cap_pbs`).
    pub fn reserve_flow_buffers(&mut self, pkts: usize) {
        let cap = self.cfg.queue_cap_pbs;
        for f in &mut self.flows {
            f.queue.reserve(cap);
            f.delivered.reserve(pkts);
            f.delivered_tx_counts.reserve(pkts);
            // Keep the hash tables compact: in-flight packets number in
            // the tens; an oversized sparse table would cost a cache miss
            // on every per-PB lookup.
            f.tx_counts.reserve(pkts.min(256));
            f.reassembler.reserve(pkts.min(256));
        }
        let (n_stations, n_carriers) = (self.stations.len(), self.n_carriers);
        self.scratch.reserve(n_stations, cap, n_carriers);
    }

    /// Broadcast reception counters per receiving station:
    /// (received, lost).
    pub fn broadcast_stats(&self, flow: usize) -> &HashMap<StationId, (u64, u64)> {
        &self.flows[flow].broadcast_rx
    }

    /// Packets dropped at the source queue of a flow.
    pub fn dropped(&self, flow: usize) -> u64 {
        self.flows[flow].dropped
    }

    /// Captured SoF delimiters (requires `cfg.sniffer`).
    pub fn sniffer_records(&self) -> &[SofRecord] {
        &self.sniffer
    }

    /// Drain captured SoF delimiters.
    pub fn take_sniffer_records(&mut self) -> Vec<SofRecord> {
        std::mem::take(&mut self.sniffer)
    }

    // ----- Simulation engine -----

    /// Run the simulation until `end`.
    pub fn run_until(&mut self, end: Time) {
        // One span per call, not per step: callers advance in chunks, so
        // this stays far off the per-step hot path while still
        // attributing the MAC loop's wall clock.
        let _span = obs::span::enter_at("mac.run_until", self.now);
        while self.now < end {
            self.step(end);
        }
    }

    /// If `t` falls inside a beacon region, the end of that region;
    /// otherwise `t`.
    pub(crate) fn skip_beacon_region(t: Time) -> Time {
        let offset = Duration(t.as_nanos() % BEACON_PERIOD.as_nanos());
        if offset < timing::BEACON_REGION {
            t + (timing::BEACON_REGION - offset)
        } else {
            t
        }
    }

    /// Time remaining until the next beacon region starts (from `t`, which
    /// must not be inside a region).
    pub(crate) fn time_to_beacon(t: Time) -> Duration {
        let offset = Duration(t.as_nanos() % BEACON_PERIOD.as_nanos());
        BEACON_PERIOD - offset
    }

    /// Pull packets from traffic sources into per-flow PB queues.
    fn refill_queues(&mut self) {
        let cap = self.cfg.queue_cap_pbs;
        let now = self.now;
        let mut took = false;
        for fs in &mut self.flows {
            loop {
                // Peek the next packet's size from the pattern so a packet
                // is only pulled when its PBs fit (backpressure, not loss:
                // the file-transfer source must deliver every byte).
                let pkt_bytes = fs.flow.source.pkt_bytes();
                if fs.queue.len() + pbs_for_packet(pkt_bytes) as usize > cap {
                    break;
                }
                match fs.flow.source.take(now) {
                    Some(pkt) => {
                        took = true;
                        for pb in QueuedPb::segments(pkt.seq, pkt.bytes, pkt.created) {
                            fs.queue.push_back(pb);
                        }
                    }
                    None => break,
                }
            }
        }
        if took {
            // A source's release clock advanced: the cached minimum
            // next-arrival is stale.
            self.arrival_cache = None;
        }
    }

    /// The earliest future packet arrival over all flows (full scan).
    pub(crate) fn next_arrival(&self) -> Option<Time> {
        self.flows
            .iter()
            .filter(|fs| fs.queue.is_empty())
            .filter_map(|fs| fs.flow.source.next_arrival(self.now))
            .min()
    }

    /// [`next_arrival`](Self::next_arrival) behind the idle-skip cache.
    /// Only called when every queue is empty (the idle-medium branch of
    /// `step`), so the scan covers all flows; the result is memoized when
    /// every source's arrival is time-independent and stays valid until a
    /// source hands out a packet. Saturated (and unfinished file-transfer)
    /// sources are `now`-dependent and never reach this path with an empty
    /// queue except under a pathologically small `queue_cap_pbs` — in that
    /// case the scan simply reruns each step, preserving behaviour.
    fn next_arrival_cached(&mut self) -> Option<Time> {
        if let Some(cached) = self.arrival_cache {
            self.metrics.idle_skips.inc();
            return cached;
        }
        // Only the (rare) rescan gets a span; the skip path above is the
        // analytic fast path the idle-skip optimisation exists for.
        let _span = obs::span::enter_at("mac.idle_rescan", self.now);
        self.metrics.idle_rescans.inc();
        let cacheable = self
            .flows
            .iter()
            .all(|fs| !fs.queue.is_empty() || fs.flow.source.arrival_is_static());
        let next = self.next_arrival();
        if cacheable {
            self.arrival_cache = Some(next);
        }
        next
    }

    /// One event step toward `end`. Crate-visible so the batch engine
    /// (`batch.rs`) can slice a run at epoch boundaries: `step(end)`
    /// depends only on the sim's state and the *final* horizon, so any
    /// slicing of the `while now < end` loop replays the exact same
    /// step sequence — the bit-identity the batch stepper is gated on.
    pub(crate) fn step(&mut self, end: Time) {
        self.metrics.steps.inc();
        self.metrics.events_fired.inc();
        self.now = Self::skip_beacon_region(self.now);
        if self.now >= end {
            self.now = end;
            return;
        }
        // Scripted outage (breaker trip): the medium is dead, so no
        // contention can resolve — fast-forward to the blackout's end
        // (or the horizon, whichever is first). Like the idle-advance
        // below, the jump depends only on sim state and the final
        // horizon, preserving the step-slicing bit-identity the batch
        // stepper relies on. Arrivals queue up meanwhile and drain on
        // the first post-outage step, modelling device buffers riding
        // through the trip.
        if let Some(outage) = &self.cfg.outage {
            if let Some(until) = outage.blackout_until(self.now) {
                self.obs.registry().counter("plc.mac.outage_skips").inc();
                self.now = until.min(end);
                return;
            }
        }
        self.refill_queues();
        // Detach the scratch from `self` so the pipeline can borrow both
        // mutably; restored below. `SimScratch::default()` is allocation
        // free, so the take itself never touches the heap.
        let mut scratch = std::mem::take(&mut self.scratch);
        self.step_contention(end, &mut scratch);
        self.scratch = scratch;
    }

    fn step_contention(&mut self, end: Time, scratch: &mut SimScratch) {
        if scratch.warm {
            self.metrics.scratch_reuses.inc();
        } else {
            scratch.warm = true;
        }
        // ready/contenders/winners were per-step Vec allocations.
        self.metrics.allocs_saved.add(3);
        // Stations with queued PBs contend; the PRS0/PRS1 slots resolve
        // priority first, so only the highest signalled class proceeds to
        // the backoff countdown.
        scratch.ready.clear();
        scratch.ready.extend((0..self.stations.len()).filter(|&i| {
            self.stations[i]
                .flows
                .iter()
                .any(|&f| !self.flows[f].queue.is_empty())
        }));
        let top_priority = scratch
            .ready
            .iter()
            .map(|&i| self.station_priority(i))
            .max()
            .unwrap_or(Priority::Ca1);
        scratch.contenders.clear();
        for &i in &scratch.ready {
            if self.station_priority(i) == top_priority {
                scratch.contenders.push(i);
            }
        }
        if scratch.contenders.is_empty() {
            // Idle medium: advance to the next arrival (or end). Any
            // beacon regions in between are empty and jumped over in one
            // `skip_beacon_region` of the target instant.
            let next = self.next_arrival_cached().unwrap_or(end).min(end);
            self.now = Self::skip_beacon_region(next.max(self.now + Duration::from_micros(1)));
            return;
        }
        self.metrics
            .csma_attempts
            .add(scratch.contenders.len() as u64);
        // Ensure backoff state.
        for &i in &scratch.contenders {
            if self.stations[i].backoff.is_none() {
                self.stations[i].backoff = Some(BackoffState::new(&mut self.rng));
            }
        }
        let m = scratch
            .contenders
            .iter()
            .map(|&i| {
                self.stations[i]
                    .backoff
                    .as_ref()
                    .expect("set above")
                    .backoff_slots()
            })
            .min()
            .expect("non-empty");
        let contention = timing::SLOT * (timing::PRS_SLOTS + m as u64);
        // Make sure the whole exchange fits before the next beacon region.
        let budget = Self::time_to_beacon(self.now);
        // `frame_exchange_overhead` already counts the PRS slots once;
        // adding `contention` (PRS + backoff) double-counts them, which is
        // deliberately conservative: a one-symbol frame must comfortably
        // fit before the beacon region.
        let min_needed =
            contention + timing::frame_exchange_overhead() + Duration::from_micros_f64(SYMBOL_US);
        if budget < min_needed {
            let _span = obs::span::enter_at("mac.beacon_region", self.now);
            self.now = Self::skip_beacon_region(self.now + budget);
            return;
        }
        self.now += contention;
        scratch.winners.clear();
        for &i in &scratch.contenders {
            if self.stations[i]
                .backoff
                .as_ref()
                .expect("set")
                .backoff_slots()
                == m
            {
                scratch.winners.push(i);
            }
        }
        for &i in &scratch.contenders {
            if !scratch.winners.contains(&i) {
                let st = self.stations[i].backoff.as_mut().expect("set");
                st.elapse_idle(m);
            }
        }
        // Frame-duration budget until the beacon region.
        let frame_budget = (Self::time_to_beacon(self.now)
            .saturating_sub(timing::frame_exchange_overhead()))
        .min(timing::MAX_FRAME);
        if scratch.winners.len() == 1 {
            let w = scratch.winners[0];
            self.transmit(w, frame_budget, None, scratch);
        } else {
            self.collide(frame_budget, scratch);
        }
        // Non-winning contenders sensed the medium busy: 1901 deferral
        // (skipped under the 802.11-style ablation).
        if !self.cfg.disable_deferral {
            for ci in 0..scratch.contenders.len() {
                let i = scratch.contenders[ci];
                if !scratch.winners.contains(&i) {
                    let st = self.stations[i].backoff.as_mut().expect("set");
                    st.on_busy(&mut self.rng);
                    self.metrics.csma_deferrals.inc();
                }
            }
        }
    }

    /// The highest priority among a station's backlogged flows.
    pub(crate) fn station_priority(&self, station: usize) -> Priority {
        self.stations[station]
            .flows
            .iter()
            .filter(|&&f| !self.flows[f].queue.is_empty())
            .map(|&f| self.flows[f].flow.priority)
            .max()
            .unwrap_or(Priority::Ca1)
    }

    /// Pick the next flow of a station: round robin over the non-empty
    /// queues of its current (highest) priority class.
    pub(crate) fn pick_flow(&mut self, station: usize) -> Option<usize> {
        let class = self.station_priority(station);
        let n = self.stations[station].flows.len();
        for k in 0..n {
            let at = (self.stations[station].rr + k) % n;
            let f = self.stations[station].flows[at];
            if !self.flows[f].queue.is_empty() && self.flows[f].flow.priority == class {
                self.stations[station].rr = (at + 1) % n;
                return Some(f);
            }
        }
        None
    }

    /// Build the frame a station would transmit now: drains PBs from the
    /// chosen flow into `scratch.tx_pbs` and copies the tone map into
    /// `scratch.tx_map`. Returns (flow, info bits/symbol, n_symbols,
    /// duration).
    fn build_frame(
        &mut self,
        station: usize,
        budget: Duration,
        scratch: &mut SimScratch,
    ) -> Option<(usize, f64, u64, Duration)> {
        let f = self.pick_flow(station)?;
        let is_broadcast = self.flows[f].flow.is_broadcast();
        let slot = self.now.tonemap_slot(TONEMAP_SLOTS);
        let mut use_robo = is_broadcast;
        let mut bits = self.robo_bits;
        if !is_broadcast {
            let src = self.idx(self.flows[f].flow.src);
            let dst = self.idx(self.flows[f].flow.dst);
            // The sender uses the tone map the destination last sent it;
            // before any estimation it falls back to ROBO (sound frames).
            let rx = self.rx_state(src, dst);
            if rx.estimator.last_regen().is_some() {
                let RxState {
                    estimator,
                    bits_memo,
                    ..
                } = rx;
                let map = &estimator.tonemaps().slots[slot];
                bits = match bits_memo[slot] {
                    Some((id, b)) if id == map.id => b,
                    _ => {
                        let b = map.info_bits_per_symbol();
                        bits_memo[slot] = Some((map.id, b));
                        b
                    }
                };
                scratch.tx_map.copy_from(map);
            } else {
                // No estimate yet: the link sounds with ROBO frames.
                self.metrics.sound_frames.inc();
                use_robo = true;
            }
        }
        if use_robo {
            scratch.tx_map.copy_from(&self.robo);
            bits = self.robo_bits;
        }
        if bits <= 0.0 {
            // Dead tone map: fall back to ROBO so the link can re-sound.
            self.metrics.sound_frames.inc();
            scratch.tx_map.copy_from(&self.robo);
            bits = self.robo_bits;
        }
        // The reference path clones a tone map per frame; this path copies
        // carriers into the reused scratch map instead.
        self.metrics.allocs_saved.inc();
        self.drain_pbs(f, bits, budget, scratch)
    }

    fn drain_pbs(
        &mut self,
        f: usize,
        info_bits: f64,
        budget: Duration,
        scratch: &mut SimScratch,
    ) -> Option<(usize, f64, u64, Duration)> {
        // Effective payload rate of the frame body: PB padding, partial
        // last symbols and slot truncation shave off a calibrated factor.
        let bits_per_sym = info_bits * self.cfg.frame_efficiency;
        let max_syms = (budget.as_micros_f64() / SYMBOL_US).floor() as u64;
        if max_syms == 0 || bits_per_sym <= 0.0 {
            return None;
        }
        let max_pbs = ((max_syms as f64 * bits_per_sym) / PB_WIRE_BITS as f64).floor() as usize;
        let take = self.flows[f].queue.len().min(max_pbs.max(1));
        scratch.tx_pbs.clear();
        scratch.tx_pbs.extend(self.flows[f].queue.drain(..take));
        // The reference path collects the drained PBs into a fresh Vec.
        self.metrics.allocs_saved.inc();
        let n_sym = ((scratch.tx_pbs.len() as u64 * PB_WIRE_BITS) as f64 / bits_per_sym)
            .ceil()
            .max(1.0)
            .min(max_syms as f64) as u64;
        let duration = Duration::from_micros_f64(n_sym as f64 * SYMBOL_US);
        Some((f, info_bits, n_sym, duration))
    }

    /// Successful (uncollided) transmission of one frame.
    /// `degraded_to` carries the capture-effect SINR when this frame is
    /// being decoded under interference.
    fn transmit(
        &mut self,
        station: usize,
        budget: Duration,
        degraded_to: Option<f64>,
        scratch: &mut SimScratch,
    ) {
        let Some((f, bits, n_sym, duration)) = self.build_frame(station, budget, scratch) else {
            // Nothing to send after all: burn a slot.
            self.now += timing::SLOT;
            return;
        };
        let slot = self.now.tonemap_slot(TONEMAP_SLOTS);
        let src = self.idx(self.flows[f].flow.src);
        let is_broadcast = self.flows[f].flow.is_broadcast();
        // Record per-packet participation (U-ETX numerator). A frame
        // carries a handful of distinct packets at most, so a linear scan
        // of the reused `seen` list replaces the per-frame HashSet.
        scratch.seen.clear();
        for i in 0..scratch.tx_pbs.len() {
            let seq = scratch.tx_pbs[i].packet_seq;
            if !scratch.seen.contains(&seq) {
                scratch.seen.push(seq);
                *self.flows[f].tx_counts.entry(seq).or_insert(0) += 1;
            }
        }
        self.metrics.allocs_saved.inc();
        if self.cfg.sniffer {
            self.sniffer.push(SofRecord {
                t: self.now,
                sof: SofDelimiter {
                    src: self.ids[src],
                    dst: self.flows[f].flow.dst,
                    // Exactly `ToneMap::ble()` with the memoized
                    // info-bits/symbol substituted for the recomputation.
                    ble_mbps: bits * (1.0 - scratch.tx_map.design_pberr) / SYMBOL_US,
                    tonemap_id: scratch.tx_map.id,
                    slot: slot as u8,
                    n_symbols: n_sym,
                },
            });
        }
        // Detach the frame buffers so `scratch` can be passed down into
        // the receive paths; restored (capacity intact) after delivery.
        let pbs = std::mem::take(&mut scratch.tx_pbs);
        let map = std::mem::take(&mut scratch.tx_map);
        if is_broadcast {
            self.receive_broadcast(f, src, &pbs, &map, slot, scratch);
        } else {
            let dst = self.idx(self.flows[f].flow.dst);
            self.receive_unicast(f, src, dst, &pbs, &map, slot, n_sym, degraded_to, scratch);
        }
        scratch.tx_pbs = pbs;
        scratch.tx_map = map;
        // Advance the medium: PRS and backoff already elapsed in step().
        self.now += timing::PREAMBLE
            + duration
            + timing::RIFS
            + timing::PREAMBLE
            + timing::CIFS
            + self.cfg.exchange_extra;
        if let Some(b) = self.stations[station].backoff.as_mut() {
            b.on_success(&mut self.rng);
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn receive_unicast(
        &mut self,
        f: usize,
        src: usize,
        dst: usize,
        pbs: &[QueuedPb],
        map: &ToneMap,
        slot: usize,
        n_sym: u64,
        degraded_to: Option<f64>,
        scratch: &mut SimScratch,
    ) {
        let pbs_len = pbs.len();
        let mut pberr = self.pberr_for(src, dst, slot, map);
        if degraded_to.is_some() {
            pberr = pberr.max(self.cfg.capture_pberr);
        }
        // Draw errors, SACK, selective retransmission.
        let now = self.now;
        scratch.failed.clear();
        let mut n_err = 0u64;
        {
            // Split borrow: the RNG and the flow state are disjoint
            // fields of `self`.
            let PlcSim {
                ref mut rng,
                ref mut flows,
                ..
            } = *self;
            let fs = &mut flows[f];
            // Accepted PBs of one packet are accumulated into a bitmask
            // and handed to the reassembler per run: one map probe per
            // packet instead of one per PB. The Bernoulli draws stay
            // per-PB and in frame order, so the RNG stream and the
            // completion order are identical to the reference path.
            let mut run: Option<(u64, u32, Time, u64)> = None;
            for pb in pbs {
                if Distributions::bernoulli(rng, pberr) {
                    scratch.failed.push(*pb);
                    n_err += 1;
                    continue;
                }
                if pb.of > 64 {
                    // Oversized packets (no workload produces them) use
                    // the per-PB path.
                    if let Some((seq, of, created, mask)) = run.take() {
                        fs.reassembler.accept_run(seq, of, created, mask, now);
                    }
                    fs.reassembler.accept(*pb, now);
                    continue;
                }
                let bit = 1u64 << pb.index.min(63);
                match run {
                    Some((seq, _, _, ref mut mask)) if seq == pb.packet_seq => {
                        *mask |= bit;
                    }
                    _ => {
                        if let Some((seq, of, created, mask)) = run.take() {
                            fs.reassembler.accept_run(seq, of, created, mask, now);
                        }
                        run = Some((pb.packet_seq, pb.of, pb.created, bit));
                    }
                }
            }
            if let Some((seq, of, created, mask)) = run.take() {
                fs.reassembler.accept_run(seq, of, created, mask, now);
            }
        }
        let n_total = pbs_len as u64;
        // Corrupted PBs go back to the head of the queue, in order. Their
        // selective retransmission is what the SACK counter measures.
        self.metrics.sack_retrans_pbs.add(n_err);
        for i in (0..scratch.failed.len()).rev() {
            self.flows[f].queue.push_front(scratch.failed[i]);
        }
        // The reference path allocates a fresh failed-PB Vec per frame.
        self.metrics.allocs_saved.inc();
        // Completed packets (drained in completion order, no Vec churn).
        {
            let FlowState {
                reassembler,
                tx_counts,
                delivered,
                delivered_tx_counts,
                ..
            } = &mut self.flows[f];
            reassembler.drain_completed_with(|done| {
                if let Some(txc) = tx_counts.remove(&done.seq) {
                    delivered_tx_counts.push(txc);
                }
                delivered.push(done);
            });
        }
        // Estimation pipeline at the receiver.
        let gap = self.cfg.observe_min_gap;
        let refresh_needed = {
            let rx = self.rx_state(src, dst);
            rx.window.0 += n_total;
            rx.window.1 += n_err;
            rx.ampstat.0 += n_total;
            rx.ampstat.1 += n_err;
            rx.cumulative.0 += n_total;
            rx.cumulative.1 += n_err;
            rx.last_observe
                .is_none_or(|t| now.saturating_since(t) >= gap)
        };
        if refresh_needed {
            self.refresh_spectrum(src, dst, slot);
            let cached = &self
                .spectra
                .get(&(src, dst, slot as u8))
                .expect("just refreshed")
                .spec;
            // Degraded under capture: the receiver cannot tell collision
            // noise from channel noise — §8.2. Only that path copies, and
            // it copies into the reused scratch spectrum.
            let spec = match degraded_to {
                Some(sinr) => {
                    scratch.degraded.snr_db.clear();
                    scratch
                        .degraded
                        .snr_db
                        .extend(cached.snr_db.iter().map(|s| s.min(sinr)));
                    self.metrics.allocs_saved.inc();
                    &scratch.degraded
                }
                None => cached,
            };
            let rx = self.rx.get_mut(&(src, dst)).expect("created above");
            rx.estimator
                .observe(&mut self.rng, slot, spec, n_sym, pbs_len as u32);
            rx.last_observe = Some(now);
        }
        // Tone-map maintenance.
        let rx = self.rx.get_mut(&(src, dst)).expect("created above");
        let recent = if rx.window.0 >= 20 {
            rx.window.1 as f64 / rx.window.0 as f64
        } else {
            0.0
        };
        if rx.estimator.maybe_regenerate(now, recent) {
            rx.window = (0, 0);
            self.metrics.tonemap_updates.inc();
            let (src_id, dst_id) = (self.ids[src], self.ids[dst]);
            let ble = self.rx[&(src, dst)].estimator.ble_avg();
            self.obs.emit(now, "plc.mac", "tonemap_update", || {
                vec![
                    ("src".to_string(), src_id.into()),
                    ("dst".to_string(), dst_id.into()),
                    ("recent_pberr".to_string(), recent.into()),
                    ("ble_mbps".to_string(), ble.into()),
                ]
            });
        }
    }

    fn receive_broadcast(
        &mut self,
        f: usize,
        src: usize,
        pbs: &[QueuedPb],
        map: &ToneMap,
        slot: usize,
        scratch: &mut SimScratch,
    ) {
        // Every other connected station attempts reception; a packet is
        // lost for a receiver when any of its PBs fails. No SACK, no
        // retransmission (paper §8.1).
        scratch.receivers.clear();
        scratch.receivers.extend(
            (0..self.stations.len())
                .filter(|&r| r != src && self.channels.contains_key(&Self::pair(src, r))),
        );
        // Broadcast frames here carry whole packets (probes are single
        // packets). A packet's PBs are queued contiguously, so grouping
        // by packet is a run-length scan over the frame — and, unlike the
        // HashMap grouping it replaces, the group order is deterministic.
        scratch.bcast_runs.clear();
        let mut last_seq = None;
        for pb in pbs {
            match last_seq {
                Some(seq) if seq == pb.packet_seq => {
                    *scratch.bcast_runs.last_mut().expect("pushed below") += 1;
                }
                _ => {
                    last_seq = Some(pb.packet_seq);
                    scratch.bcast_runs.push(1u32);
                }
            }
        }
        // Receiver list + packet-group map of the reference path.
        self.metrics.allocs_saved.add(2);
        for ri in 0..scratch.receivers.len() {
            let r = scratch.receivers[ri];
            // Memoized per (link, slot, tone-map id): broadcast frames all
            // use the ROBO map, so this is one pb_error_prob per refresh.
            let pberr = self.pberr_for(src, r, slot, map);
            let mut lost_pkts = 0u64;
            let mut ok_pkts = 0u64;
            for gi in 0..scratch.bcast_runs.len() {
                let n_pbs = scratch.bcast_runs[gi];
                let mut ok = true;
                for _ in 0..n_pbs {
                    if Distributions::bernoulli(&mut self.rng, pberr) {
                        ok = false;
                    }
                }
                if ok {
                    ok_pkts += 1;
                } else {
                    lost_pkts += 1;
                }
            }
            let entry = self.flows[f]
                .broadcast_rx
                .entry(self.ids[r])
                .or_insert((0, 0));
            entry.0 += ok_pkts;
            entry.1 += lost_pkts;
        }
    }

    /// Two or more stations transmitted in the same slot. The winner set
    /// is read from `scratch.winners`.
    fn collide(&mut self, budget: Duration, scratch: &mut SimScratch) {
        self.metrics.csma_collisions.inc();
        let t = self.now;
        let n = scratch.winners.len();
        self.obs.emit(t, "plc.mac", "collision", || {
            vec![("stations".to_string(), n.into())]
        });
        // Build all frames first (drains queues) into the pooled frame
        // list: each slot's PB Vec and tone map are recycled via swap.
        scratch.n_built = 0;
        for wi in 0..scratch.winners.len() {
            let w = scratch.winners[wi];
            if let Some((f, bits, n_sym, dur)) = self.build_frame(w, budget, scratch) {
                if scratch.built.len() == scratch.n_built {
                    scratch.built.push(BuiltFrame::default());
                } else {
                    // PB list + tone map reused from the pool.
                    self.metrics.allocs_saved.add(2);
                }
                let entry = &mut scratch.built[scratch.n_built];
                std::mem::swap(&mut entry.pbs, &mut scratch.tx_pbs);
                std::mem::swap(&mut entry.map, &mut scratch.tx_map);
                entry.station = w;
                entry.flow = f;
                entry.bits = bits;
                entry.n_sym = n_sym;
                entry.dur = dur;
                scratch.n_built += 1;
            }
        }
        if scratch.n_built == 0 {
            self.now += timing::SLOT;
            return;
        }
        // Detach the pool so `scratch` can flow into the receive paths.
        let built = std::mem::take(&mut scratch.built);
        let n_built = scratch.n_built;
        let max_dur = built[..n_built]
            .iter()
            .map(|b| b.dur)
            .max()
            .expect("non-empty");
        let longest = built[..n_built]
            .iter()
            .map(|b| b.dur.as_nanos())
            .max()
            .expect("non-empty");
        let now = self.now;
        for b in &built[..n_built] {
            let (w, f) = (b.station, b.flow);
            // U-ETX accounting: this was a (failed or captured) attempt.
            scratch.seen.clear();
            for pb in &b.pbs {
                if !scratch.seen.contains(&pb.packet_seq) {
                    scratch.seen.push(pb.packet_seq);
                    *self.flows[f].tx_counts.entry(pb.packet_seq).or_insert(0) += 1;
                }
            }
            self.metrics.allocs_saved.inc();
            let is_broadcast = self.flows[f].flow.is_broadcast();
            let captured = !is_broadcast && self.cfg.capture_effect && {
                let src = self.idx(self.flows[f].flow.src);
                let dst = self.idx(self.flows[f].flow.dst);
                // Interferer must dwarf this frame in duration, and the
                // signal must dominate the interference at the receiver.
                let dominated =
                    longest as f64 >= self.cfg.capture_duration_ratio * b.dur.as_nanos() as f64;
                dominated && self.capture_sinr(src, dst, w) > self.cfg.capture_sinr_db
            };
            if captured {
                let src = self.idx(self.flows[f].flow.src);
                let dst = self.idx(self.flows[f].flow.dst);
                let sinr = self.capture_sinr(src, dst, w);
                let slot = now.tonemap_slot(TONEMAP_SLOTS);
                if self.cfg.sniffer {
                    self.sniffer.push(SofRecord {
                        t: now,
                        sof: SofDelimiter {
                            src: self.ids[src],
                            dst: self.flows[f].flow.dst,
                            ble_mbps: b.bits * (1.0 - b.map.design_pberr) / SYMBOL_US,
                            tonemap_id: b.map.id,
                            slot: slot as u8,
                            n_symbols: b.n_sym,
                        },
                    });
                }
                self.receive_unicast(
                    f,
                    src,
                    dst,
                    &b.pbs,
                    &b.map,
                    slot,
                    b.n_sym,
                    Some(sinr),
                    scratch,
                );
            } else {
                // Frame lost entirely: PBs return to the queue head.
                for pb in b.pbs.iter().rev() {
                    self.flows[f].queue.push_front(*pb);
                }
            }
            if let Some(bo) = self.stations[w].backoff.as_mut() {
                bo.on_collision(&mut self.rng);
            }
        }
        scratch.built = built;
        self.now += timing::PREAMBLE
            + max_dur
            + timing::RIFS
            + timing::PREAMBLE
            + timing::CIFS
            + self.cfg.exchange_extra;
    }

    /// Signal-to-interference ratio (dB) at the receiver `dst` of the link
    /// `src → dst`, under interference from station `interferer != src`'s
    /// co-channel transmission. Uses mean spectra as a wideband proxy.
    ///
    /// The strongest-interferer scan is memoized per (receiver, slot) in
    /// [`CaptureEntry`]: the reference path recomputes every co-channel
    /// mean on every collision; here a rebuild queries the exact same
    /// spectra at the exact same instant (so refresh timing — and thus
    /// every downstream bit — is unchanged) and then answers from the
    /// top-two means until a refresh anywhere, or a due refresh within the
    /// group, invalidates it.
    pub(crate) fn capture_sinr(&mut self, src: usize, dst: usize, _this_winner: usize) -> f64 {
        let now = self.now;
        let slot = now.tonemap_slot(TONEMAP_SLOTS);
        let signal = self.spectrum_mean(src, dst, slot);
        let entry = self.capture_cache[dst][slot];
        let fresh = entry.valid
            && entry.gen == self.spectra_gen
            && now.saturating_since(entry.min_at) < self.cfg.spectrum_refresh;
        let entry = if fresh {
            entry
        } else {
            // Rebuild: visit every station with a channel to `dst`, in
            // ascending order, exactly as the unmemoized scan does. Any
            // stale spectrum refreshes here — at the same time it would
            // have refreshed in the reference scan.
            let mut e = CaptureEntry {
                gen: 0,
                min_at: now,
                ..CaptureEntry::default()
            };
            for o in 0..self.stations.len() {
                if o == dst || !self.channels.contains_key(&Self::pair(o, dst)) {
                    continue;
                }
                let m = self.spectrum_mean(o, dst, slot);
                if m > e.top1 {
                    e.top2 = e.top1;
                    e.top1 = m;
                    e.top1_src = o;
                } else if m > e.top2 {
                    e.top2 = m;
                }
                let at = self.spectra[&(o, dst, slot as u8)].at;
                e.min_at = e.min_at.min(at);
            }
            // Stamp with the post-rebuild generation: the rebuild's own
            // refreshes must not invalidate it.
            e.gen = self.spectra_gen;
            e.valid = true;
            self.capture_cache[dst][slot] = e;
            e
        };
        let interference = if entry.top1_src == src {
            entry.top2
        } else {
            entry.top1
        };
        if interference.is_finite() {
            signal - interference
        } else {
            // No modelled interference path: effectively clean capture.
            40.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::appliance::ApplianceKind;
    use simnet::schedule::Schedule;
    use simnet::traffic::TrafficPattern;

    /// Small test grid: a bus with four outlets and mild loads.
    fn grid4() -> (Grid, Vec<(StationId, NodeId)>) {
        let mut g = Grid::new();
        let j0 = g.add_junction("j0");
        let j1 = g.add_junction("j1");
        let j2 = g.add_junction("j2");
        g.connect(j0, j1, 12.0);
        g.connect(j1, j2, 12.0);
        let mut outlets = Vec::new();
        for (i, j) in [(0u16, j0), (1, j0), (2, j1), (3, j2)] {
            let o = g.add_outlet(format!("s{i}"));
            g.connect(j, o, 3.0 + i as f64);
            outlets.push((i, o));
        }
        // Two appliances to give the channels texture.
        let oa = g.add_outlet("pc");
        g.connect(j1, oa, 2.0);
        g.attach(oa, ApplianceKind::DesktopPc, Schedule::AlwaysOn);
        let ob = g.add_outlet("printer");
        g.connect(j2, ob, 2.0);
        g.attach(ob, ApplianceKind::LaserPrinter, Schedule::AlwaysOn);
        (g, outlets)
    }

    fn sim(cfg: SimConfig) -> PlcSim {
        let (g, outlets) = grid4();
        PlcSim::new(cfg, &g, &outlets)
    }

    #[test]
    fn saturated_flow_delivers_packets() {
        let mut s = sim(SimConfig::default());
        let f = s.add_flow(Flow::unicast(0, 2, TrafficSource::iperf_saturated()));
        s.run_until(Time::from_secs(2));
        let delivered = s.take_delivered(f);
        assert!(
            delivered.len() > 1000,
            "only {} packets in 2 s",
            delivered.len()
        );
        // Sequence numbers are delivered (mostly) in order and unique.
        let mut seqs: Vec<u64> = delivered.iter().map(|p| p.seq).collect();
        let len_before = seqs.len();
        seqs.dedup();
        assert_eq!(seqs.len(), len_before, "duplicate deliveries");
    }

    #[test]
    fn throughput_is_in_a_sane_hpav_range() {
        let mut s = sim(SimConfig::default());
        let f = s.add_flow(Flow::unicast(0, 1, TrafficSource::iperf_saturated()));
        s.run_until(Time::from_secs(3));
        let delivered = s.take_delivered(f);
        let bytes: u64 = delivered.len() as u64 * 1500;
        let mbps = bytes as f64 * 8.0 / 3.0 / 1e6;
        // Station 0 and 1 share an outlet junction: a very good link.
        // HPAV UDP tops out around 80-90 Mb/s in the paper.
        assert!((30.0..100.0).contains(&mbps), "throughput={mbps} Mb/s");
    }

    #[test]
    fn ble_rises_from_robo_with_traffic() {
        let mut s = sim(SimConfig::default());
        let robo = s.int6krate(0, 2);
        let _f = s.add_flow(Flow::unicast(0, 2, TrafficSource::iperf_saturated()));
        s.run_until(Time::from_secs(2));
        let after = s.int6krate(0, 2);
        assert!(robo < 7.0, "initial BLE should be ROBO: {robo}");
        assert!(after > 3.0 * robo, "BLE should grow: {after} vs {robo}");
    }

    #[test]
    fn outage_blacks_out_the_medium_then_recovers() {
        use electrifi_faults::OutageProfile;
        // Outage covering [1s, 2s): deliveries must stall inside the
        // window and resume after it.
        let cfg = SimConfig {
            outage: Some(OutageProfile {
                windows: vec![(Time::from_secs(1).as_nanos(), Time::from_secs(2).as_nanos())],
            }),
            ..SimConfig::default()
        };
        let mut s = sim(cfg);
        let f = s.add_flow(Flow::unicast(0, 2, TrafficSource::iperf_saturated()));
        s.run_until(Time::from_secs(1));
        let before = s.take_delivered(f).len();
        s.run_until(Time::from_secs(2));
        let during = s.take_delivered(f).len();
        s.run_until(Time::from_secs(3));
        let after = s.take_delivered(f).len();
        assert!(before > 500, "pre-outage deliveries: {before}");
        assert_eq!(during, 0, "medium must be dead during the outage");
        assert!(after > 500, "post-outage deliveries: {after}");
    }

    #[test]
    fn outage_fast_forward_is_horizon_independent() {
        use electrifi_faults::OutageProfile;
        // Slicing run_until across an outage window must land on the
        // same state as running straight through (the batch stepper's
        // bit-identity discipline).
        let mk = || {
            let cfg = SimConfig {
                outage: Some(OutageProfile {
                    windows: vec![(
                        Time::from_millis(500).as_nanos(),
                        Time::from_millis(1500).as_nanos(),
                    )],
                }),
                ..SimConfig::default()
            };
            let mut s = sim(cfg);
            s.add_flow(Flow::unicast(0, 2, TrafficSource::iperf_saturated()));
            s
        };
        let mut straight = mk();
        straight.run_until(Time::from_secs(3));
        let mut sliced = mk();
        for ms in [400u64, 700, 900, 1499, 1501, 2200, 3000] {
            sliced.run_until(Time::from_millis(ms));
        }
        assert_eq!(straight.now(), sliced.now());
        assert_eq!(
            straight.take_delivered(0).len(),
            sliced.take_delivered(0).len()
        );
    }

    #[test]
    fn two_saturated_flows_share_the_medium() {
        let mut s = sim(SimConfig::default());
        let f1 = s.add_flow(Flow::unicast(0, 2, TrafficSource::iperf_saturated()));
        let f2 = s.add_flow(Flow::unicast(1, 3, TrafficSource::iperf_saturated()));
        s.run_until(Time::from_secs(3));
        let d1 = s.take_delivered(f1).len() as f64;
        let d2 = s.take_delivered(f2).len() as f64;
        assert!(d1 > 100.0 && d2 > 100.0, "d1={d1} d2={d2}");
        // Long-run shares are within a factor ~3 (1901 is short-term
        // unfair but long-term roughly fair for equal-quality links).
        let ratio = d1.max(d2) / d1.min(d2);
        assert!(ratio < 3.0, "ratio={ratio}");
    }

    #[test]
    fn cbr_flow_respects_its_rate() {
        let mut s = sim(SimConfig::default());
        let f = s.add_flow(Flow::unicast(0, 3, TrafficSource::probe_150kbps()));
        s.run_until(Time::from_secs(10));
        let delivered = s.take_delivered(f);
        let rate = delivered.len() as f64 * 1500.0 * 8.0 / 10.0;
        assert!(
            (rate - 150_000.0).abs() / 150_000.0 < 0.1,
            "rate={rate} b/s"
        );
    }

    #[test]
    fn sniffer_captures_sof_with_slot_periodicity() {
        let cfg = SimConfig {
            sniffer: true,
            ..SimConfig::default()
        };
        let mut s = sim(cfg);
        let _f = s.add_flow(Flow::unicast(0, 2, TrafficSource::iperf_saturated()));
        s.run_until(Time::from_secs(1));
        let recs = s.sniffer_records();
        assert!(recs.len() > 100, "{} records", recs.len());
        // Slots must cycle 0..6 and match the capture timestamp.
        for r in recs {
            assert_eq!(r.sof.slot as usize, r.t.tonemap_slot(TONEMAP_SLOTS));
            assert!(r.sof.ble_mbps > 0.0);
        }
    }

    #[test]
    fn tx_counts_track_retransmissions() {
        let mut s = sim(SimConfig::default());
        let f = s.add_flow(Flow::unicast(0, 3, TrafficSource::probe_150kbps()));
        s.run_until(Time::from_secs(20));
        let counts = s.take_tx_counts(f);
        assert!(!counts.is_empty());
        // Every delivered packet needed at least one frame.
        assert!(counts.iter().all(|&c| c >= 1));
    }

    #[test]
    fn broadcast_reaches_all_stations_with_low_loss() {
        let mut s = sim(SimConfig::default());
        let f = s.add_flow(Flow::broadcast(
            0,
            TrafficSource::new(
                TrafficPattern::Cbr {
                    rate_bps: 120_000.0,
                    pkt_bytes: 1500,
                },
                Time::ZERO,
            ),
        ));
        s.run_until(Time::from_secs(10));
        let stats = s.broadcast_stats(f);
        assert_eq!(stats.len(), 3, "three receivers");
        for (recv, (ok, lost)) in stats {
            assert!(*ok > 50, "receiver {recv}: ok={ok}");
            let loss = *lost as f64 / (*ok + *lost) as f64;
            // ROBO modulation: losses should be small on this testbed.
            assert!(loss < 0.2, "receiver {recv}: loss={loss}");
        }
    }

    #[test]
    fn ampstat_window_drains() {
        let mut s = sim(SimConfig::default());
        let _f = s.add_flow(Flow::unicast(0, 2, TrafficSource::iperf_saturated()));
        s.run_until(Time::from_secs(1));
        let first = s.ampstat(0, 2);
        assert!(first.is_some());
        // Immediately after draining, no new PBs: None.
        let second = s.ampstat(0, 2);
        assert!(second.is_none());
        let (total, err) = s.pb_counters(0, 2);
        assert!(total > 0);
        assert!(err <= total);
    }

    #[test]
    fn reset_device_drops_estimates_to_robo() {
        let mut s = sim(SimConfig::default());
        let _f = s.add_flow(Flow::unicast(0, 2, TrafficSource::iperf_saturated()));
        s.run_until(Time::from_secs(2));
        assert!(s.int6krate(0, 2) > 20.0);
        s.reset_device(2);
        let robo = ToneMap::robo(PlcTechnology::HpAv.carrier_count()).ble();
        assert!((s.int6krate(0, 2) - robo).abs() < 1e-9);
    }

    #[test]
    fn simulation_is_deterministic() {
        let run = || {
            let mut s = sim(SimConfig::default());
            let f = s.add_flow(Flow::unicast(0, 3, TrafficSource::iperf_saturated()));
            s.run_until(Time::from_millis(500));
            (s.take_delivered(f).len(), s.int6krate(0, 3))
        };
        let (a1, b1) = run();
        let (a2, b2) = run();
        assert_eq!(a1, a2);
        assert_eq!(b1, b2);
    }

    #[test]
    fn arrival_cache_serves_idle_steps_and_invalidates_on_take() {
        // Two slow CBR probes: the medium is idle almost always, so
        // fine-grained stepping re-consults the min next-arrival between
        // every chunk boundary. Static (CBR) sources make it cacheable.
        let mut s = sim(SimConfig::default());
        let f = s.add_flow(Flow::unicast(0, 3, TrafficSource::probe_150kbps()));
        let _g = s.add_flow(Flow::unicast(1, 2, TrafficSource::probe_150kbps()));
        let mut t = Time::ZERO;
        while t < Time::from_secs(2) {
            t += Duration::from_micros(500);
            s.run_until(t);
        }
        let skips = s.metrics.idle_skips.get();
        let rescans = s.metrics.idle_rescans.get();
        assert!(skips > 0, "cache never hit (skips={skips})");
        // Every packet release dirties the cache, so there must be at
        // least one rescan per delivered packet — but far fewer rescans
        // than skips on a mostly-idle medium probed at 500 µs.
        let delivered = s.take_delivered(f).len() as u64;
        assert!(rescans >= delivered, "rescans={rescans} < pkts={delivered}");
        assert!(
            skips > 5 * rescans,
            "idle-skip hit rate too low: {skips} skips vs {rescans} rescans"
        );
    }

    #[test]
    fn arrival_cache_invalidated_by_add_flow() {
        let mut s = sim(SimConfig::default());
        let _f = s.add_flow(Flow::unicast(
            0,
            3,
            TrafficSource::new(
                TrafficPattern::Cbr {
                    rate_bps: 1_000.0,
                    pkt_bytes: 150,
                },
                Time::from_secs(5),
            ),
        ));
        // Prime the cache: nothing due before 5 s, so idle steps memoize.
        s.run_until(Time::from_millis(100));
        assert!(s.arrival_cache.is_some(), "cache should be primed");
        // A new flow with an earlier start must dirty the cache, or the
        // sim would sleep through its arrivals.
        let g = s.add_flow(Flow::unicast(1, 2, TrafficSource::probe_150kbps()));
        assert!(s.arrival_cache.is_none(), "add_flow must invalidate");
        s.run_until(Time::from_secs(2));
        assert!(
            !s.take_delivered(g).is_empty(),
            "the late-added flow must be served long before the first \
             flow's start time"
        );
    }

    #[test]
    fn saturated_sources_are_never_cached() {
        // A saturated source's next arrival is `now`-dependent; the cache
        // must refuse to memoize it even when its queue drains (forced
        // here by a tiny queue cap that cannot hold one packet's PBs).
        let cfg = SimConfig {
            queue_cap_pbs: 1,
            ..SimConfig::default()
        };
        let mut s = sim(cfg);
        let _f = s.add_flow(Flow::unicast(0, 2, TrafficSource::iperf_saturated()));
        s.run_until(Time::from_millis(50));
        assert!(
            s.arrival_cache.is_none(),
            "now-dependent arrivals must not be memoized"
        );
    }

    #[test]
    fn optimized_and_reference_steppers_agree_exactly() {
        // The in-crate smoke version of the differential suite in
        // tests/bit_identity.rs: same seed, same topology, saturated +
        // CBR mix, byte-compared outputs.
        let build = || {
            let mut s = sim(SimConfig {
                sniffer: true,
                ..SimConfig::default()
            });
            let f = s.add_flow(Flow::unicast(0, 2, TrafficSource::iperf_saturated()));
            let g = s.add_flow(Flow::unicast(1, 3, TrafficSource::probe_150kbps()));
            (s, f, g)
        };
        let (mut opt, f1, g1) = build();
        let (mut refr, f2, g2) = build();
        opt.run_until(Time::from_millis(700));
        refr.run_until_reference(Time::from_millis(700));
        assert_eq!(opt.now(), refr.now(), "clocks diverged");
        let (d1, d2) = (opt.take_delivered(f1), refr.take_delivered(f2));
        assert_eq!(d1.len(), d2.len());
        for (a, b) in d1.iter().zip(&d2) {
            assert_eq!(
                (a.seq, a.created, a.delivered),
                (b.seq, b.created, b.delivered)
            );
        }
        assert_eq!(opt.take_tx_counts(g1), refr.take_tx_counts(g2));
        assert_eq!(
            opt.int6krate(0, 2).to_bits(),
            refr.int6krate(0, 2).to_bits(),
            "BLE estimate diverged"
        );
        assert_eq!(opt.pb_counters(0, 2), refr.pb_counters(0, 2));
        let (r1, r2) = (opt.sniffer_records(), refr.sniffer_records());
        assert_eq!(r1.len(), r2.len(), "sniffer capture count diverged");
        for (a, b) in r1.iter().zip(r2) {
            assert_eq!(a.t, b.t);
            assert_eq!(a.sof.ble_mbps.to_bits(), b.sof.ble_mbps.to_bits());
            assert_eq!(a.sof.n_symbols, b.sof.n_symbols);
            assert_eq!(a.sof.tonemap_id, b.sof.tonemap_id);
        }
    }

    #[test]
    fn beacon_regions_are_skipped() {
        // The helper must push any time inside [k*40ms, k*40ms+3.2ms) out.
        let inside = Time::from_millis(40) + Duration::from_micros(100);
        let out = PlcSim::skip_beacon_region(inside);
        assert_eq!(out, Time::from_millis(40) + timing::BEACON_REGION);
        let clean = Time::from_millis(40) + Duration::from_millis(10);
        assert_eq!(PlcSim::skip_beacon_region(clean), clean);
    }

    #[test]
    fn higher_priority_class_dominates_contention() {
        // A CA2 stream against a CA1 saturated flow: priority resolution
        // gives the CA2 stream near-exclusive access while it has frames.
        let mut s = sim(SimConfig::default());
        let hi = s.add_flow(
            Flow::unicast(
                0,
                2,
                TrafficSource::new(
                    TrafficPattern::Cbr {
                        rate_bps: 10_000_000.0, // 10 Mb/s HD stream
                        pkt_bytes: 1500,
                    },
                    Time::ZERO,
                ),
            )
            .with_priority(Priority::Ca2),
        );
        let lo = s.add_flow(Flow::unicast(1, 3, TrafficSource::iperf_saturated()));
        s.run_until(Time::from_secs(3));
        let hi_rate = s.take_delivered(hi).len() as f64 * 1500.0 * 8.0 / 3.0 / 1e6;
        let lo_rate = s.take_delivered(lo).len() as f64 * 1500.0 * 8.0 / 3.0 / 1e6;
        // The CA2 stream holds its rate despite the saturated CA1
        // competitor (whose long frames it must still wait out between
        // wins); the CA1 flow picks up the leftovers.
        assert!((hi_rate - 10.0).abs() < 2.0, "hi_rate={hi_rate}");
        assert!(lo_rate > 1.0, "lo_rate={lo_rate}");
    }

    #[test]
    fn priority_ordering_is_total() {
        assert!(Priority::Ca3 > Priority::Ca2);
        assert!(Priority::Ca2 > Priority::Ca1);
        assert!(Priority::Ca1 > Priority::Ca0);
    }

    #[test]
    fn file_transfer_completes_and_stops() {
        let mut s = sim(SimConfig::default());
        let f = s.add_flow(Flow::unicast(
            0,
            2,
            TrafficSource::new(
                TrafficPattern::FileTransfer {
                    total_bytes: 1_500_000,
                    pkt_bytes: 1500,
                },
                Time::ZERO,
            ),
        ));
        s.run_until(Time::from_secs(30));
        let delivered = s.take_delivered(f);
        assert_eq!(delivered.len(), 1000, "whole file must arrive");
        let completion = delivered.iter().map(|p| p.delivered).max().unwrap();
        assert!(completion < Time::from_secs(10), "completion={completion}");
    }
}
