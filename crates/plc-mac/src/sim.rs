//! Event-driven simulation of one PLC contention domain.
//!
//! A [`PlcSim`] hosts a set of stations plugged into outlets of an
//! electrical [`Grid`], the physical channels between every connected
//! pair, traffic flows, and the full 1901 MAC: CSMA/CA with deferral
//! counters, priority-resolution slots, frame aggregation against the
//! current tone map, selective acknowledgments, tone-map
//! estimation/exchange, beacons, ROBO broadcast, collisions with an
//! optional capture effect, and a SoF sniffer.
//!
//! Everything the paper measures at the MAC level comes out of this
//! simulation: per-frame SoF captures (Fig. 9), saturation throughput
//! (Figs. 3/6/7/15), estimated-capacity convergence (Figs. 16-18), U-ETX
//! retransmission counts (Fig. 22), broadcast loss rates (Fig. 21), and
//! the background-traffic sensitivity of link metrics (Figs. 23-24).

use crate::csma::BackoffState;
use crate::frame::{SofDelimiter, SofRecord};
use crate::pb::{pbs_for_packet, CompletedPacket, QueuedPb, Reassembler, PB_WIRE_BITS};
use crate::timing;
use plc_phy::carrier::SYMBOL_US;
use plc_phy::channel::{LinkDir, PlcChannelParams};
use plc_phy::error::pb_error_prob;
use plc_phy::estimation::EstimatorConfig;
use plc_phy::tonemap::{ToneMap, TONEMAP_SLOTS};
use plc_phy::{ChannelEstimator, PlcChannel, PlcTechnology, SnrSpectrum};
use rand::rngs::StdRng;
use rand::SeedableRng;
use simnet::grid::{Grid, NodeId};
use simnet::obs::{Counter, Obs, Registry};
use simnet::rng::Distributions;
use simnet::time::{Duration, Time, BEACON_PERIOD};
use simnet::traffic::TrafficSource;
use std::collections::HashMap;

/// Shared handles into the metrics registry for the MAC's hot paths.
/// Registered once per simulation; incrementing is a cheap shared-cell
/// add, and none of it feeds back into simulation state (observation is
/// inert — see `simnet::obs`).
struct MacMetrics {
    steps: Counter,
    events_fired: Counter,
    csma_attempts: Counter,
    csma_collisions: Counter,
    csma_deferrals: Counter,
    sack_retrans_pbs: Counter,
    tonemap_updates: Counter,
    sound_frames: Counter,
    spec_hits: Counter,
    spec_refreshes: Counter,
}

impl MacMetrics {
    fn register(reg: &Registry) -> Self {
        MacMetrics {
            steps: reg.counter("plc.mac.steps"),
            events_fired: reg.counter("sim.events_fired"),
            csma_attempts: reg.counter("plc.mac.csma.attempts"),
            csma_collisions: reg.counter("plc.mac.csma.collisions"),
            csma_deferrals: reg.counter("plc.mac.csma.deferrals"),
            sack_retrans_pbs: reg.counter("plc.mac.sack.retrans_pbs"),
            tonemap_updates: reg.counter("plc.mac.tonemap.updates"),
            sound_frames: reg.counter("plc.mac.sound_frames"),
            spec_hits: reg.counter("plc.mac.spectrum_hits"),
            spec_refreshes: reg.counter("plc.mac.spectrum_refreshes"),
        }
    }
}

/// Station identifier within a simulation (the paper numbers its stations
/// 0–18).
pub type StationId = u16;

/// Destination marker for broadcast flows.
pub const BROADCAST: StationId = StationId::MAX;

/// 1901 channel-access priority classes, resolved in the PRS0/PRS1 slots
/// that precede every contention period: when any station signals a
/// higher class, lower-class stations sit the contention out. Best-effort
/// data uses CA1; latency-sensitive streams CA2/CA3.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize, serde::Deserialize,
)]
pub enum Priority {
    /// Background.
    Ca0,
    /// Best effort (default for data).
    Ca1,
    /// Video/voice.
    Ca2,
    /// Network-critical.
    Ca3,
}

/// Simulation configuration.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Master RNG seed.
    pub seed: u64,
    /// PLC generation (HPAV or HPAV500).
    pub technology: PlcTechnology,
    /// Channel-model constants.
    pub channel: PlcChannelParams,
    /// Channel-estimator configuration used by every receiver.
    pub estimator: EstimatorConfig,
    /// Enable the collision capture effect (paper §8.2).
    pub capture_effect: bool,
    /// Minimum signal-to-interference ratio (dB) for a frame to be
    /// (partially) decoded during a collision.
    pub capture_sinr_db: f64,
    /// The interfering frame must be at least this many times longer than
    /// the captured frame (short probes inside long saturated frames).
    pub capture_duration_ratio: f64,
    /// PB error rate applied to a captured frame's blocks.
    pub capture_pberr: f64,
    /// How often cached per-slot SNR spectra are refreshed.
    pub spectrum_refresh: Duration,
    /// Minimum gap between two estimator observations on one link
    /// direction (subsampling keeps long saturated runs cheap without
    /// changing convergence behaviour at probe rates).
    pub observe_min_gap: Duration,
    /// Fraction of a frame's airtime carrying useful payload bits after
    /// PB padding, partial last symbols and tone-map-slot truncation
    /// (calibrated together with `exchange_extra` so saturation goodput
    /// matches the paper's Fig. 15 fit, BLE = 1.7 T − 0.65).
    pub frame_efficiency: f64,
    /// Extra per-exchange dead time (management traffic, tone-map
    /// exchange, aggregation slack).
    pub exchange_extra: Duration,
    /// ABLATION: disable the 1901 deferral counter, making the backoff
    /// 802.11-style (stations escalate only on collisions, never on
    /// sensing the medium busy). Used to demonstrate the deferral
    /// counter's short-term unfairness/jitter effect (paper §2.2,
    /// \[19\], \[21\]).
    pub disable_deferral: bool,
    /// Record SoF delimiters of all successfully transmitted frames.
    pub sniffer: bool,
    /// Transmit-queue capacity in PBs (device buffer; PLC queues are
    /// non-blocking and drop on overflow, paper footnote 11).
    pub queue_cap_pbs: usize,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            seed: 1,
            technology: PlcTechnology::HpAv,
            channel: PlcChannelParams::default(),
            estimator: EstimatorConfig::default(),
            capture_effect: true,
            capture_sinr_db: 12.0,
            capture_duration_ratio: 2.0,
            capture_pberr: 0.75,
            spectrum_refresh: Duration::from_millis(200),
            observe_min_gap: Duration::from_millis(10),
            frame_efficiency: 0.82,
            exchange_extra: Duration::from_micros(150),
            disable_deferral: false,
            sniffer: false,
            queue_cap_pbs: 600,
        }
    }
}

/// A traffic flow between two stations (or a broadcast source).
#[derive(Debug, Clone)]
pub struct Flow {
    /// Source station.
    pub src: StationId,
    /// Destination station; [`BROADCAST`] for broadcast probing.
    pub dst: StationId,
    /// The traffic shape.
    pub source: TrafficSource,
    /// Channel-access priority class.
    pub priority: Priority,
}

impl Flow {
    /// Unicast flow at the default CA1 (best-effort data) priority.
    pub fn unicast(src: StationId, dst: StationId, source: TrafficSource) -> Self {
        Flow {
            src,
            dst,
            source,
            priority: Priority::Ca1,
        }
    }

    /// Broadcast flow (ROBO-modulated, unacknowledged — paper §8.1).
    pub fn broadcast(src: StationId, source: TrafficSource) -> Self {
        Flow {
            src,
            dst: BROADCAST,
            source,
            priority: Priority::Ca1,
        }
    }

    /// Set the channel-access priority.
    pub fn with_priority(mut self, priority: Priority) -> Self {
        self.priority = priority;
        self
    }

    fn is_broadcast(&self) -> bool {
        self.dst == BROADCAST
    }
}

/// Receiver-side state for one directed link.
struct RxState {
    estimator: ChannelEstimator,
    /// PBs (total, errored) since the last tone-map regeneration — the
    /// estimator's own error window.
    window: (u64, u64),
    /// PBs (total, errored) since the last `ampstat` drain — the
    /// measurement tool's window.
    ampstat: (u64, u64),
    /// Cumulative PB counters (never reset).
    cumulative: (u64, u64),
    last_observe: Option<Time>,
}

/// Per-flow simulation state.
struct FlowState {
    flow: Flow,
    queue: std::collections::VecDeque<QueuedPb>,
    /// Frames each packet participated in (sender side, for U-ETX).
    tx_counts: HashMap<u64, u32>,
    /// Completed tx counts of delivered packets.
    delivered_tx_counts: Vec<u32>,
    reassembler: Reassembler,
    delivered: Vec<CompletedPacket>,
    /// Broadcast accounting per receiver: (received packets, lost packets).
    broadcast_rx: HashMap<StationId, (u64, u64)>,
    /// Packets dropped at the full transmit queue.
    dropped: u64,
}

struct Station {
    outlet: NodeId,
    backoff: Option<BackoffState>,
    /// Flow indices sourced at this station.
    flows: Vec<usize>,
    /// Round-robin pointer over `flows`.
    rr: usize,
}

struct CachedSpectrum {
    at: Time,
    spec: SnrSpectrum,
    /// PBerr memoized for (tonemap id); invalidated with the spectrum.
    pberr_for: Option<(u32, f64)>,
}

/// One PLC contention domain.
pub struct PlcSim {
    cfg: SimConfig,
    now: Time,
    rng: StdRng,
    ids: Vec<StationId>,
    index: HashMap<StationId, usize>,
    stations: Vec<Station>,
    /// Undirected physical channels, keyed by (min idx, max idx).
    channels: HashMap<(usize, usize), PlcChannel>,
    /// Directed receiver state keyed by (src idx, dst idx).
    rx: HashMap<(usize, usize), RxState>,
    flows: Vec<FlowState>,
    sniffer: Vec<SofRecord>,
    spectra: HashMap<(usize, usize, u8), CachedSpectrum>,
    n_carriers: usize,
    /// Prebuilt ROBO map for this carrier count (broadcasts, sounding,
    /// dead-map fallback) — avoids rebuilding the carrier vector per frame.
    robo: ToneMap,
    obs: Obs,
    metrics: MacMetrics,
}

impl PlcSim {
    /// Build a simulation for stations plugged into `outlets` of `grid`.
    /// Channels are derived for every electrically connected pair.
    pub fn new(cfg: SimConfig, grid: &Grid, outlets: &[(StationId, NodeId)]) -> Self {
        let ids: Vec<StationId> = outlets.iter().map(|(id, _)| *id).collect();
        let index: HashMap<StationId, usize> =
            ids.iter().enumerate().map(|(i, id)| (*id, i)).collect();
        assert_eq!(index.len(), ids.len(), "duplicate station ids");
        let stations: Vec<Station> = outlets
            .iter()
            .map(|&(_, outlet)| Station {
                outlet,
                backoff: None,
                flows: Vec::new(),
                rr: 0,
            })
            .collect();
        let mut channels = HashMap::new();
        for i in 0..stations.len() {
            for j in (i + 1)..stations.len() {
                let seed = cfg
                    .seed
                    .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                    .wrapping_add((ids[i] as u64) << 16 | ids[j] as u64);
                if let Some(ch) = PlcChannel::from_grid(
                    grid,
                    stations[i].outlet,
                    stations[j].outlet,
                    cfg.technology,
                    cfg.channel,
                    seed,
                ) {
                    channels.insert((i, j), ch);
                }
            }
        }
        let n_carriers = cfg.technology.carrier_count();
        let rng = StdRng::seed_from_u64(cfg.seed);
        let obs = simnet::obs::current();
        let metrics = MacMetrics::register(obs.registry());
        PlcSim {
            cfg,
            now: Time::ZERO,
            rng,
            ids,
            index,
            stations,
            channels,
            rx: HashMap::new(),
            flows: Vec::new(),
            sniffer: Vec::new(),
            spectra: HashMap::new(),
            n_carriers,
            robo: ToneMap::robo(n_carriers),
            obs,
            metrics,
        }
    }

    /// Route this simulation's metrics and events to `obs` instead of the
    /// ambient handle captured at construction.
    pub fn attach_obs(&mut self, obs: Obs) {
        self.metrics = MacMetrics::register(obs.registry());
        self.obs = obs;
    }

    /// Current simulation time.
    pub fn now(&self) -> Time {
        self.now
    }

    /// Add a traffic flow; returns its handle.
    pub fn add_flow(&mut self, flow: Flow) -> usize {
        let src_idx = self.idx(flow.src);
        if !flow.is_broadcast() {
            let dst_idx = self.idx(flow.dst);
            let key = Self::pair(src_idx, dst_idx);
            assert!(
                self.channels.contains_key(&key),
                "no electrical path between stations {} and {}",
                flow.src,
                flow.dst
            );
        }
        let id = self.flows.len();
        self.flows.push(FlowState {
            flow,
            queue: Default::default(),
            tx_counts: HashMap::new(),
            delivered_tx_counts: Vec::new(),
            reassembler: Reassembler::new(),
            delivered: Vec::new(),
            broadcast_rx: HashMap::new(),
            dropped: 0,
        });
        self.stations[src_idx].flows.push(id);
        id
    }

    fn idx(&self, id: StationId) -> usize {
        *self
            .index
            .get(&id)
            .unwrap_or_else(|| panic!("unknown station id {id}"))
    }

    fn pair(a: usize, b: usize) -> (usize, usize) {
        (a.min(b), a.max(b))
    }

    fn dir(a: usize, b: usize) -> LinkDir {
        if a < b {
            LinkDir::AtoB
        } else {
            LinkDir::BtoA
        }
    }

    /// Does a physical channel exist between two stations?
    pub fn connected(&self, a: StationId, b: StationId) -> bool {
        self.channels
            .contains_key(&Self::pair(self.idx(a), self.idx(b)))
    }

    /// Cable distance between two stations, metres.
    pub fn cable_distance_m(&self, a: StationId, b: StationId) -> Option<f64> {
        self.channels
            .get(&Self::pair(self.idx(a), self.idx(b)))
            .map(|c| c.cable_distance_m())
    }

    fn rx_state(&mut self, src: usize, dst: usize) -> &mut RxState {
        let cfg = self.cfg.estimator;
        let n = self.n_carriers;
        self.rx.entry((src, dst)).or_insert_with(|| RxState {
            estimator: ChannelEstimator::new(cfg, n),
            window: (0, 0),
            ampstat: (0, 0),
            cumulative: (0, 0),
            last_observe: None,
        })
    }

    /// Refresh the cached per-slot spectrum for a directed link if older
    /// than `spectrum_refresh`, rewriting the entry's buffer in place.
    fn refresh_spectrum(&mut self, src: usize, dst: usize, slot: usize) {
        let key = (src, dst, slot as u8);
        let refresh = self.cfg.spectrum_refresh;
        let now = self.now;
        let needs = match self.spectra.get(&key) {
            Some(c) => now.saturating_since(c.at) >= refresh,
            None => true,
        };
        if needs {
            self.metrics.spec_refreshes.inc();
            let ch = self
                .channels
                .get(&Self::pair(src, dst))
                .expect("channel exists for active link");
            let phase = (slot as f64 + 0.5) / TONEMAP_SLOTS as f64;
            let entry = self.spectra.entry(key).or_insert_with(|| CachedSpectrum {
                at: now,
                spec: SnrSpectrum::empty(),
                pberr_for: None,
            });
            entry.at = now;
            entry.pberr_for = None;
            ch.spectrum_at_phase_into(Self::dir(src, dst), now, phase, &mut entry.spec);
        } else {
            self.metrics.spec_hits.inc();
        }
    }

    /// Cached per-slot spectrum for a directed link (refreshed every
    /// `spectrum_refresh`).
    fn spectrum(&mut self, src: usize, dst: usize, slot: usize) -> &SnrSpectrum {
        self.refresh_spectrum(src, dst, slot);
        &self
            .spectra
            .get(&(src, dst, slot as u8))
            .expect("just refreshed")
            .spec
    }

    /// PBerr of `map` against the cached spectrum, memoized per tone-map
    /// id.
    fn pberr_for(&mut self, src: usize, dst: usize, slot: usize, map: &ToneMap) -> f64 {
        self.spectrum(src, dst, slot); // ensure fresh
        let key = (src, dst, slot as u8);
        let cached = self.spectra.get_mut(&key).expect("cached");
        if let Some((id, p)) = cached.pberr_for {
            if id == map.id {
                return p;
            }
        }
        let p = pb_error_prob(map, &cached.spec);
        cached.pberr_for = Some((map.id, p));
        p
    }

    // ----- Measurement interface (management messages & sniffer) -----

    /// `int6krate`-style query: the average BLE the destination's
    /// estimator currently advertises for `src → dst`, Mb/s.
    pub fn int6krate(&self, src: StationId, dst: StationId) -> f64 {
        let (s, d) = (self.idx(src), self.idx(dst));
        self.rx
            .get(&(s, d))
            .map(|r| r.estimator.ble_avg())
            .unwrap_or_else(|| self.robo.ble())
    }

    /// BLE of one tone-map slot for `src → dst`, Mb/s.
    pub fn ble_slot(&self, src: StationId, dst: StationId, slot: usize) -> f64 {
        let (s, d) = (self.idx(src), self.idx(dst));
        self.rx
            .get(&(s, d))
            .map(|r| r.estimator.ble_slot(slot))
            .unwrap_or_else(|| self.robo.ble())
    }

    /// `ampstat`-style query: PB error rate on `src → dst` since the last
    /// call (drains the tool window). `None` when no PBs flowed.
    pub fn ampstat(&mut self, src: StationId, dst: StationId) -> Option<f64> {
        let (s, d) = (self.idx(src), self.idx(dst));
        let rx = self.rx.get_mut(&(s, d))?;
        let (total, err) = rx.ampstat;
        rx.ampstat = (0, 0);
        if total == 0 {
            None
        } else {
            Some(err as f64 / total as f64)
        }
    }

    /// Cumulative PB counters (total, errored) for `src → dst`.
    pub fn pb_counters(&self, src: StationId, dst: StationId) -> (u64, u64) {
        let (s, d) = (self.idx(src), self.idx(dst));
        self.rx.get(&(s, d)).map(|r| r.cumulative).unwrap_or((0, 0))
    }

    /// Factory-reset a station: clears every channel estimate it holds as
    /// a receiver and every estimate other stations hold about links *to*
    /// it (tone maps are per-link state shared by both ends).
    pub fn reset_device(&mut self, station: StationId) {
        let idx = self.idx(station);
        for ((s, d), rx) in self.rx.iter_mut() {
            if *s == idx || *d == idx {
                rx.estimator.reset();
                rx.window = (0, 0);
            }
        }
    }

    /// Drain packets delivered on a unicast flow.
    pub fn take_delivered(&mut self, flow: usize) -> Vec<CompletedPacket> {
        std::mem::take(&mut self.flows[flow].delivered)
    }

    /// Drain the per-packet transmission counts (frames each delivered
    /// packet needed — the U-ETX samples of §8.1).
    pub fn take_tx_counts(&mut self, flow: usize) -> Vec<u32> {
        std::mem::take(&mut self.flows[flow].delivered_tx_counts)
    }

    /// Broadcast reception counters per receiving station:
    /// (received, lost).
    pub fn broadcast_stats(&self, flow: usize) -> &HashMap<StationId, (u64, u64)> {
        &self.flows[flow].broadcast_rx
    }

    /// Packets dropped at the source queue of a flow.
    pub fn dropped(&self, flow: usize) -> u64 {
        self.flows[flow].dropped
    }

    /// Captured SoF delimiters (requires `cfg.sniffer`).
    pub fn sniffer_records(&self) -> &[SofRecord] {
        &self.sniffer
    }

    /// Drain captured SoF delimiters.
    pub fn take_sniffer_records(&mut self) -> Vec<SofRecord> {
        std::mem::take(&mut self.sniffer)
    }

    // ----- Simulation engine -----

    /// Run the simulation until `end`.
    pub fn run_until(&mut self, end: Time) {
        while self.now < end {
            self.step(end);
        }
    }

    /// If `t` falls inside a beacon region, the end of that region;
    /// otherwise `t`.
    fn skip_beacon_region(t: Time) -> Time {
        let offset = Duration(t.as_nanos() % BEACON_PERIOD.as_nanos());
        if offset < timing::BEACON_REGION {
            t + (timing::BEACON_REGION - offset)
        } else {
            t
        }
    }

    /// Time remaining until the next beacon region starts (from `t`, which
    /// must not be inside a region).
    fn time_to_beacon(t: Time) -> Duration {
        let offset = Duration(t.as_nanos() % BEACON_PERIOD.as_nanos());
        BEACON_PERIOD - offset
    }

    /// Pull packets from traffic sources into per-flow PB queues.
    fn refill_queues(&mut self) {
        let cap = self.cfg.queue_cap_pbs;
        let now = self.now;
        for fs in &mut self.flows {
            loop {
                // Peek the next packet's size from the pattern so a packet
                // is only pulled when its PBs fit (backpressure, not loss:
                // the file-transfer source must deliver every byte).
                let pkt_bytes = match fs.flow.source.pattern() {
                    simnet::traffic::TrafficPattern::Saturated { pkt_bytes }
                    | simnet::traffic::TrafficPattern::Cbr { pkt_bytes, .. }
                    | simnet::traffic::TrafficPattern::Bursts { pkt_bytes, .. }
                    | simnet::traffic::TrafficPattern::FileTransfer { pkt_bytes, .. } => pkt_bytes,
                };
                if fs.queue.len() + pbs_for_packet(pkt_bytes) as usize > cap {
                    break;
                }
                match fs.flow.source.take(now) {
                    Some(pkt) => {
                        for pb in QueuedPb::segment(pkt.seq, pkt.bytes, pkt.created) {
                            fs.queue.push_back(pb);
                        }
                    }
                    None => break,
                }
            }
        }
    }

    /// The earliest future packet arrival over all flows.
    fn next_arrival(&self) -> Option<Time> {
        self.flows
            .iter()
            .filter(|fs| fs.queue.is_empty())
            .filter_map(|fs| fs.flow.source.next_arrival(self.now))
            .min()
    }

    fn step(&mut self, end: Time) {
        self.metrics.steps.inc();
        self.metrics.events_fired.inc();
        self.now = Self::skip_beacon_region(self.now);
        if self.now >= end {
            self.now = end;
            return;
        }
        self.refill_queues();
        // Stations with queued PBs contend; the PRS0/PRS1 slots resolve
        // priority first, so only the highest signalled class proceeds to
        // the backoff countdown.
        let ready: Vec<usize> = (0..self.stations.len())
            .filter(|&i| {
                self.stations[i]
                    .flows
                    .iter()
                    .any(|&f| !self.flows[f].queue.is_empty())
            })
            .collect();
        let top_priority = ready
            .iter()
            .map(|&i| self.station_priority(i))
            .max()
            .unwrap_or(Priority::Ca1);
        let contenders: Vec<usize> = ready
            .iter()
            .copied()
            .filter(|&i| self.station_priority(i) == top_priority)
            .collect();
        if contenders.is_empty() {
            // Idle medium: advance to the next arrival (or end).
            let next = self.next_arrival().unwrap_or(end).min(end);
            self.now = Self::skip_beacon_region(next.max(self.now + Duration::from_micros(1)));
            return;
        }
        self.metrics.csma_attempts.add(contenders.len() as u64);
        // Ensure backoff state.
        for &i in &contenders {
            if self.stations[i].backoff.is_none() {
                self.stations[i].backoff = Some(BackoffState::new(&mut self.rng));
            }
        }
        let m = contenders
            .iter()
            .map(|&i| {
                self.stations[i]
                    .backoff
                    .as_ref()
                    .expect("set above")
                    .backoff_slots()
            })
            .min()
            .expect("non-empty");
        let contention = timing::SLOT * (timing::PRS_SLOTS + m as u64);
        // Make sure the whole exchange fits before the next beacon region.
        let budget = Self::time_to_beacon(self.now);
        // `frame_exchange_overhead` already counts the PRS slots once;
        // adding `contention` (PRS + backoff) double-counts them, which is
        // deliberately conservative: a one-symbol frame must comfortably
        // fit before the beacon region.
        let min_needed =
            contention + timing::frame_exchange_overhead() + Duration::from_micros_f64(SYMBOL_US);
        if budget < min_needed {
            self.now = Self::skip_beacon_region(self.now + budget);
            return;
        }
        self.now += contention;
        let winners: Vec<usize> = contenders
            .iter()
            .copied()
            .filter(|&i| {
                self.stations[i]
                    .backoff
                    .as_ref()
                    .expect("set")
                    .backoff_slots()
                    == m
            })
            .collect();
        for &i in &contenders {
            if !winners.contains(&i) {
                let st = self.stations[i].backoff.as_mut().expect("set");
                st.elapse_idle(m);
            }
        }
        // Frame-duration budget until the beacon region.
        let frame_budget = (Self::time_to_beacon(self.now)
            .saturating_sub(timing::frame_exchange_overhead()))
        .min(timing::MAX_FRAME);
        if winners.len() == 1 {
            self.transmit(winners[0], frame_budget, None);
        } else {
            self.collide(&winners, frame_budget);
        }
        // Non-winning contenders sensed the medium busy: 1901 deferral
        // (skipped under the 802.11-style ablation).
        if !self.cfg.disable_deferral {
            for &i in &contenders {
                if !winners.contains(&i) {
                    let st = self.stations[i].backoff.as_mut().expect("set");
                    st.on_busy(&mut self.rng);
                    self.metrics.csma_deferrals.inc();
                }
            }
        }
    }

    /// The highest priority among a station's backlogged flows.
    fn station_priority(&self, station: usize) -> Priority {
        self.stations[station]
            .flows
            .iter()
            .filter(|&&f| !self.flows[f].queue.is_empty())
            .map(|&f| self.flows[f].flow.priority)
            .max()
            .unwrap_or(Priority::Ca1)
    }

    /// Pick the next flow of a station: round robin over the non-empty
    /// queues of its current (highest) priority class.
    fn pick_flow(&mut self, station: usize) -> Option<usize> {
        let class = self.station_priority(station);
        let n = self.stations[station].flows.len();
        for k in 0..n {
            let at = (self.stations[station].rr + k) % n;
            let f = self.stations[station].flows[at];
            if !self.flows[f].queue.is_empty() && self.flows[f].flow.priority == class {
                self.stations[station].rr = (at + 1) % n;
                return Some(f);
            }
        }
        None
    }

    /// Build the frame a station would transmit now: drains PBs from the
    /// chosen flow. Returns (flow, PBs, tone map, n_symbols, duration).
    fn build_frame(
        &mut self,
        station: usize,
        budget: Duration,
    ) -> Option<(usize, Vec<QueuedPb>, ToneMap, u64, Duration)> {
        let f = self.pick_flow(station)?;
        let is_broadcast = self.flows[f].flow.is_broadcast();
        let slot = self.now.tonemap_slot(TONEMAP_SLOTS);
        let map = if is_broadcast {
            self.robo.clone()
        } else {
            let src = self.idx(self.flows[f].flow.src);
            let dst = self.idx(self.flows[f].flow.dst);
            // The sender uses the tone map the destination last sent it;
            // before any estimation it falls back to ROBO (sound frames).
            let rx = self.rx_state(src, dst);
            if rx.estimator.last_regen().is_some() {
                rx.estimator.tonemaps().slots[slot].clone()
            } else {
                // No estimate yet: the link sounds with ROBO frames.
                self.metrics.sound_frames.inc();
                self.robo.clone()
            }
        };
        let bits_per_sym = map.info_bits_per_symbol();
        if bits_per_sym <= 0.0 {
            // Dead tone map: fall back to ROBO so the link can re-sound.
            self.metrics.sound_frames.inc();
            let robo = self.robo.clone();
            return self.drain_pbs(f, robo, budget);
        }
        self.drain_pbs(f, map, budget)
    }

    fn drain_pbs(
        &mut self,
        f: usize,
        map: ToneMap,
        budget: Duration,
    ) -> Option<(usize, Vec<QueuedPb>, ToneMap, u64, Duration)> {
        // Effective payload rate of the frame body: PB padding, partial
        // last symbols and slot truncation shave off a calibrated factor.
        let bits_per_sym = map.info_bits_per_symbol() * self.cfg.frame_efficiency;
        let max_syms = (budget.as_micros_f64() / SYMBOL_US).floor() as u64;
        if max_syms == 0 || bits_per_sym <= 0.0 {
            return None;
        }
        let max_pbs = ((max_syms as f64 * bits_per_sym) / PB_WIRE_BITS as f64).floor() as usize;
        let take = self.flows[f].queue.len().min(max_pbs.max(1));
        let pbs: Vec<QueuedPb> = self.flows[f].queue.drain(..take).collect();
        let n_sym = ((pbs.len() as u64 * PB_WIRE_BITS) as f64 / bits_per_sym)
            .ceil()
            .max(1.0)
            .min(max_syms as f64) as u64;
        let duration = Duration::from_micros_f64(n_sym as f64 * SYMBOL_US);
        Some((f, pbs, map, n_sym, duration))
    }

    /// Successful (uncollided) transmission of one frame.
    /// `degraded_to` carries the capture-effect SINR when this frame is
    /// being decoded under interference.
    fn transmit(&mut self, station: usize, budget: Duration, degraded_to: Option<f64>) {
        let Some((f, pbs, map, n_sym, duration)) = self.build_frame(station, budget) else {
            // Nothing to send after all: burn a slot.
            self.now += timing::SLOT;
            return;
        };
        let slot = self.now.tonemap_slot(TONEMAP_SLOTS);
        let src = self.idx(self.flows[f].flow.src);
        let is_broadcast = self.flows[f].flow.is_broadcast();
        // Record per-packet participation (U-ETX numerator).
        let mut seen = std::collections::HashSet::new();
        for pb in &pbs {
            if seen.insert(pb.packet_seq) {
                *self.flows[f].tx_counts.entry(pb.packet_seq).or_insert(0) += 1;
            }
        }
        if self.cfg.sniffer {
            self.sniffer.push(SofRecord {
                t: self.now,
                sof: SofDelimiter {
                    src: self.ids[src],
                    dst: self.flows[f].flow.dst,
                    ble_mbps: map.ble(),
                    tonemap_id: map.id,
                    slot: slot as u8,
                    n_symbols: n_sym,
                },
            });
        }
        if is_broadcast {
            self.receive_broadcast(f, src, &pbs, &map, slot);
        } else {
            let dst = self.idx(self.flows[f].flow.dst);
            self.receive_unicast(f, src, dst, pbs, &map, slot, n_sym, degraded_to);
        }
        // Advance the medium: PRS and backoff already elapsed in step().
        self.now += timing::PREAMBLE
            + duration
            + timing::RIFS
            + timing::PREAMBLE
            + timing::CIFS
            + self.cfg.exchange_extra;
        if let Some(b) = self.stations[station].backoff.as_mut() {
            b.on_success(&mut self.rng);
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn receive_unicast(
        &mut self,
        f: usize,
        src: usize,
        dst: usize,
        pbs: Vec<QueuedPb>,
        map: &ToneMap,
        slot: usize,
        n_sym: u64,
        degraded_to: Option<f64>,
    ) {
        let pbs_len = pbs.len();
        let mut pberr = self.pberr_for(src, dst, slot, map);
        if degraded_to.is_some() {
            pberr = pberr.max(self.cfg.capture_pberr);
        }
        // Draw errors, SACK, selective retransmission.
        let now = self.now;
        let mut failed: Vec<QueuedPb> = Vec::new();
        let mut n_err = 0u64;
        for pb in &pbs {
            if Distributions::bernoulli(&mut self.rng, pberr) {
                failed.push(*pb);
                n_err += 1;
            } else {
                self.flows[f].reassembler.accept(*pb, now);
            }
        }
        let n_total = pbs.len() as u64;
        // Corrupted PBs go back to the head of the queue, in order. Their
        // selective retransmission is what the SACK counter measures.
        self.metrics.sack_retrans_pbs.add(n_err);
        for pb in failed.into_iter().rev() {
            self.flows[f].queue.push_front(pb);
        }
        // Completed packets.
        for done in self.flows[f].reassembler.take_completed() {
            if let Some(txc) = self.flows[f].tx_counts.remove(&done.seq) {
                self.flows[f].delivered_tx_counts.push(txc);
            }
            self.flows[f].delivered.push(done);
        }
        // Estimation pipeline at the receiver.
        let gap = self.cfg.observe_min_gap;
        let refresh_needed = {
            let rx = self.rx_state(src, dst);
            rx.window.0 += n_total;
            rx.window.1 += n_err;
            rx.ampstat.0 += n_total;
            rx.ampstat.1 += n_err;
            rx.cumulative.0 += n_total;
            rx.cumulative.1 += n_err;
            rx.last_observe
                .is_none_or(|t| now.saturating_since(t) >= gap)
        };
        if refresh_needed {
            self.refresh_spectrum(src, dst, slot);
            let cached = &self
                .spectra
                .get(&(src, dst, slot as u8))
                .expect("just refreshed")
                .spec;
            // Degraded under capture: the receiver cannot tell collision
            // noise from channel noise — §8.2. Only that path copies.
            let degraded;
            let spec = match degraded_to {
                Some(sinr) => {
                    degraded = SnrSpectrum {
                        snr_db: cached.snr_db.iter().map(|s| s.min(sinr)).collect(),
                    };
                    &degraded
                }
                None => cached,
            };
            let rx = self.rx.get_mut(&(src, dst)).expect("created above");
            rx.estimator
                .observe(&mut self.rng, slot, spec, n_sym, pbs_len as u32);
            rx.last_observe = Some(now);
        }
        // Tone-map maintenance.
        let rx = self.rx.get_mut(&(src, dst)).expect("created above");
        let recent = if rx.window.0 >= 20 {
            rx.window.1 as f64 / rx.window.0 as f64
        } else {
            0.0
        };
        if rx.estimator.maybe_regenerate(now, recent) {
            rx.window = (0, 0);
            self.metrics.tonemap_updates.inc();
            let (src_id, dst_id) = (self.ids[src], self.ids[dst]);
            let ble = self.rx[&(src, dst)].estimator.ble_avg();
            self.obs.emit(now, "plc.mac", "tonemap_update", || {
                vec![
                    ("src".to_string(), src_id.into()),
                    ("dst".to_string(), dst_id.into()),
                    ("recent_pberr".to_string(), recent.into()),
                    ("ble_mbps".to_string(), ble.into()),
                ]
            });
        }
    }

    fn receive_broadcast(
        &mut self,
        f: usize,
        src: usize,
        pbs: &[QueuedPb],
        map: &ToneMap,
        slot: usize,
    ) {
        // Every other connected station attempts reception; a packet is
        // lost for a receiver when any of its PBs fails. No SACK, no
        // retransmission (paper §8.1).
        let receivers: Vec<usize> = (0..self.stations.len())
            .filter(|&r| r != src && self.channels.contains_key(&Self::pair(src, r)))
            .collect();
        // Broadcast frames here carry whole packets (probes are single
        // packets); group PBs by packet.
        let mut packets: HashMap<u64, u32> = HashMap::new();
        for pb in pbs {
            *packets.entry(pb.packet_seq).or_insert(0) += 1;
        }
        for r in receivers {
            // Memoized per (link, slot, tone-map id): broadcast frames all
            // use the ROBO map, so this is one pb_error_prob per refresh.
            let pberr = self.pberr_for(src, r, slot, map);
            let mut lost_pkts = 0u64;
            let mut ok_pkts = 0u64;
            for n_pbs in packets.values() {
                let mut ok = true;
                for _ in 0..*n_pbs {
                    if Distributions::bernoulli(&mut self.rng, pberr) {
                        ok = false;
                    }
                }
                if ok {
                    ok_pkts += 1;
                } else {
                    lost_pkts += 1;
                }
            }
            let entry = self.flows[f]
                .broadcast_rx
                .entry(self.ids[r])
                .or_insert((0, 0));
            entry.0 += ok_pkts;
            entry.1 += lost_pkts;
        }
    }

    /// Two or more stations transmitted in the same slot.
    fn collide(&mut self, winners: &[usize], budget: Duration) {
        self.metrics.csma_collisions.inc();
        let t = self.now;
        let n = winners.len();
        self.obs.emit(t, "plc.mac", "collision", || {
            vec![("stations".to_string(), n.into())]
        });
        // Build all frames first (drains queues).
        let mut built: Vec<(usize, usize, Vec<QueuedPb>, ToneMap, u64, Duration)> = Vec::new();
        for &w in winners {
            if let Some((f, pbs, map, n_sym, dur)) = self.build_frame(w, budget) {
                built.push((w, f, pbs, map, n_sym, dur));
            }
        }
        if built.is_empty() {
            self.now += timing::SLOT;
            return;
        }
        let max_dur = built.iter().map(|b| b.5).max().expect("non-empty");
        let longest = built
            .iter()
            .map(|b| b.5.as_nanos())
            .max()
            .expect("non-empty");
        let now = self.now;
        for (w, f, pbs, map, n_sym, dur) in built {
            // U-ETX accounting: this was a (failed or captured) attempt.
            let mut seen = std::collections::HashSet::new();
            for pb in &pbs {
                if seen.insert(pb.packet_seq) {
                    *self.flows[f].tx_counts.entry(pb.packet_seq).or_insert(0) += 1;
                }
            }
            let is_broadcast = self.flows[f].flow.is_broadcast();
            let captured = !is_broadcast && self.cfg.capture_effect && {
                let src = self.idx(self.flows[f].flow.src);
                let dst = self.idx(self.flows[f].flow.dst);
                // Interferer must dwarf this frame in duration, and the
                // signal must dominate the interference at the receiver.
                let dominated =
                    longest as f64 >= self.cfg.capture_duration_ratio * dur.as_nanos() as f64;
                dominated && self.capture_sinr(src, dst, w) > self.cfg.capture_sinr_db
            };
            if captured {
                let src = self.idx(self.flows[f].flow.src);
                let dst = self.idx(self.flows[f].flow.dst);
                let sinr = self.capture_sinr(src, dst, w);
                let slot = now.tonemap_slot(TONEMAP_SLOTS);
                if self.cfg.sniffer {
                    self.sniffer.push(SofRecord {
                        t: now,
                        sof: SofDelimiter {
                            src: self.ids[src],
                            dst: self.flows[f].flow.dst,
                            ble_mbps: map.ble(),
                            tonemap_id: map.id,
                            slot: slot as u8,
                            n_symbols: n_sym,
                        },
                    });
                }
                self.receive_unicast(f, src, dst, pbs, &map, slot, n_sym, Some(sinr));
            } else {
                // Frame lost entirely: PBs return to the queue head.
                for pb in pbs.into_iter().rev() {
                    self.flows[f].queue.push_front(pb);
                }
            }
            if let Some(b) = self.stations[w].backoff.as_mut() {
                b.on_collision(&mut self.rng);
            }
        }
        self.now += timing::PREAMBLE
            + max_dur
            + timing::RIFS
            + timing::PREAMBLE
            + timing::CIFS
            + self.cfg.exchange_extra;
    }

    /// Signal-to-interference ratio (dB) at the receiver `dst` of the link
    /// `src → dst`, under interference from station `interferer != src`'s
    /// co-channel transmission. Uses mean spectra as a wideband proxy.
    fn capture_sinr(&mut self, src: usize, dst: usize, _this_winner: usize) -> f64 {
        let now = self.now;
        let slot = now.tonemap_slot(TONEMAP_SLOTS);
        let signal = self.spectrum(src, dst, slot).mean_db();
        // Strongest interferer among the other current transmitters is
        // approximated by the strongest co-channel path to this receiver.
        let mut interference: f64 = f64::NEG_INFINITY;
        let others: Vec<usize> = (0..self.stations.len())
            .filter(|&i| i != src && i != dst && self.channels.contains_key(&Self::pair(i, dst)))
            .collect();
        for o in others {
            let m = self.spectrum(o, dst, slot).mean_db();
            interference = interference.max(m);
        }
        if interference.is_finite() {
            signal - interference
        } else {
            // No modelled interference path: effectively clean capture.
            40.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::appliance::ApplianceKind;
    use simnet::schedule::Schedule;
    use simnet::traffic::TrafficPattern;

    /// Small test grid: a bus with four outlets and mild loads.
    fn grid4() -> (Grid, Vec<(StationId, NodeId)>) {
        let mut g = Grid::new();
        let j0 = g.add_junction("j0");
        let j1 = g.add_junction("j1");
        let j2 = g.add_junction("j2");
        g.connect(j0, j1, 12.0);
        g.connect(j1, j2, 12.0);
        let mut outlets = Vec::new();
        for (i, j) in [(0u16, j0), (1, j0), (2, j1), (3, j2)] {
            let o = g.add_outlet(format!("s{i}"));
            g.connect(j, o, 3.0 + i as f64);
            outlets.push((i, o));
        }
        // Two appliances to give the channels texture.
        let oa = g.add_outlet("pc");
        g.connect(j1, oa, 2.0);
        g.attach(oa, ApplianceKind::DesktopPc, Schedule::AlwaysOn);
        let ob = g.add_outlet("printer");
        g.connect(j2, ob, 2.0);
        g.attach(ob, ApplianceKind::LaserPrinter, Schedule::AlwaysOn);
        (g, outlets)
    }

    fn sim(cfg: SimConfig) -> PlcSim {
        let (g, outlets) = grid4();
        PlcSim::new(cfg, &g, &outlets)
    }

    #[test]
    fn saturated_flow_delivers_packets() {
        let mut s = sim(SimConfig::default());
        let f = s.add_flow(Flow::unicast(0, 2, TrafficSource::iperf_saturated()));
        s.run_until(Time::from_secs(2));
        let delivered = s.take_delivered(f);
        assert!(
            delivered.len() > 1000,
            "only {} packets in 2 s",
            delivered.len()
        );
        // Sequence numbers are delivered (mostly) in order and unique.
        let mut seqs: Vec<u64> = delivered.iter().map(|p| p.seq).collect();
        let len_before = seqs.len();
        seqs.dedup();
        assert_eq!(seqs.len(), len_before, "duplicate deliveries");
    }

    #[test]
    fn throughput_is_in_a_sane_hpav_range() {
        let mut s = sim(SimConfig::default());
        let f = s.add_flow(Flow::unicast(0, 1, TrafficSource::iperf_saturated()));
        s.run_until(Time::from_secs(3));
        let delivered = s.take_delivered(f);
        let bytes: u64 = delivered.len() as u64 * 1500;
        let mbps = bytes as f64 * 8.0 / 3.0 / 1e6;
        // Station 0 and 1 share an outlet junction: a very good link.
        // HPAV UDP tops out around 80-90 Mb/s in the paper.
        assert!((30.0..100.0).contains(&mbps), "throughput={mbps} Mb/s");
    }

    #[test]
    fn ble_rises_from_robo_with_traffic() {
        let mut s = sim(SimConfig::default());
        let robo = s.int6krate(0, 2);
        let _f = s.add_flow(Flow::unicast(0, 2, TrafficSource::iperf_saturated()));
        s.run_until(Time::from_secs(2));
        let after = s.int6krate(0, 2);
        assert!(robo < 7.0, "initial BLE should be ROBO: {robo}");
        assert!(after > 3.0 * robo, "BLE should grow: {after} vs {robo}");
    }

    #[test]
    fn two_saturated_flows_share_the_medium() {
        let mut s = sim(SimConfig::default());
        let f1 = s.add_flow(Flow::unicast(0, 2, TrafficSource::iperf_saturated()));
        let f2 = s.add_flow(Flow::unicast(1, 3, TrafficSource::iperf_saturated()));
        s.run_until(Time::from_secs(3));
        let d1 = s.take_delivered(f1).len() as f64;
        let d2 = s.take_delivered(f2).len() as f64;
        assert!(d1 > 100.0 && d2 > 100.0, "d1={d1} d2={d2}");
        // Long-run shares are within a factor ~3 (1901 is short-term
        // unfair but long-term roughly fair for equal-quality links).
        let ratio = d1.max(d2) / d1.min(d2);
        assert!(ratio < 3.0, "ratio={ratio}");
    }

    #[test]
    fn cbr_flow_respects_its_rate() {
        let mut s = sim(SimConfig::default());
        let f = s.add_flow(Flow::unicast(0, 3, TrafficSource::probe_150kbps()));
        s.run_until(Time::from_secs(10));
        let delivered = s.take_delivered(f);
        let rate = delivered.len() as f64 * 1500.0 * 8.0 / 10.0;
        assert!(
            (rate - 150_000.0).abs() / 150_000.0 < 0.1,
            "rate={rate} b/s"
        );
    }

    #[test]
    fn sniffer_captures_sof_with_slot_periodicity() {
        let cfg = SimConfig {
            sniffer: true,
            ..SimConfig::default()
        };
        let mut s = sim(cfg);
        let _f = s.add_flow(Flow::unicast(0, 2, TrafficSource::iperf_saturated()));
        s.run_until(Time::from_secs(1));
        let recs = s.sniffer_records();
        assert!(recs.len() > 100, "{} records", recs.len());
        // Slots must cycle 0..6 and match the capture timestamp.
        for r in recs {
            assert_eq!(r.sof.slot as usize, r.t.tonemap_slot(TONEMAP_SLOTS));
            assert!(r.sof.ble_mbps > 0.0);
        }
    }

    #[test]
    fn tx_counts_track_retransmissions() {
        let mut s = sim(SimConfig::default());
        let f = s.add_flow(Flow::unicast(0, 3, TrafficSource::probe_150kbps()));
        s.run_until(Time::from_secs(20));
        let counts = s.take_tx_counts(f);
        assert!(!counts.is_empty());
        // Every delivered packet needed at least one frame.
        assert!(counts.iter().all(|&c| c >= 1));
    }

    #[test]
    fn broadcast_reaches_all_stations_with_low_loss() {
        let mut s = sim(SimConfig::default());
        let f = s.add_flow(Flow::broadcast(
            0,
            TrafficSource::new(
                TrafficPattern::Cbr {
                    rate_bps: 120_000.0,
                    pkt_bytes: 1500,
                },
                Time::ZERO,
            ),
        ));
        s.run_until(Time::from_secs(10));
        let stats = s.broadcast_stats(f);
        assert_eq!(stats.len(), 3, "three receivers");
        for (recv, (ok, lost)) in stats {
            assert!(*ok > 50, "receiver {recv}: ok={ok}");
            let loss = *lost as f64 / (*ok + *lost) as f64;
            // ROBO modulation: losses should be small on this testbed.
            assert!(loss < 0.2, "receiver {recv}: loss={loss}");
        }
    }

    #[test]
    fn ampstat_window_drains() {
        let mut s = sim(SimConfig::default());
        let _f = s.add_flow(Flow::unicast(0, 2, TrafficSource::iperf_saturated()));
        s.run_until(Time::from_secs(1));
        let first = s.ampstat(0, 2);
        assert!(first.is_some());
        // Immediately after draining, no new PBs: None.
        let second = s.ampstat(0, 2);
        assert!(second.is_none());
        let (total, err) = s.pb_counters(0, 2);
        assert!(total > 0);
        assert!(err <= total);
    }

    #[test]
    fn reset_device_drops_estimates_to_robo() {
        let mut s = sim(SimConfig::default());
        let _f = s.add_flow(Flow::unicast(0, 2, TrafficSource::iperf_saturated()));
        s.run_until(Time::from_secs(2));
        assert!(s.int6krate(0, 2) > 20.0);
        s.reset_device(2);
        let robo = ToneMap::robo(PlcTechnology::HpAv.carrier_count()).ble();
        assert!((s.int6krate(0, 2) - robo).abs() < 1e-9);
    }

    #[test]
    fn simulation_is_deterministic() {
        let run = || {
            let mut s = sim(SimConfig::default());
            let f = s.add_flow(Flow::unicast(0, 3, TrafficSource::iperf_saturated()));
            s.run_until(Time::from_millis(500));
            (s.take_delivered(f).len(), s.int6krate(0, 3))
        };
        let (a1, b1) = run();
        let (a2, b2) = run();
        assert_eq!(a1, a2);
        assert_eq!(b1, b2);
    }

    #[test]
    fn beacon_regions_are_skipped() {
        // The helper must push any time inside [k*40ms, k*40ms+3.2ms) out.
        let inside = Time::from_millis(40) + Duration::from_micros(100);
        let out = PlcSim::skip_beacon_region(inside);
        assert_eq!(out, Time::from_millis(40) + timing::BEACON_REGION);
        let clean = Time::from_millis(40) + Duration::from_millis(10);
        assert_eq!(PlcSim::skip_beacon_region(clean), clean);
    }

    #[test]
    fn higher_priority_class_dominates_contention() {
        // A CA2 stream against a CA1 saturated flow: priority resolution
        // gives the CA2 stream near-exclusive access while it has frames.
        let mut s = sim(SimConfig::default());
        let hi = s.add_flow(
            Flow::unicast(
                0,
                2,
                TrafficSource::new(
                    TrafficPattern::Cbr {
                        rate_bps: 10_000_000.0, // 10 Mb/s HD stream
                        pkt_bytes: 1500,
                    },
                    Time::ZERO,
                ),
            )
            .with_priority(Priority::Ca2),
        );
        let lo = s.add_flow(Flow::unicast(1, 3, TrafficSource::iperf_saturated()));
        s.run_until(Time::from_secs(3));
        let hi_rate = s.take_delivered(hi).len() as f64 * 1500.0 * 8.0 / 3.0 / 1e6;
        let lo_rate = s.take_delivered(lo).len() as f64 * 1500.0 * 8.0 / 3.0 / 1e6;
        // The CA2 stream holds its rate despite the saturated CA1
        // competitor (whose long frames it must still wait out between
        // wins); the CA1 flow picks up the leftovers.
        assert!((hi_rate - 10.0).abs() < 2.0, "hi_rate={hi_rate}");
        assert!(lo_rate > 1.0, "lo_rate={lo_rate}");
    }

    #[test]
    fn priority_ordering_is_total() {
        assert!(Priority::Ca3 > Priority::Ca2);
        assert!(Priority::Ca2 > Priority::Ca1);
        assert!(Priority::Ca1 > Priority::Ca0);
    }

    #[test]
    fn file_transfer_completes_and_stops() {
        let mut s = sim(SimConfig::default());
        let f = s.add_flow(Flow::unicast(
            0,
            2,
            TrafficSource::new(
                TrafficPattern::FileTransfer {
                    total_bytes: 1_500_000,
                    pkt_bytes: 1500,
                },
                Time::ZERO,
            ),
        ));
        s.run_until(Time::from_secs(30));
        let delivered = s.take_delivered(f);
        assert_eq!(delivered.len(), 1000, "whole file must arrive");
        let completion = delivered.iter().map(|p| p.delivered).max().unwrap();
        assert!(completion < Time::from_secs(10), "completion={completion}");
    }
}
