//! Batched multi-sim stepping: many [`PlcSim`]s through one time wheel.
//!
//! A campaign-scale workload is an ensemble of *independent* links —
//! hundreds of probing sims, most of them idle between probe arrivals.
//! Stepping them round-robin (`for t in chunks { for sim { sim.run_until(t) } }`)
//! pays two structural costs per chunk that have nothing to do with MAC
//! work: a boundary step per sim per chunk (even for sims with nothing
//! to do until far later) and a cold traversal of every sim struct
//! every chunk. [`PlcBatch`] removes both: a shared
//! [`simnet::wheel::TimeWheel`] schedules each sim at the epoch of its
//! next pending work, so a quiesced sim costs nothing until its cached
//! next-arrival epoch comes due, and the sims advanced in an epoch are
//! exactly the ones with work in it.
//!
//! # Bit-identity
//!
//! The batch stepper never re-implements MAC semantics. It advances a
//! member by slicing the sim's own `while now < end { step(end) }`
//! loop at epoch boundaries, passing the *same* final `end` to every
//! [`PlcSim::step`] call. `step(end)` depends only on sim state and
//! `end`, so the concatenated slices replay exactly the step sequence
//! of a continuous [`PlcSim::run_until`] call: same delivered packets,
//! same RNG draws, same metrics counters, same `Persist` snapshot
//! bytes. `tests/batch_identity.rs` proves this property over
//! arbitrary flow mixes, batch sizes, epoch widths and cut points, the
//! same way `reference.rs` gates the optimized per-sim loop.

use crate::sim::PlcSim;
use simnet::time::{Duration, Time};
use simnet::wheel::{Lockstep, LockstepSim};

impl LockstepSim for PlcSim {
    fn wake(&self) -> Time {
        // The sim's clock *is* its earliest pending work: `step`
        // resolves what actually happens at/after `now` (idle-skip
        // included), and anything earlier has already been stepped.
        self.now()
    }

    fn advance(&mut self, horizon: Time, end: Time) -> Option<Time> {
        // Same loop as `run_until(end)`, stopped at the epoch horizon.
        // `end` — not `horizon` — is what each step sees, which is the
        // whole bit-identity argument (see module docs).
        while self.now < horizon {
            self.step(end);
        }
        // A PlcSim never finishes on its own; the caller decides when
        // to stop scheduling it.
        Some(self.now)
    }
}

/// An ensemble of [`PlcSim`]s advancing in lockstep epochs.
///
/// Thin facade over [`simnet::wheel::Lockstep`] fixing the member type
/// and defaulting the epoch to the MAC's natural 10 ms beat. Outputs
/// (delivered packets, tx counts, sniffer records) stay inside each
/// member; drain them via [`sims_mut`](PlcBatch::sims_mut) between
/// [`run_until`](PlcBatch::run_until) calls.
pub struct PlcBatch {
    inner: Lockstep<PlcSim>,
}

impl PlcBatch {
    /// Batch over `sims` with the default 10 ms epoch.
    pub fn new(sims: Vec<PlcSim>) -> Self {
        PlcBatch {
            inner: Lockstep::new(sims),
        }
    }

    /// Batch over `sims` with an explicit epoch width (must be > 0).
    pub fn with_epoch(sims: Vec<PlcSim>, epoch: Duration) -> Self {
        PlcBatch {
            inner: Lockstep::with_epoch(sims, epoch),
        }
    }

    /// Number of member sims.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// True when the batch has no members.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Advance every member to `end`, bit-identically to calling
    /// `run_until(end)` on each member serially.
    pub fn run_until(&mut self, end: Time) {
        self.inner.run_until(end);
    }

    /// The member sims.
    pub fn sims(&self) -> &[PlcSim] {
        self.inner.sims()
    }

    /// Mutable members, for draining outputs between runs.
    pub fn sims_mut(&mut self) -> &mut [PlcSim] {
        self.inner.sims_mut()
    }

    /// Consume the batch and hand the members back.
    pub fn into_sims(self) -> Vec<PlcSim> {
        self.inner.into_sims()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::{Flow, SimConfig};
    use simnet::grid::Grid;
    use simnet::traffic::{TrafficPattern, TrafficSource};

    fn make_sim(seed: u64, rate_bps: f64) -> PlcSim {
        let mut g = Grid::new();
        let j = g.add_junction("j0");
        let o1 = g.add_outlet("s0");
        let o2 = g.add_outlet("s1");
        g.connect(j, o1, 3.0);
        g.connect(j, o2, 7.0);
        let cfg = SimConfig {
            seed,
            ..SimConfig::default()
        };
        let mut sim = PlcSim::new(cfg, &g, &[(0, o1), (1, o2)]);
        let source = TrafficSource::new(
            TrafficPattern::Cbr {
                rate_bps,
                pkt_bytes: 1300,
            },
            Time::ZERO,
        );
        sim.add_flow(Flow::unicast(0, 1, source));
        sim
    }

    fn trace(sim: &mut PlcSim) -> (Time, Vec<(u64, u64, u64)>) {
        let d = sim
            .take_delivered(0)
            .into_iter()
            .map(|p| (p.seq, p.created.as_nanos(), p.delivered.as_nanos()))
            .collect();
        (sim.now(), d)
    }

    /// Ten sims batched == the same ten sims run serially, down to the
    /// delivered-packet traces. The exhaustive version (arbitrary
    /// mixes, obs counters, snapshot bytes at random cuts) lives in
    /// tests/batch_identity.rs.
    #[test]
    fn batched_matches_serial_smoke() {
        let end = Time::from_millis(300);
        let serial: Vec<_> = (0..10)
            .map(|i| {
                let mut sim = make_sim(0xBA7C + i, 200_000.0 + 70_000.0 * i as f64);
                sim.run_until(end);
                trace(&mut sim)
            })
            .collect();
        let mut batch = PlcBatch::new(
            (0..10)
                .map(|i| make_sim(0xBA7C + i, 200_000.0 + 70_000.0 * i as f64))
                .collect(),
        );
        batch.run_until(end);
        for (i, sim) in batch.sims_mut().iter_mut().enumerate() {
            assert_eq!(trace(sim), serial[i], "sim {i} diverged");
        }
    }
}
