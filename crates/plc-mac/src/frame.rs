//! PLC frames, start-of-frame delimiters and sniffer records.
//!
//! Every PLC frame is preceded by a frame-control symbol — the
//! **start-of-frame (SoF) delimiter** — decodable by every station on the
//! medium regardless of tone maps. It carries, among PHY/MAC parameters,
//! the **BLE** of the tone map in use (paper §2.2). The paper's sniffer
//! mode captures SoF delimiters of all received frames (Table 2: arrival
//! timestamp `t` and `BLE` are "measured with: SoF delimiter").

use crate::pb::QueuedPb;
use serde::{Deserialize, Serialize};
use simnet::time::{Duration, Time};

/// The start-of-frame delimiter contents relevant to the measurements.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SofDelimiter {
    /// Transmitting station.
    pub src: u16,
    /// Destination station (or `u16::MAX` for broadcast).
    pub dst: u16,
    /// Bit loading estimate of the tone map in use, Mb/s.
    pub ble_mbps: f64,
    /// Tone-map identification (MCS-index analogue).
    pub tonemap_id: u32,
    /// Tone-map slot the frame is transmitted in.
    pub slot: u8,
    /// Frame payload length in OFDM symbols.
    pub n_symbols: u64,
}

/// A PLC frame in flight: delimiter plus the PBs it aggregates.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Frame {
    /// The frame-control delimiter.
    pub sof: SofDelimiter,
    /// Flow the payload belongs to (simulation bookkeeping).
    pub flow: usize,
    /// Aggregated physical blocks.
    pub pbs: Vec<QueuedPb>,
    /// True for ROBO-modulated frames (sound, broadcast).
    pub robo: bool,
    /// Payload duration on the wire (excludes preamble).
    pub duration: Duration,
}

/// One sniffer capture: a SoF delimiter with its arrival timestamp. This
/// is exactly what the paper's measurement tooling records; retransmission
/// detection is done *by the analyzer* with the <10 ms inter-arrival rule
/// (paper §8.1), not by the capture.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SofRecord {
    /// Arrival (capture) time.
    pub t: Time,
    /// The captured delimiter.
    pub sof: SofDelimiter,
}

impl electrifi_state::PersistValue for SofDelimiter {
    fn encode(&self, w: &mut electrifi_state::SectionWriter) {
        w.put_u16(self.src);
        w.put_u16(self.dst);
        w.put_f64(self.ble_mbps);
        w.put_u32(self.tonemap_id);
        w.put_u8(self.slot);
        w.put_u64(self.n_symbols);
    }

    fn decode(
        r: &mut electrifi_state::SectionReader<'_>,
    ) -> Result<Self, electrifi_state::StateError> {
        Ok(SofDelimiter {
            src: r.get_u16()?,
            dst: r.get_u16()?,
            ble_mbps: r.get_f64()?,
            tonemap_id: r.get_u32()?,
            slot: r.get_u8()?,
            n_symbols: r.get_u64()?,
        })
    }
}

impl electrifi_state::PersistValue for SofRecord {
    fn encode(&self, w: &mut electrifi_state::SectionWriter) {
        w.put(&self.t);
        self.sof.encode(w);
    }

    fn decode(
        r: &mut electrifi_state::SectionReader<'_>,
    ) -> Result<Self, electrifi_state::StateError> {
        Ok(SofRecord {
            t: r.get()?,
            sof: SofDelimiter::decode(r)?,
        })
    }
}

/// Classify sniffer records into new transmissions and retransmissions
/// using the paper's heuristic: a frame from the same source arriving
/// within `threshold` of the previous one is a retransmission (§8.1:
/// "if the frame arrives within an interval of less than 10 ms compared
/// to the previous frame, then it is a retransmission").
///
/// Returns, per record, `true` when classified as a retransmission.
pub fn classify_retransmissions(records: &[SofRecord], threshold: Duration) -> Vec<bool> {
    let mut out = Vec::with_capacity(records.len());
    let mut last_seen: std::collections::HashMap<(u16, u16), Time> = Default::default();
    for r in records {
        let key = (r.sof.src, r.sof.dst);
        let retx = last_seen
            .get(&key)
            .is_some_and(|&prev| r.t.saturating_since(prev) < threshold);
        out.push(retx);
        last_seen.insert(key, r.t);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(t_ms: u64, src: u16, dst: u16) -> SofRecord {
        SofRecord {
            t: Time::from_millis(t_ms),
            sof: SofDelimiter {
                src,
                dst,
                ble_mbps: 100.0,
                tonemap_id: 1,
                slot: 0,
                n_symbols: 10,
            },
        }
    }

    #[test]
    fn close_arrivals_are_retransmissions() {
        let records = vec![rec(0, 1, 2), rec(5, 1, 2), rec(100, 1, 2)];
        let flags = classify_retransmissions(&records, Duration::from_millis(10));
        assert_eq!(flags, vec![false, true, false]);
    }

    #[test]
    fn classification_is_per_link() {
        // Interleaved links must not confuse each other: each link's gap
        // is computed against its own previous frame.
        let records = vec![rec(0, 1, 2), rec(5, 3, 4), rec(8, 1, 2), rec(9, 3, 4)];
        let flags = classify_retransmissions(&records, Duration::from_millis(10));
        assert_eq!(flags, vec![false, false, true, true]);
        // With wide gaps, nothing is a retransmission.
        let sparse = vec![rec(0, 1, 2), rec(5, 3, 4), rec(80, 1, 2), rec(95, 3, 4)];
        let flags = classify_retransmissions(&sparse, Duration::from_millis(10));
        assert_eq!(flags, vec![false, false, false, false]);
    }

    #[test]
    fn exactly_at_threshold_is_new_transmission() {
        let records = vec![rec(0, 1, 2), rec(10, 1, 2)];
        let flags = classify_retransmissions(&records, Duration::from_millis(10));
        assert_eq!(flags, vec![false, false]);
    }
}
