//! IEEE 1901 / HomePlug AV MAC timing constants.
//!
//! Values follow the 1901 CSMA/CA parameterization used in the paper's
//! companion MAC studies (Vlachou et al., ICNP 2014 — reference \[19\] of
//! the paper).

use simnet::time::Duration;

/// Duration of one contention (backoff) slot.
pub const SLOT: Duration = Duration::from_nanos(35_840);

/// Number of priority-resolution slots preceding contention (PRS0, PRS1).
pub const PRS_SLOTS: u64 = 2;

/// Contention inter-frame space: gap after a SACK before the next
/// priority-resolution period.
pub const CIFS: Duration = Duration::from_micros(100);

/// Response inter-frame space: gap between the end of a frame and its
/// SACK.
pub const RIFS: Duration = Duration::from_micros(140);

/// Duration of the PHY preamble plus frame-control symbol that precedes
/// every frame's payload (also the duration of a SACK delimiter, which is
/// frame-control only).
pub const PREAMBLE: Duration = Duration::from_nanos(110_480);

/// Maximum duration of a PLC frame's payload (IEEE 1901).
pub const MAX_FRAME: Duration = Duration::from_nanos(2_501_120);

/// Portion of each beacon period reserved for the central beacon and
/// associated management region: the medium is unavailable to CSMA data.
pub const BEACON_REGION: Duration = Duration::from_micros(3_200);

/// The fixed overhead of one successful frame exchange, excluding backoff
/// slots and the frame payload itself:
/// PRS0 + PRS1 + preamble + RIFS + SACK + CIFS.
pub fn frame_exchange_overhead() -> Duration {
    SLOT * PRS_SLOTS + PREAMBLE + RIFS + PREAMBLE + CIFS
}

/// Fraction of the beacon period left for CSMA data.
pub fn csma_region_fraction() -> f64 {
    let bp = simnet::time::BEACON_PERIOD.as_secs_f64();
    1.0 - BEACON_REGION.as_secs_f64() / bp
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overhead_adds_up() {
        let oh = frame_exchange_overhead();
        // 71.68 + 110.48 + 140 + 110.48 + 100 = 532.64 µs
        assert!((oh.as_micros_f64() - 532.64).abs() < 0.01, "{oh}");
    }

    #[test]
    fn csma_fraction_is_most_of_the_beacon_period() {
        let f = csma_region_fraction();
        assert!((0.9..0.95).contains(&f), "f={f}");
    }

    #[test]
    fn max_frame_holds_many_symbols() {
        let syms = MAX_FRAME.as_micros_f64() / plc_phy::carrier::SYMBOL_US;
        assert!(syms > 50.0 && syms < 60.0, "syms={syms}");
    }
}
