//! Analytic saturation-throughput model.
//!
//! Long-horizon experiments (days or weeks of simulated time, Figs. 12-14)
//! cannot afford frame-level simulation; they need the expected UDP
//! goodput given the link's current BLE and PBerr. The model accounts for
//! the same mechanics the event simulation implements:
//!
//! * per-exchange fixed overhead (PRS, mean backoff, preamble, RIFS,
//!   SACK, CIFS),
//! * the maximum frame duration,
//! * the beacon region,
//! * padding/segmentation waste (PB headers, partial last symbols,
//!   tone-map slot truncation),
//! * retransmission of errored PBs,
//! * contention sharing when several saturated stations compete.
//!
//! Calibration target: the paper's Fig. 15 fit `BLE = 1.7·T − 0.65`
//! (i.e. MAC efficiency ≈ 0.59 at saturation).

use crate::csma::CW_TABLE;
use crate::timing;
use serde::{Deserialize, Serialize};

/// Efficiency knobs of the analytic model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MacModel {
    /// Fraction of a frame's airtime that carries useful payload bits
    /// after PB headers, frame padding and slot-boundary truncation.
    pub frame_efficiency: f64,
    /// Extra per-exchange dead time beyond the standard IFSs (management
    /// traffic, tone-map exchanges, aggregation-timer slack), µs.
    pub extra_overhead_us: f64,
    /// Collision-induced efficiency per additional contender.
    pub contention_factor: f64,
}

impl Default for MacModel {
    fn default() -> Self {
        MacModel {
            frame_efficiency: 0.82,
            extra_overhead_us: 150.0,
            contention_factor: 0.94,
        }
    }
}

/// Expected saturation UDP goodput (Mb/s) of a link whose current average
/// BLE is `ble_mbps` and PB error rate is `pberr`, with `n_contenders`
/// saturated stations sharing the medium (including this one).
pub fn saturation_throughput_mbps(ble_mbps: f64, pberr: f64, n_contenders: usize) -> f64 {
    saturation_throughput_with(MacModel::default(), ble_mbps, pberr, n_contenders)
}

/// [`saturation_throughput_mbps`] with explicit model constants.
pub fn saturation_throughput_with(
    model: MacModel,
    ble_mbps: f64,
    pberr: f64,
    n_contenders: usize,
) -> f64 {
    if ble_mbps <= 0.0 {
        return 0.0;
    }
    let frame_us = timing::MAX_FRAME.as_micros_f64();
    // Mean stage-0 backoff: (CW0 − 1)/2 slots.
    let backoff_us = (CW_TABLE[0] as f64 - 1.0) / 2.0 * timing::SLOT.as_micros_f64();
    let overhead_us =
        timing::frame_exchange_overhead().as_micros_f64() + backoff_us + model.extra_overhead_us;
    let cycle_us = frame_us + overhead_us;
    let payload_mbps = ble_mbps * (frame_us / cycle_us) * model.frame_efficiency;
    // Errored PBs are retransmitted: goodput scales by (1 − pberr).
    let after_errors = payload_mbps * (1.0 - pberr.clamp(0.0, 1.0));
    // Beacon region steals a fixed share of the medium.
    let after_beacons = after_errors * timing::csma_region_fraction();
    // Contention: share the medium and pay a small collision tax.
    let n = n_contenders.max(1) as f64;
    after_beacons / n * model.contention_factor.powf(n - 1.0)
}

/// Invert the paper's Fig. 15 relation: estimate the available UDP
/// throughput from a BLE reading alone (single saturated flow).
pub fn throughput_from_ble_fig15(ble_mbps: f64) -> f64 {
    ((ble_mbps + 0.65) / 1.7).max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_or_negative_ble_gives_zero() {
        assert_eq!(saturation_throughput_mbps(0.0, 0.0, 1), 0.0);
        assert_eq!(saturation_throughput_mbps(-5.0, 0.0, 1), 0.0);
    }

    #[test]
    fn slope_matches_fig15_calibration() {
        // BLE = 1.7 T − 0.65  ⇒  T ≈ 0.588 · BLE for large BLE.
        for ble in [30.0, 60.0, 100.0, 140.0] {
            let t = saturation_throughput_mbps(ble, 0.02, 1);
            let slope = ble / t;
            assert!(
                (1.5..1.9).contains(&slope),
                "ble={ble}: T={t}, implied slope={slope}"
            );
        }
    }

    #[test]
    fn matches_paper_extremes() {
        // Best testbed links: BLE ≈ 140 → throughput ≈ 80 Mb/s.
        let t = saturation_throughput_mbps(140.0, 0.02, 1);
        assert!((70.0..95.0).contains(&t), "t={t}");
        // A bad link: BLE ≈ 20 → around 10 Mb/s.
        let t = saturation_throughput_mbps(20.0, 0.05, 1);
        assert!((8.0..14.0).contains(&t), "t={t}");
    }

    #[test]
    fn pberr_reduces_goodput_proportionally() {
        let clean = saturation_throughput_mbps(100.0, 0.0, 1);
        let lossy = saturation_throughput_mbps(100.0, 0.3, 1);
        assert!((lossy / clean - 0.7).abs() < 1e-9);
    }

    #[test]
    fn contention_divides_throughput() {
        let alone = saturation_throughput_mbps(100.0, 0.02, 1);
        let two = saturation_throughput_mbps(100.0, 0.02, 2);
        let four = saturation_throughput_mbps(100.0, 0.02, 4);
        assert!(two < alone * 0.55 && two > alone * 0.40, "two={two}");
        assert!(four < two, "four={four} two={two}");
    }

    #[test]
    fn fig15_inverse_roundtrips() {
        let ble = 100.0;
        let t = throughput_from_ble_fig15(ble);
        assert!((1.7 * t - 0.65 - ble).abs() < 1e-9);
        assert_eq!(throughput_from_ble_fig15(-10.0), 0.0);
    }

    #[test]
    fn model_consistent_with_event_sim_range() {
        // The event simulation's good-link throughput (30-100 Mb/s at BLE
        // ~147) must bracket the analytic prediction.
        let t = saturation_throughput_mbps(147.0, 0.02, 1);
        assert!((70.0..100.0).contains(&t), "t={t}");
    }
}
