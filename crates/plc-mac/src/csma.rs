//! The IEEE 1901 CSMA/CA backoff engine with deferral counters.
//!
//! The 1901 backoff differs from 802.11 in one crucial way (paper §2.2):
//! a station escalates its backoff stage **not only after a collision but
//! also after sensing the medium busy**, regulated by the *deferral
//! counter* (DC). At each stage the station draws a backoff counter (BC)
//! uniformly from `[0, CW)` and initializes DC from a per-stage table.
//! When the medium is sensed busy:
//!
//! * if `DC > 0`, the station decrements DC (and freezes BC);
//! * if `DC == 0`, it jumps to the next stage — redrawing BC from a
//!   doubled CW — *without attempting transmission*.
//!
//! This self-throttling causes the short-term unfairness and jitter the
//! paper cites from \[19\], \[21\]. For the CA1 priority class (best-effort
//! data) the stage tables are `CW = [8, 16, 32, 64]`,
//! `DC = [0, 1, 3, 15]`.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// Per-stage contention windows for the CA0/CA1 (data) priority class.
pub const CW_TABLE: [u32; 4] = [8, 16, 32, 64];
/// Per-stage initial deferral-counter values.
pub const DC_TABLE: [u32; 4] = [0, 1, 3, 15];

/// Backoff state machine of one station.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BackoffState {
    stage: usize,
    /// Backoff counter: idle slots to wait before transmitting.
    bc: u32,
    /// Deferral counter: busy events tolerated before escalating.
    dc: u32,
}

impl BackoffState {
    /// Enter stage 0 with a fresh draw (called when a new frame arrives at
    /// the head of the queue).
    pub fn new<R: Rng + ?Sized>(rng: &mut R) -> Self {
        let mut s = BackoffState {
            stage: 0,
            bc: 0,
            dc: 0,
        };
        s.enter_stage(rng, 0);
        s
    }

    fn enter_stage<R: Rng + ?Sized>(&mut self, rng: &mut R, stage: usize) {
        let stage = stage.min(CW_TABLE.len() - 1);
        self.stage = stage;
        self.bc = (simnet::rng::Distributions::uniform(rng) * CW_TABLE[stage] as f64) as u32;
        self.dc = DC_TABLE[stage];
    }

    /// Current backoff stage.
    pub fn stage(&self) -> usize {
        self.stage
    }

    /// Current backoff counter (idle slots remaining).
    pub fn backoff_slots(&self) -> u32 {
        self.bc
    }

    /// Current deferral counter.
    pub fn deferral_counter(&self) -> u32 {
        self.dc
    }

    /// Ready to transmit in this slot?
    pub fn ready(&self) -> bool {
        self.bc == 0
    }

    /// Count down `slots` idle slots (saturating at ready).
    pub fn elapse_idle(&mut self, slots: u32) {
        self.bc = self.bc.saturating_sub(slots);
    }

    /// The medium was sensed busy (another station transmitted) while this
    /// station was counting down. 1901 rule: decrement DC, or escalate the
    /// stage when DC is exhausted.
    pub fn on_busy<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        if self.dc > 0 {
            self.dc -= 1;
        } else {
            self.enter_stage(rng, self.stage + 1);
        }
    }

    /// The station transmitted and the frame collided (no SACK): escalate.
    pub fn on_collision<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        self.enter_stage(rng, self.stage + 1);
    }

    /// The station transmitted successfully: back to stage 0 for the next
    /// frame.
    pub fn on_success<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        self.enter_stage(rng, 0);
    }
}

impl electrifi_state::PersistValue for BackoffState {
    fn encode(&self, w: &mut electrifi_state::SectionWriter) {
        w.put_u8(self.stage as u8);
        w.put_u32(self.bc);
        w.put_u32(self.dc);
    }

    fn decode(
        r: &mut electrifi_state::SectionReader<'_>,
    ) -> Result<Self, electrifi_state::StateError> {
        let stage = r.get_u8()? as usize;
        if stage >= CW_TABLE.len() {
            return Err(r.malformed(format!("backoff stage {stage}")));
        }
        let bc = r.get_u32()?;
        let dc = r.get_u32()?;
        if bc >= CW_TABLE[stage] || dc > DC_TABLE[stage] {
            return Err(r.malformed(format!("backoff counters bc={bc} dc={dc} at stage {stage}")));
        }
        Ok(BackoffState { stage, bc, dc })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn fresh_state_is_stage_zero_with_small_bc() {
        let mut r = rng();
        for _ in 0..100 {
            let s = BackoffState::new(&mut r);
            assert_eq!(s.stage(), 0);
            assert!(s.backoff_slots() < CW_TABLE[0]);
            assert_eq!(s.deferral_counter(), DC_TABLE[0]);
        }
    }

    #[test]
    fn bc_draws_cover_the_window() {
        let mut r = rng();
        let mut seen = [false; 8];
        for _ in 0..500 {
            seen[BackoffState::new(&mut r).backoff_slots() as usize] = true;
        }
        assert!(seen.iter().all(|s| *s), "all CW0 values should occur");
    }

    #[test]
    fn idle_slots_count_down_to_ready() {
        let mut r = rng();
        let mut s = BackoffState::new(&mut r);
        let bc = s.backoff_slots();
        s.elapse_idle(bc);
        assert!(s.ready());
        s.elapse_idle(10); // saturates
        assert!(s.ready());
    }

    #[test]
    fn busy_decrements_dc_then_escalates() {
        let mut r = rng();
        let mut s = BackoffState::new(&mut r);
        // Stage 0 has DC = 0: the very first busy event escalates.
        assert_eq!(s.deferral_counter(), 0);
        s.on_busy(&mut r);
        assert_eq!(s.stage(), 1);
        assert_eq!(s.deferral_counter(), DC_TABLE[1]);
        // Stage 1 has DC = 1: one busy tolerated, second escalates.
        s.on_busy(&mut r);
        assert_eq!(s.stage(), 1);
        assert_eq!(s.deferral_counter(), 0);
        s.on_busy(&mut r);
        assert_eq!(s.stage(), 2);
    }

    #[test]
    fn stage_saturates_at_last() {
        let mut r = rng();
        let mut s = BackoffState::new(&mut r);
        for _ in 0..50 {
            s.on_collision(&mut r);
        }
        assert_eq!(s.stage(), CW_TABLE.len() - 1);
        assert!(s.backoff_slots() < CW_TABLE[3]);
    }

    #[test]
    fn success_resets_to_stage_zero() {
        let mut r = rng();
        let mut s = BackoffState::new(&mut r);
        s.on_collision(&mut r);
        s.on_collision(&mut r);
        assert_eq!(s.stage(), 2);
        s.on_success(&mut r);
        assert_eq!(s.stage(), 0);
        assert!(s.backoff_slots() < CW_TABLE[0]);
    }

    #[test]
    fn mean_bc_grows_with_stage() {
        let mut r = rng();
        let mean_at_stage = |stage: usize, r: &mut StdRng| -> f64 {
            let mut acc = 0u64;
            for _ in 0..2000 {
                let mut s = BackoffState::new(r);
                for _ in 0..stage {
                    s.on_collision(r);
                }
                acc += s.backoff_slots() as u64;
            }
            acc as f64 / 2000.0
        };
        let m0 = mean_at_stage(0, &mut r);
        let m3 = mean_at_stage(3, &mut r);
        assert!((m0 - 3.5).abs() < 0.5, "m0={m0}");
        assert!((m3 - 31.5).abs() < 3.0, "m3={m3}");
    }
}
