//! The retained **reference stepper** for [`PlcSim`].
//!
//! This module is a frozen copy of the MAC hot loop as it stood before
//! the zero-allocation/idle-skip rewrite in `sim.rs`: per-step `Vec`
//! allocations for the ready/contender/winner lists, per-frame tone-map
//! clones, a fresh failed-PB list per reception, per-PB reassembler
//! probes, and a full flow scan on every idle step.
//!
//! It exists for two reasons:
//!
//! 1. **Bit-identity evidence.** The differential tests in
//!    `tests/bit_identity.rs` drive one simulation with
//!    [`PlcSim::run_until`] and a twin (same seed, same topology) with
//!    [`PlcSim::run_until_reference`] and assert every observable output
//!    — delivered packets, `f64::to_bits` of rate queries, PB counters,
//!    the clock itself — is identical. Any behavioural drift in the
//!    optimized path fails those tests.
//! 2. **Benchmarking.** `bench_mac` measures the reference and optimized
//!    steppers on the same workloads; `scripts/perf_gate.sh` gates on the
//!    ratio, which makes the speedup machine-independent.
//!
//! Keep this module in sync with *behaviour*, never with *implementation*:
//! when the optimized path intentionally changes observable behaviour,
//! the change must be mirrored here (and called out in DESIGN.md);
//! otherwise this file should not be touched.
//!
//! One knowing deviation: the old broadcast path grouped a frame's PBs by
//! packet via a `HashMap`, whose iteration order is nondeterministic
//! across processes. The copy here groups by first appearance, which is
//! what the hash grouping degenerates to for the single-packet broadcast
//! frames every workload produces. See `receive_broadcast` in `sim.rs`.

use crate::csma::BackoffState;
use crate::frame::{SofDelimiter, SofRecord};
use crate::pb::{pbs_for_packet, QueuedPb, PB_WIRE_BITS};
use crate::sim::{PlcSim, Priority};
use crate::timing;
use plc_phy::carrier::SYMBOL_US;
use plc_phy::tonemap::{ToneMap, TONEMAP_SLOTS};
use plc_phy::SnrSpectrum;
use simnet::rng::Distributions;
use simnet::time::{Duration, Time};

impl PlcSim {
    /// Run the simulation until `end` using the pre-optimization
    /// reference stepper. See the module docs for what this is for.
    pub fn run_until_reference(&mut self, end: Time) {
        while self.now < end {
            self.step_reference(end);
        }
    }

    /// One event step of the reference stepper (the old `step`).
    pub fn step_reference(&mut self, end: Time) {
        self.metrics.steps.inc();
        self.metrics.events_fired.inc();
        self.now = Self::skip_beacon_region(self.now);
        if self.now >= end {
            self.now = end;
            return;
        }
        self.refill_queues_reference();
        let ready: Vec<usize> = (0..self.stations.len())
            .filter(|&i| {
                self.stations[i]
                    .flows
                    .iter()
                    .any(|&f| !self.flows[f].queue.is_empty())
            })
            .collect();
        let top_priority = ready
            .iter()
            .map(|&i| self.station_priority(i))
            .max()
            .unwrap_or(Priority::Ca1);
        let contenders: Vec<usize> = ready
            .iter()
            .copied()
            .filter(|&i| self.station_priority(i) == top_priority)
            .collect();
        if contenders.is_empty() {
            // Idle medium: advance to the next arrival (or end) — always
            // via the full flow scan.
            let next = self.next_arrival().unwrap_or(end).min(end);
            self.now = Self::skip_beacon_region(next.max(self.now + Duration::from_micros(1)));
            return;
        }
        self.metrics.csma_attempts.add(contenders.len() as u64);
        for &i in &contenders {
            if self.stations[i].backoff.is_none() {
                self.stations[i].backoff = Some(BackoffState::new(&mut self.rng));
            }
        }
        let m = contenders
            .iter()
            .map(|&i| {
                self.stations[i]
                    .backoff
                    .as_ref()
                    .expect("set above")
                    .backoff_slots()
            })
            .min()
            .expect("non-empty");
        let contention = timing::SLOT * (timing::PRS_SLOTS + m as u64);
        let budget = Self::time_to_beacon(self.now);
        let min_needed =
            contention + timing::frame_exchange_overhead() + Duration::from_micros_f64(SYMBOL_US);
        if budget < min_needed {
            self.now = Self::skip_beacon_region(self.now + budget);
            return;
        }
        self.now += contention;
        let winners: Vec<usize> = contenders
            .iter()
            .copied()
            .filter(|&i| {
                self.stations[i]
                    .backoff
                    .as_ref()
                    .expect("set")
                    .backoff_slots()
                    == m
            })
            .collect();
        for &i in &contenders {
            if !winners.contains(&i) {
                let st = self.stations[i].backoff.as_mut().expect("set");
                st.elapse_idle(m);
            }
        }
        let frame_budget = (Self::time_to_beacon(self.now)
            .saturating_sub(timing::frame_exchange_overhead()))
        .min(timing::MAX_FRAME);
        if winners.len() == 1 {
            self.transmit_reference(winners[0], frame_budget, None);
        } else {
            self.collide_reference(&winners, frame_budget);
        }
        if !self.cfg.disable_deferral {
            for &i in &contenders {
                if !winners.contains(&i) {
                    let st = self.stations[i].backoff.as_mut().expect("set");
                    st.on_busy(&mut self.rng);
                    self.metrics.csma_deferrals.inc();
                }
            }
        }
    }

    fn refill_queues_reference(&mut self) {
        let cap = self.cfg.queue_cap_pbs;
        let now = self.now;
        let mut took = false;
        for fs in &mut self.flows {
            loop {
                let pkt_bytes = fs.flow.source.pkt_bytes();
                if fs.queue.len() + pbs_for_packet(pkt_bytes) as usize > cap {
                    break;
                }
                match fs.flow.source.take(now) {
                    Some(pkt) => {
                        took = true;
                        for pb in QueuedPb::segment(pkt.seq, pkt.bytes, pkt.created) {
                            fs.queue.push_back(pb);
                        }
                    }
                    None => break,
                }
            }
        }
        if took {
            // Keep the optimized path's arrival cache coherent even when
            // the two steppers are interleaved on one instance.
            self.arrival_cache = None;
        }
    }

    fn build_frame_reference(
        &mut self,
        station: usize,
        budget: Duration,
    ) -> Option<(usize, Vec<QueuedPb>, ToneMap, u64, Duration)> {
        let f = self.pick_flow(station)?;
        let is_broadcast = self.flows[f].flow.is_broadcast();
        let slot = self.now.tonemap_slot(TONEMAP_SLOTS);
        let map = if is_broadcast {
            self.robo.clone()
        } else {
            let src = self.idx(self.flows[f].flow.src);
            let dst = self.idx(self.flows[f].flow.dst);
            let rx = self.rx_state(src, dst);
            if rx.estimator.last_regen().is_some() {
                rx.estimator.tonemaps().slots[slot].clone()
            } else {
                self.metrics.sound_frames.inc();
                self.robo.clone()
            }
        };
        let bits_per_sym = map.info_bits_per_symbol();
        if bits_per_sym <= 0.0 {
            self.metrics.sound_frames.inc();
            let robo = self.robo.clone();
            return self.drain_pbs_reference(f, robo, budget);
        }
        self.drain_pbs_reference(f, map, budget)
    }

    fn drain_pbs_reference(
        &mut self,
        f: usize,
        map: ToneMap,
        budget: Duration,
    ) -> Option<(usize, Vec<QueuedPb>, ToneMap, u64, Duration)> {
        let bits_per_sym = map.info_bits_per_symbol() * self.cfg.frame_efficiency;
        let max_syms = (budget.as_micros_f64() / SYMBOL_US).floor() as u64;
        if max_syms == 0 || bits_per_sym <= 0.0 {
            return None;
        }
        let max_pbs = ((max_syms as f64 * bits_per_sym) / PB_WIRE_BITS as f64).floor() as usize;
        let take = self.flows[f].queue.len().min(max_pbs.max(1));
        let pbs: Vec<QueuedPb> = self.flows[f].queue.drain(..take).collect();
        let n_sym = ((pbs.len() as u64 * PB_WIRE_BITS) as f64 / bits_per_sym)
            .ceil()
            .max(1.0)
            .min(max_syms as f64) as u64;
        let duration = Duration::from_micros_f64(n_sym as f64 * SYMBOL_US);
        Some((f, pbs, map, n_sym, duration))
    }

    fn transmit_reference(&mut self, station: usize, budget: Duration, degraded_to: Option<f64>) {
        let Some((f, pbs, map, n_sym, duration)) = self.build_frame_reference(station, budget)
        else {
            self.now += timing::SLOT;
            return;
        };
        let slot = self.now.tonemap_slot(TONEMAP_SLOTS);
        let src = self.idx(self.flows[f].flow.src);
        let is_broadcast = self.flows[f].flow.is_broadcast();
        let mut seen = std::collections::HashSet::new();
        for pb in &pbs {
            if seen.insert(pb.packet_seq) {
                *self.flows[f].tx_counts.entry(pb.packet_seq).or_insert(0) += 1;
            }
        }
        if self.cfg.sniffer {
            self.sniffer.push(SofRecord {
                t: self.now,
                sof: SofDelimiter {
                    src: self.ids[src],
                    dst: self.flows[f].flow.dst,
                    ble_mbps: map.ble(),
                    tonemap_id: map.id,
                    slot: slot as u8,
                    n_symbols: n_sym,
                },
            });
        }
        if is_broadcast {
            self.receive_broadcast_reference(f, src, &pbs, &map, slot);
        } else {
            let dst = self.idx(self.flows[f].flow.dst);
            self.receive_unicast_reference(f, src, dst, pbs, &map, slot, n_sym, degraded_to);
        }
        self.now += timing::PREAMBLE
            + duration
            + timing::RIFS
            + timing::PREAMBLE
            + timing::CIFS
            + self.cfg.exchange_extra;
        if let Some(b) = self.stations[station].backoff.as_mut() {
            b.on_success(&mut self.rng);
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn receive_unicast_reference(
        &mut self,
        f: usize,
        src: usize,
        dst: usize,
        pbs: Vec<QueuedPb>,
        map: &ToneMap,
        slot: usize,
        n_sym: u64,
        degraded_to: Option<f64>,
    ) {
        let pbs_len = pbs.len();
        let mut pberr = self.pberr_for(src, dst, slot, map);
        if degraded_to.is_some() {
            pberr = pberr.max(self.cfg.capture_pberr);
        }
        let now = self.now;
        let mut failed: Vec<QueuedPb> = Vec::new();
        let mut n_err = 0u64;
        for pb in &pbs {
            if Distributions::bernoulli(&mut self.rng, pberr) {
                failed.push(*pb);
                n_err += 1;
            } else {
                self.flows[f].reassembler.accept(*pb, now);
            }
        }
        let n_total = pbs.len() as u64;
        self.metrics.sack_retrans_pbs.add(n_err);
        for pb in failed.into_iter().rev() {
            self.flows[f].queue.push_front(pb);
        }
        for done in self.flows[f].reassembler.take_completed() {
            if let Some(txc) = self.flows[f].tx_counts.remove(&done.seq) {
                self.flows[f].delivered_tx_counts.push(txc);
            }
            self.flows[f].delivered.push(done);
        }
        let gap = self.cfg.observe_min_gap;
        let refresh_needed = {
            let rx = self.rx_state(src, dst);
            rx.window.0 += n_total;
            rx.window.1 += n_err;
            rx.ampstat.0 += n_total;
            rx.ampstat.1 += n_err;
            rx.cumulative.0 += n_total;
            rx.cumulative.1 += n_err;
            rx.last_observe
                .is_none_or(|t| now.saturating_since(t) >= gap)
        };
        if refresh_needed {
            self.refresh_spectrum(src, dst, slot);
            let cached = &self
                .spectra
                .get(&(src, dst, slot as u8))
                .expect("just refreshed")
                .spec;
            let degraded;
            let spec = match degraded_to {
                Some(sinr) => {
                    degraded = SnrSpectrum {
                        snr_db: cached.snr_db.iter().map(|s| s.min(sinr)).collect(),
                    };
                    &degraded
                }
                None => cached,
            };
            let rx = self.rx.get_mut(&(src, dst)).expect("created above");
            rx.estimator
                .observe(&mut self.rng, slot, spec, n_sym, pbs_len as u32);
            rx.last_observe = Some(now);
        }
        let rx = self.rx.get_mut(&(src, dst)).expect("created above");
        let recent = if rx.window.0 >= 20 {
            rx.window.1 as f64 / rx.window.0 as f64
        } else {
            0.0
        };
        if rx.estimator.maybe_regenerate(now, recent) {
            rx.window = (0, 0);
            self.metrics.tonemap_updates.inc();
            let (src_id, dst_id) = (self.ids[src], self.ids[dst]);
            let ble = self.rx[&(src, dst)].estimator.ble_avg();
            self.obs.emit(now, "plc.mac", "tonemap_update", || {
                vec![
                    ("src".to_string(), src_id.into()),
                    ("dst".to_string(), dst_id.into()),
                    ("recent_pberr".to_string(), recent.into()),
                    ("ble_mbps".to_string(), ble.into()),
                ]
            });
        }
    }

    fn receive_broadcast_reference(
        &mut self,
        f: usize,
        src: usize,
        pbs: &[QueuedPb],
        map: &ToneMap,
        slot: usize,
    ) {
        let receivers: Vec<usize> = (0..self.stations.len())
            .filter(|&r| r != src && self.channels.contains_key(&Self::pair(src, r)))
            .collect();
        // First-appearance grouping (see module docs for why this is not
        // the original HashMap).
        let mut packets: Vec<(u64, u32)> = Vec::new();
        for pb in pbs {
            match packets.iter_mut().find(|(seq, _)| *seq == pb.packet_seq) {
                Some((_, n)) => *n += 1,
                None => packets.push((pb.packet_seq, 1)),
            }
        }
        for r in receivers {
            let pberr = self.pberr_for(src, r, slot, map);
            let mut lost_pkts = 0u64;
            let mut ok_pkts = 0u64;
            for (_, n_pbs) in &packets {
                let mut ok = true;
                for _ in 0..*n_pbs {
                    if Distributions::bernoulli(&mut self.rng, pberr) {
                        ok = false;
                    }
                }
                if ok {
                    ok_pkts += 1;
                } else {
                    lost_pkts += 1;
                }
            }
            let entry = self.flows[f]
                .broadcast_rx
                .entry(self.ids[r])
                .or_insert((0, 0));
            entry.0 += ok_pkts;
            entry.1 += lost_pkts;
        }
    }

    fn collide_reference(&mut self, winners: &[usize], budget: Duration) {
        self.metrics.csma_collisions.inc();
        let t = self.now;
        let n = winners.len();
        self.obs.emit(t, "plc.mac", "collision", || {
            vec![("stations".to_string(), n.into())]
        });
        let mut built: Vec<(usize, usize, Vec<QueuedPb>, ToneMap, u64, Duration)> = Vec::new();
        for &w in winners {
            if let Some((f, pbs, map, n_sym, dur)) = self.build_frame_reference(w, budget) {
                built.push((w, f, pbs, map, n_sym, dur));
            }
        }
        if built.is_empty() {
            self.now += timing::SLOT;
            return;
        }
        let max_dur = built.iter().map(|b| b.5).max().expect("non-empty");
        let longest = built
            .iter()
            .map(|b| b.5.as_nanos())
            .max()
            .expect("non-empty");
        let now = self.now;
        for (w, f, pbs, map, n_sym, dur) in built {
            let mut seen = std::collections::HashSet::new();
            for pb in &pbs {
                if seen.insert(pb.packet_seq) {
                    *self.flows[f].tx_counts.entry(pb.packet_seq).or_insert(0) += 1;
                }
            }
            let is_broadcast = self.flows[f].flow.is_broadcast();
            let captured = !is_broadcast && self.cfg.capture_effect && {
                let src = self.idx(self.flows[f].flow.src);
                let dst = self.idx(self.flows[f].flow.dst);
                let dominated =
                    longest as f64 >= self.cfg.capture_duration_ratio * dur.as_nanos() as f64;
                dominated && self.capture_sinr_reference(src, dst, w) > self.cfg.capture_sinr_db
            };
            if captured {
                let src = self.idx(self.flows[f].flow.src);
                let dst = self.idx(self.flows[f].flow.dst);
                let sinr = self.capture_sinr_reference(src, dst, w);
                let slot = now.tonemap_slot(TONEMAP_SLOTS);
                if self.cfg.sniffer {
                    self.sniffer.push(SofRecord {
                        t: now,
                        sof: SofDelimiter {
                            src: self.ids[src],
                            dst: self.flows[f].flow.dst,
                            ble_mbps: map.ble(),
                            tonemap_id: map.id,
                            slot: slot as u8,
                            n_symbols: n_sym,
                        },
                    });
                }
                self.receive_unicast_reference(f, src, dst, pbs, &map, slot, n_sym, Some(sinr));
            } else {
                for pb in pbs.into_iter().rev() {
                    self.flows[f].queue.push_front(pb);
                }
            }
            if let Some(b) = self.stations[w].backoff.as_mut() {
                b.on_collision(&mut self.rng);
            }
        }
        self.now += timing::PREAMBLE
            + max_dur
            + timing::RIFS
            + timing::PREAMBLE
            + timing::CIFS
            + self.cfg.exchange_extra;
    }

    /// Faithful copy of the pre-optimization capture scan: collects the
    /// interferer set into a fresh `Vec` and recomputes every wideband
    /// spectrum mean on every query. The optimized path memoizes both
    /// (`PlcSim::capture_sinr`); the answers are bit-identical because the
    /// same spectra are queried — and therefore refreshed — at the same
    /// instants.
    fn capture_sinr_reference(&mut self, src: usize, dst: usize, _this_winner: usize) -> f64 {
        let now = self.now;
        let slot = now.tonemap_slot(TONEMAP_SLOTS);
        let signal = self.spectrum(src, dst, slot).mean_db();
        let mut interference: f64 = f64::NEG_INFINITY;
        let others: Vec<usize> = (0..self.stations.len())
            .filter(|&i| i != src && i != dst && self.channels.contains_key(&Self::pair(i, dst)))
            .collect();
        for o in others {
            let m = self.spectrum(o, dst, slot).mean_db();
            interference = interference.max(m);
        }
        if interference.is_finite() {
            signal - interference
        } else {
            // No modelled interference path: effectively clean capture.
            40.0
        }
    }
}
