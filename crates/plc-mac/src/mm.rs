//! Management messages: the measurement interface of PLC devices.
//!
//! The paper retrieves all PLC metrics through vendor-specific management
//! messages (MMs) using the Qualcomm Atheros Open Powerline Toolkit
//! (paper §3.2, Table 2): `int6krate` for the average BLE, `ampstat` for
//! the PB error rate, plus device configuration (reset, static CCo,
//! sniffer mode). This module exposes the same operations over a
//! [`PlcSim`], with the toolkit's names, so experiment code reads like the
//! paper's methodology.
//!
//! MMs are ROBO-modulated short frames; their ~100 µs airtime at the
//! paper's polling rates (≤20 Hz) is negligible next to data traffic, so
//! the simulation answers them out of band.

use crate::sim::{PlcSim, StationId};
use serde::{Deserialize, Serialize};
use simnet::time::Time;

/// A snapshot of every link metric a device pair can report, as gathered
/// by one round of management messages.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkReport {
    /// Query time.
    pub t: Time,
    /// Average BLE over the six tone-map slots, Mb/s (`int6krate`).
    pub ble_avg_mbps: f64,
    /// PB error rate since the previous report (`ampstat`), if any PBs
    /// flowed.
    pub pberr: Option<f64>,
}

/// The toolkit facade: borrow the simulation, issue MMs.
pub struct PowerlineToolkit<'a> {
    sim: &'a mut PlcSim,
}

impl<'a> PowerlineToolkit<'a> {
    /// Attach the toolkit to a running simulation.
    pub fn new(sim: &'a mut PlcSim) -> Self {
        PowerlineToolkit { sim }
    }

    /// `int6krate`: average BLE the destination advertises for
    /// `src → dst`, Mb/s.
    pub fn int6krate(&self, src: StationId, dst: StationId) -> f64 {
        self.sim.int6krate(src, dst)
    }

    /// `ampstat`: PB error rate on `src → dst` since the last call.
    pub fn ampstat(&mut self, src: StationId, dst: StationId) -> Option<f64> {
        self.sim.ampstat(src, dst)
    }

    /// One full link report (BLE + PBerr) for `src → dst`.
    pub fn link_report(&mut self, src: StationId, dst: StationId) -> LinkReport {
        LinkReport {
            t: self.sim.now(),
            ble_avg_mbps: self.sim.int6krate(src, dst),
            pberr: self.sim.ampstat(src, dst),
        }
    }

    /// Per-slot BLE (`BLEs`), Mb/s.
    pub fn ble_slot(&self, src: StationId, dst: StationId, slot: usize) -> f64 {
        self.sim.ble_slot(src, dst, slot)
    }

    /// Factory-reset a device (clears channel-estimation state involving
    /// it, as the paper does before convergence experiments, §7.1).
    pub fn reset_device(&mut self, station: StationId) {
        self.sim.reset_device(station)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::{Flow, SimConfig};
    use simnet::grid::Grid;
    use simnet::traffic::TrafficSource;

    fn tiny_sim() -> PlcSim {
        let mut g = Grid::new();
        let a = g.add_outlet("a");
        let b = g.add_outlet("b");
        g.connect(a, b, 15.0);
        PlcSim::new(SimConfig::default(), &g, &[(0, a), (1, b)])
    }

    #[test]
    fn link_report_combines_ble_and_pberr() {
        let mut sim = tiny_sim();
        let _f = sim.add_flow(Flow::unicast(0, 1, TrafficSource::iperf_saturated()));
        sim.run_until(Time::from_secs(1));
        let mut tk = PowerlineToolkit::new(&mut sim);
        let report = tk.link_report(0, 1);
        assert!(report.ble_avg_mbps > 10.0);
        assert!(report.pberr.is_some());
        assert_eq!(report.t, Time::from_secs(1).max(report.t));
        // Second immediate report has a drained ampstat window.
        let report2 = tk.link_report(0, 1);
        assert!(report2.pberr.is_none());
    }

    #[test]
    fn reset_via_toolkit_matches_sim_reset() {
        let mut sim = tiny_sim();
        let _f = sim.add_flow(Flow::unicast(0, 1, TrafficSource::iperf_saturated()));
        sim.run_until(Time::from_secs(1));
        let before = sim.int6krate(0, 1);
        assert!(before > 10.0);
        PowerlineToolkit::new(&mut sim).reset_device(1);
        assert!(sim.int6krate(0, 1) < 10.0);
    }
}
