//! Reusable scratch buffers for the [`PlcSim`](crate::sim::PlcSim) hot
//! loop.
//!
//! Every `step()` of the contention-domain simulation used to allocate a
//! handful of short-lived vectors (ready/contender/winner index lists,
//! the drained PB list, a cloned tone map, the failed-PB list, …). A
//! [`SimScratch`] owns one long-lived instance of each buffer; the step
//! pipeline `mem::take`s the scratch at entry (so borrowing it mutably
//! alongside `&mut PlcSim` is legal) and restores it at exit. After a few
//! warm-up steps the buffers reach their steady-state capacities and the
//! loop runs without touching the heap — the property
//! `bench_mac`/`scripts/perf_gate.sh` gate on.

use crate::pb::QueuedPb;
use plc_phy::tonemap::ToneMap;
use plc_phy::SnrSpectrum;
use simnet::time::Duration;

/// One frame built during a collision, pooled so simultaneous winners
/// don't re-allocate their PB lists and tone-map copies every collision.
#[derive(Debug)]
pub(crate) struct BuiltFrame {
    /// Station index that transmitted.
    pub station: usize,
    /// Flow index the frame drained.
    pub flow: usize,
    /// Information bits per OFDM symbol of `map` (memoized).
    pub bits: f64,
    /// Frame body length in OFDM symbols.
    pub n_sym: u64,
    /// Frame body duration.
    pub dur: Duration,
    /// The PBs the frame carries.
    pub pbs: Vec<QueuedPb>,
    /// The tone map the frame was modulated with.
    pub map: ToneMap,
}

impl Default for BuiltFrame {
    fn default() -> Self {
        BuiltFrame {
            station: 0,
            flow: 0,
            bits: 0.0,
            n_sym: 0,
            dur: Duration(0),
            pbs: Vec::new(),
            map: ToneMap::default(),
        }
    }
}

/// Scratch buffers owned by a `PlcSim`, reused across steps.
#[derive(Debug, Default)]
pub(crate) struct SimScratch {
    /// Set once the scratch has served a step (drives the
    /// `plc.mac.scratch_reuses` counter).
    pub warm: bool,
    /// Stations with at least one backlogged flow.
    pub ready: Vec<usize>,
    /// `ready` filtered to the winning PRS priority class.
    pub contenders: Vec<usize>,
    /// Contenders whose backoff hit the minimum slot count.
    pub winners: Vec<usize>,
    /// PBs of the frame currently being built/transmitted.
    pub tx_pbs: Vec<QueuedPb>,
    /// Tone map of the frame currently being built/transmitted.
    pub tx_map: ToneMap,
    /// Packet seqs already counted for U-ETX in the current frame.
    pub seen: Vec<u64>,
    /// PBs that failed the error draw in the current reception.
    pub failed: Vec<QueuedPb>,
    /// Receiver station indices of the current broadcast frame.
    pub receivers: Vec<usize>,
    /// PB counts per packet (in frame order) of a broadcast frame.
    pub bcast_runs: Vec<u32>,
    /// Capture-degraded spectrum buffer (collision decode path).
    pub degraded: SnrSpectrum,
    /// Pool of frames built during a collision; `n_built` are live.
    pub built: Vec<BuiltFrame>,
    /// Number of live entries in `built` for the current collision.
    pub n_built: usize,
}

impl SimScratch {
    /// Reserve every buffer past its worst-case steady-state size, so no
    /// record-high burst can trigger a capacity regrowth mid-run.
    ///
    /// The warm-up period normally grows these organically; this is for
    /// callers (like `bench_mac`) that need a *provably* allocation-free
    /// window rather than an amortized one.
    pub fn reserve(&mut self, n_stations: usize, max_frame_pbs: usize, n_carriers: usize) {
        self.ready.reserve(n_stations);
        self.contenders.reserve(n_stations);
        self.winners.reserve(n_stations);
        self.tx_pbs.reserve(max_frame_pbs);
        self.seen.reserve(max_frame_pbs);
        self.failed.reserve(max_frame_pbs);
        self.receivers.reserve(n_stations);
        self.bcast_runs.reserve(max_frame_pbs);
        self.degraded.snr_db.reserve(n_carriers);
        // Materialize one pooled frame per possible collision winner,
        // each with its PB list and tone-map carrier vector pre-sized.
        while self.built.len() < n_stations {
            self.built.push(BuiltFrame::default());
        }
        self.tx_map.carriers.reserve(n_carriers);
        for b in &mut self.built {
            b.pbs.reserve(max_frame_pbs);
            b.map.carriers.reserve(n_carriers);
        }
    }
}
