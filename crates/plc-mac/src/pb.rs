//! Physical blocks and two-level frame aggregation.
//!
//! Ethernet packets are segmented into **physical blocks** of 512 payload
//! bytes (plus an 8-byte PB header, 520 B on the wire); PBs are merged
//! into PLC frames; a selective acknowledgment reports per-PB success so
//! only corrupted PBs are retransmitted (paper §2.2, Fig. 1).

use electrifi_state::{Persist, PersistValue, SectionReader, SectionWriter, StateError};
use serde::{Deserialize, Serialize};
use simnet::time::Time;

/// Payload bytes carried by one PB.
pub const PB_PAYLOAD_BYTES: u32 = 512;
/// On-the-wire bytes of one PB (payload + header).
pub const PB_WIRE_BYTES: u32 = 520;
/// On-the-wire bits of one PB.
pub const PB_WIRE_BITS: u64 = PB_WIRE_BYTES as u64 * 8;

/// Number of PBs needed to carry a packet of `bytes` payload bytes.
/// A 1500-byte Ethernet packet produces 3 PBs (paper §8.1); PLC always
/// transmits at least one PB, padding short packets (paper footnote 9).
pub fn pbs_for_packet(bytes: u32) -> u32 {
    bytes.div_ceil(PB_PAYLOAD_BYTES).max(1)
}

/// One physical block queued for transmission, tagged with the packet it
/// belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct QueuedPb {
    /// Flow-scoped packet sequence number this PB carries a piece of.
    pub packet_seq: u64,
    /// Index of this PB within the packet (0-based).
    pub index: u32,
    /// Total PBs of the packet.
    pub of: u32,
    /// Creation time of the parent packet (for delay accounting).
    pub created: Time,
}

impl QueuedPb {
    /// Segment a packet into its PBs, yielding them without allocating —
    /// the MAC hot loop pushes these straight into its ring queue.
    pub fn segments(packet_seq: u64, bytes: u32, created: Time) -> impl Iterator<Item = QueuedPb> {
        let n = pbs_for_packet(bytes);
        (0..n).map(move |index| QueuedPb {
            packet_seq,
            index,
            of: n,
            created,
        })
    }

    /// Segment a packet into its PBs.
    pub fn segment(packet_seq: u64, bytes: u32, created: Time) -> Vec<QueuedPb> {
        Self::segments(packet_seq, bytes, created).collect()
    }
}

/// Which PBs of a pending packet have arrived. Packets are at most a few
/// PBs (1500 B → 3), so the common case is a single `u64` mask; packets
/// larger than 64 PBs (not produced by any paper workload, but the API
/// allows them) fall back to a boolean vector.
#[derive(Debug, Clone, Serialize, Deserialize)]
enum PbBitmap {
    /// Bit `i` set ⇔ PB `i` received (packets of ≤ 64 PBs).
    Small(u64),
    /// One flag per PB (packets of > 64 PBs).
    Large(Vec<bool>),
}

impl PbBitmap {
    fn new(of: u32) -> Self {
        if of <= 64 {
            PbBitmap::Small(0)
        } else {
            PbBitmap::Large(vec![false; of as usize])
        }
    }

    /// Mark PB `index` received. Out-of-range indices are ignored, like
    /// the out-of-range `get_mut` of the vector representation.
    fn set(&mut self, index: u32, of: u32) {
        match self {
            PbBitmap::Small(m) => {
                if index < of.min(64) {
                    *m |= 1u64 << index;
                }
            }
            PbBitmap::Large(v) => {
                if let Some(slot) = v.get_mut(index as usize) {
                    *slot = true;
                }
            }
        }
    }

    fn or_mask(&mut self, mask: u64, of: u32) {
        match self {
            PbBitmap::Small(m) => *m |= mask & Self::full_mask(of),
            PbBitmap::Large(v) => {
                for i in 0..64u32 {
                    if mask & (1u64 << i) != 0 {
                        if let Some(slot) = v.get_mut(i as usize) {
                            *slot = true;
                        }
                    }
                }
            }
        }
    }

    fn full_mask(of: u32) -> u64 {
        if of >= 64 {
            u64::MAX
        } else {
            (1u64 << of) - 1
        }
    }

    fn complete(&self, of: u32) -> bool {
        match self {
            PbBitmap::Small(m) => *m == Self::full_mask(of.max(1)),
            PbBitmap::Large(v) => v.iter().all(|r| *r),
        }
    }
}

/// Receiver-side packet reassembly: tracks which PBs of each packet have
/// arrived and reports completed packets.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Reassembler {
    /// packet_seq -> (received bitmap, total, created)
    pending: std::collections::HashMap<u64, (PbBitmap, u32, Time)>,
    completed: Vec<CompletedPacket>,
}

/// A packet fully received.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CompletedPacket {
    /// Flow-scoped sequence number.
    pub seq: u64,
    /// When the source created it.
    pub created: Time,
    /// When the last PB arrived.
    pub delivered: Time,
}

impl Reassembler {
    /// Fresh reassembler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reserve capacity for `pkts` in-flight and completed packets, so a
    /// record-high burst can't trigger a capacity regrowth mid-run (see
    /// `PlcSim::reserve_flow_buffers`).
    pub fn reserve(&mut self, pkts: usize) {
        self.pending.reserve(pkts);
        self.completed.reserve(pkts);
    }

    /// A PB arrived intact at time `now`.
    pub fn accept(&mut self, pb: QueuedPb, now: Time) {
        let entry = self
            .pending
            .entry(pb.packet_seq)
            .or_insert_with(|| (PbBitmap::new(pb.of), pb.of, pb.created));
        entry.0.set(pb.index, entry.1);
        if entry.0.complete(entry.1) {
            let (_, _, created) = self.pending.remove(&pb.packet_seq).expect("just inserted");
            self.completed.push(CompletedPacket {
                seq: pb.packet_seq,
                created,
                delivered: now,
            });
        }
    }

    /// A contiguous run of PBs of one packet arrived intact at `now`:
    /// `mask` has bit `i` set for each received PB index `i`. One hash
    /// lookup instead of one per PB — the hot MAC receive path groups the
    /// (queue-ordered, hence packet-contiguous) PBs of a frame into runs.
    /// Equivalent to calling [`accept`](Self::accept) for every set bit in
    /// index order. Only valid for packets of ≤ 64 PBs.
    pub fn accept_run(&mut self, packet_seq: u64, of: u32, created: Time, mask: u64, now: Time) {
        debug_assert!(of <= 64, "accept_run is only for small packets");
        let entry = self
            .pending
            .entry(packet_seq)
            .or_insert_with(|| (PbBitmap::new(of), of, created));
        entry.0.or_mask(mask, entry.1);
        if entry.0.complete(entry.1) {
            let (_, _, created) = self.pending.remove(&packet_seq).expect("just inserted");
            self.completed.push(CompletedPacket {
                seq: packet_seq,
                created,
                delivered: now,
            });
        }
    }

    /// Drain packets completed so far (in completion order).
    pub fn take_completed(&mut self) -> Vec<CompletedPacket> {
        std::mem::take(&mut self.completed)
    }

    /// Drain completed packets through a callback (in completion order),
    /// keeping the internal buffer's allocation — the heap-free
    /// counterpart of [`take_completed`](Self::take_completed).
    pub fn drain_completed_with(&mut self, mut f: impl FnMut(CompletedPacket)) {
        for p in self.completed.drain(..) {
            f(p);
        }
    }

    /// Packets still missing PBs.
    pub fn pending_count(&self) -> usize {
        self.pending.len()
    }
}

impl PersistValue for QueuedPb {
    fn encode(&self, w: &mut SectionWriter) {
        w.put_u64(self.packet_seq);
        w.put_u32(self.index);
        w.put_u32(self.of);
        w.put(&self.created);
    }

    fn decode(r: &mut SectionReader<'_>) -> Result<Self, StateError> {
        let pb = QueuedPb {
            packet_seq: r.get_u64()?,
            index: r.get_u32()?,
            of: r.get_u32()?,
            created: r.get()?,
        };
        if pb.of == 0 || pb.index >= pb.of {
            return Err(r.malformed(format!("queued PB index {}/{}", pb.index, pb.of)));
        }
        Ok(pb)
    }
}

impl PersistValue for CompletedPacket {
    fn encode(&self, w: &mut SectionWriter) {
        w.put_u64(self.seq);
        w.put(&self.created);
        w.put(&self.delivered);
    }

    fn decode(r: &mut SectionReader<'_>) -> Result<Self, StateError> {
        Ok(CompletedPacket {
            seq: r.get_u64()?,
            created: r.get()?,
            delivered: r.get()?,
        })
    }
}

impl PersistValue for PbBitmap {
    fn encode(&self, w: &mut SectionWriter) {
        match self {
            PbBitmap::Small(m) => {
                w.put_u8(0);
                w.put_u64(*m);
            }
            PbBitmap::Large(v) => {
                w.put_u8(1);
                w.put_seq(v);
            }
        }
    }

    fn decode(r: &mut SectionReader<'_>) -> Result<Self, StateError> {
        match r.get_u8()? {
            0 => Ok(PbBitmap::Small(r.get_u64()?)),
            1 => Ok(PbBitmap::Large(r.get_vec()?)),
            tag => Err(r.malformed(format!("PB bitmap tag {tag}"))),
        }
    }
}

/// Checkpointing: pending packets are encoded sorted by sequence number
/// (the hash map's iteration order is not canonical); completed packets
/// keep their completion order.
impl Persist for Reassembler {
    fn save_state(&self, w: &mut SectionWriter) {
        let mut pending: Vec<(&u64, &(PbBitmap, u32, Time))> = self.pending.iter().collect();
        pending.sort_by_key(|(seq, _)| **seq);
        w.put_u64(pending.len() as u64);
        for (seq, (bitmap, of, created)) in pending {
            w.put_u64(*seq);
            bitmap.encode(w);
            w.put_u32(*of);
            w.put(created);
        }
        w.put_seq(&self.completed);
    }

    fn load_state(&mut self, r: &mut SectionReader<'_>) -> Result<(), StateError> {
        let n = r.get_u64()?;
        self.pending.clear();
        for _ in 0..n {
            let seq = r.get_u64()?;
            let bitmap = PbBitmap::decode(r)?;
            let of = r.get_u32()?;
            let created: Time = r.get()?;
            self.pending.insert(seq, (bitmap, of, created));
        }
        self.completed = r.get_vec()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pb_count_matches_paper_examples() {
        assert_eq!(pbs_for_packet(1500), 3); // §8.1: 1500 B => 3 PBs
        assert_eq!(pbs_for_packet(1300), 3);
        assert_eq!(pbs_for_packet(1024), 2);
        assert_eq!(pbs_for_packet(512), 1);
        assert_eq!(pbs_for_packet(200), 1); // sub-PB probes still send 1 PB
        assert_eq!(pbs_for_packet(0), 1);
    }

    #[test]
    fn segmentation_produces_indexed_pbs() {
        let pbs = QueuedPb::segment(7, 1500, Time::from_millis(3));
        assert_eq!(pbs.len(), 3);
        for (i, pb) in pbs.iter().enumerate() {
            assert_eq!(pb.index as usize, i);
            assert_eq!(pb.of, 3);
            assert_eq!(pb.packet_seq, 7);
        }
    }

    #[test]
    fn reassembly_completes_when_all_pbs_arrive() {
        let mut r = Reassembler::new();
        let pbs = QueuedPb::segment(1, 1500, Time::ZERO);
        r.accept(pbs[0], Time::from_millis(1));
        r.accept(pbs[2], Time::from_millis(2));
        assert!(r.take_completed().is_empty());
        assert_eq!(r.pending_count(), 1);
        r.accept(pbs[1], Time::from_millis(9));
        let done = r.take_completed();
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].seq, 1);
        assert_eq!(done[0].delivered, Time::from_millis(9));
        assert_eq!(r.pending_count(), 0);
    }

    #[test]
    fn duplicate_pbs_are_harmless() {
        let mut r = Reassembler::new();
        let pbs = QueuedPb::segment(2, 512, Time::ZERO);
        r.accept(pbs[0], Time::from_millis(1));
        // Retransmission of an already-received PB (SACK raced): ignore.
        assert_eq!(r.take_completed().len(), 1);
        r.accept(pbs[0], Time::from_millis(2));
        // Re-accepting re-opens nothing permanent; completing again is a
        // duplicate delivery which the caller may filter by seq.
        assert_eq!(r.take_completed().len(), 1);
    }

    #[test]
    fn segments_iterator_matches_segment() {
        for bytes in [0u32, 200, 512, 1024, 1300, 1500, 9000] {
            let it: Vec<QueuedPb> = QueuedPb::segments(9, bytes, Time::from_millis(5)).collect();
            assert_eq!(it, QueuedPb::segment(9, bytes, Time::from_millis(5)));
        }
    }

    #[test]
    fn accept_run_equals_per_pb_accepts() {
        let pbs = QueuedPb::segment(4, 1500, Time::from_millis(1));
        let mut a = Reassembler::new();
        let mut b = Reassembler::new();
        // PBs 0 and 2 in one frame, PB 1 retransmitted later.
        a.accept(pbs[0], Time::from_millis(2));
        a.accept(pbs[2], Time::from_millis(2));
        b.accept_run(4, 3, Time::from_millis(1), 0b101, Time::from_millis(2));
        assert_eq!(a.pending_count(), b.pending_count());
        a.accept(pbs[1], Time::from_millis(3));
        b.accept_run(4, 3, Time::from_millis(1), 0b010, Time::from_millis(3));
        assert_eq!(a.take_completed(), b.take_completed());
    }

    #[test]
    fn drain_completed_with_keeps_order_and_empties() {
        let mut r = Reassembler::new();
        for seq in 0..5u64 {
            for pb in QueuedPb::segment(seq, 512, Time::ZERO) {
                r.accept(pb, Time::from_millis(seq));
            }
        }
        let mut seen = Vec::new();
        r.drain_completed_with(|p| seen.push(p.seq));
        assert_eq!(seen, vec![0, 1, 2, 3, 4]);
        assert!(r.take_completed().is_empty());
    }

    #[test]
    fn oversized_packets_use_the_large_bitmap() {
        // 40 kB → 79 PBs: exceeds the u64 mask, exercising the fallback.
        let pbs = QueuedPb::segment(1, 40_000, Time::ZERO);
        assert!(pbs.len() > 64);
        let mut r = Reassembler::new();
        for pb in &pbs {
            r.accept(*pb, Time::from_millis(7));
        }
        let done = r.take_completed();
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].delivered, Time::from_millis(7));
    }

    #[test]
    fn interleaved_packets_complete_independently() {
        let mut r = Reassembler::new();
        let a = QueuedPb::segment(10, 1024, Time::ZERO);
        let b = QueuedPb::segment(11, 1024, Time::ZERO);
        r.accept(a[0], Time::from_millis(1));
        r.accept(b[0], Time::from_millis(1));
        r.accept(b[1], Time::from_millis(2));
        let done = r.take_completed();
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].seq, 11);
        r.accept(a[1], Time::from_millis(3));
        assert_eq!(r.take_completed()[0].seq, 10);
    }
}
