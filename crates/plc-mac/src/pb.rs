//! Physical blocks and two-level frame aggregation.
//!
//! Ethernet packets are segmented into **physical blocks** of 512 payload
//! bytes (plus an 8-byte PB header, 520 B on the wire); PBs are merged
//! into PLC frames; a selective acknowledgment reports per-PB success so
//! only corrupted PBs are retransmitted (paper §2.2, Fig. 1).

use serde::{Deserialize, Serialize};
use simnet::time::Time;

/// Payload bytes carried by one PB.
pub const PB_PAYLOAD_BYTES: u32 = 512;
/// On-the-wire bytes of one PB (payload + header).
pub const PB_WIRE_BYTES: u32 = 520;
/// On-the-wire bits of one PB.
pub const PB_WIRE_BITS: u64 = PB_WIRE_BYTES as u64 * 8;

/// Number of PBs needed to carry a packet of `bytes` payload bytes.
/// A 1500-byte Ethernet packet produces 3 PBs (paper §8.1); PLC always
/// transmits at least one PB, padding short packets (paper footnote 9).
pub fn pbs_for_packet(bytes: u32) -> u32 {
    bytes.div_ceil(PB_PAYLOAD_BYTES).max(1)
}

/// One physical block queued for transmission, tagged with the packet it
/// belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct QueuedPb {
    /// Flow-scoped packet sequence number this PB carries a piece of.
    pub packet_seq: u64,
    /// Index of this PB within the packet (0-based).
    pub index: u32,
    /// Total PBs of the packet.
    pub of: u32,
    /// Creation time of the parent packet (for delay accounting).
    pub created: Time,
}

impl QueuedPb {
    /// Segment a packet into its PBs.
    pub fn segment(packet_seq: u64, bytes: u32, created: Time) -> Vec<QueuedPb> {
        let n = pbs_for_packet(bytes);
        (0..n)
            .map(|index| QueuedPb {
                packet_seq,
                index,
                of: n,
                created,
            })
            .collect()
    }
}

/// Receiver-side packet reassembly: tracks which PBs of each packet have
/// arrived and reports completed packets.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Reassembler {
    /// packet_seq -> (received bitmap, total, created)
    pending: std::collections::HashMap<u64, (Vec<bool>, u32, Time)>,
    completed: Vec<CompletedPacket>,
}

/// A packet fully received.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CompletedPacket {
    /// Flow-scoped sequence number.
    pub seq: u64,
    /// When the source created it.
    pub created: Time,
    /// When the last PB arrived.
    pub delivered: Time,
}

impl Reassembler {
    /// Fresh reassembler.
    pub fn new() -> Self {
        Self::default()
    }

    /// A PB arrived intact at time `now`.
    pub fn accept(&mut self, pb: QueuedPb, now: Time) {
        let entry = self
            .pending
            .entry(pb.packet_seq)
            .or_insert_with(|| (vec![false; pb.of as usize], pb.of, pb.created));
        if let Some(slot) = entry.0.get_mut(pb.index as usize) {
            *slot = true;
        }
        if entry.0.iter().all(|r| *r) {
            let (_, _, created) = self.pending.remove(&pb.packet_seq).expect("just inserted");
            self.completed.push(CompletedPacket {
                seq: pb.packet_seq,
                created,
                delivered: now,
            });
        }
    }

    /// Drain packets completed so far (in completion order).
    pub fn take_completed(&mut self) -> Vec<CompletedPacket> {
        std::mem::take(&mut self.completed)
    }

    /// Packets still missing PBs.
    pub fn pending_count(&self) -> usize {
        self.pending.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pb_count_matches_paper_examples() {
        assert_eq!(pbs_for_packet(1500), 3); // §8.1: 1500 B => 3 PBs
        assert_eq!(pbs_for_packet(1300), 3);
        assert_eq!(pbs_for_packet(1024), 2);
        assert_eq!(pbs_for_packet(512), 1);
        assert_eq!(pbs_for_packet(200), 1); // sub-PB probes still send 1 PB
        assert_eq!(pbs_for_packet(0), 1);
    }

    #[test]
    fn segmentation_produces_indexed_pbs() {
        let pbs = QueuedPb::segment(7, 1500, Time::from_millis(3));
        assert_eq!(pbs.len(), 3);
        for (i, pb) in pbs.iter().enumerate() {
            assert_eq!(pb.index as usize, i);
            assert_eq!(pb.of, 3);
            assert_eq!(pb.packet_seq, 7);
        }
    }

    #[test]
    fn reassembly_completes_when_all_pbs_arrive() {
        let mut r = Reassembler::new();
        let pbs = QueuedPb::segment(1, 1500, Time::ZERO);
        r.accept(pbs[0], Time::from_millis(1));
        r.accept(pbs[2], Time::from_millis(2));
        assert!(r.take_completed().is_empty());
        assert_eq!(r.pending_count(), 1);
        r.accept(pbs[1], Time::from_millis(9));
        let done = r.take_completed();
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].seq, 1);
        assert_eq!(done[0].delivered, Time::from_millis(9));
        assert_eq!(r.pending_count(), 0);
    }

    #[test]
    fn duplicate_pbs_are_harmless() {
        let mut r = Reassembler::new();
        let pbs = QueuedPb::segment(2, 512, Time::ZERO);
        r.accept(pbs[0], Time::from_millis(1));
        // Retransmission of an already-received PB (SACK raced): ignore.
        assert_eq!(r.take_completed().len(), 1);
        r.accept(pbs[0], Time::from_millis(2));
        // Re-accepting re-opens nothing permanent; completing again is a
        // duplicate delivery which the caller may filter by seq.
        assert_eq!(r.take_completed().len(), 1);
    }

    #[test]
    fn interleaved_packets_complete_independently() {
        let mut r = Reassembler::new();
        let a = QueuedPb::segment(10, 1024, Time::ZERO);
        let b = QueuedPb::segment(11, 1024, Time::ZERO);
        r.accept(a[0], Time::from_millis(1));
        r.accept(b[0], Time::from_millis(1));
        r.accept(b[1], Time::from_millis(2));
        let done = r.take_completed();
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].seq, 11);
        r.accept(a[1], Time::from_millis(3));
        assert_eq!(r.take_completed()[0].seq, 10);
    }
}
