//! Checkpoint/restore for [`PlcSim`].
//!
//! The simulation is rebuilt from its static configuration (grid,
//! channels, flow definitions) first; `load_state` then restores the
//! dynamic state on top. The split between what is persisted and what is
//! rebuilt follows the determinism contract of `electrifi-state`:
//!
//! **Persisted** — the clock, the RNG position, per-station backoff and
//! round-robin pointers, per-link estimator sufficient statistics and PB
//! counters, per-flow traffic-source clocks, transmit queues, reassembly
//! and delivery state, sniffer captures, and the *timestamps* of the
//! cached per-slot spectra (plus the generation counter that version-
//! stamps the capture cache).
//!
//! **Rebuilt** — everything that is a pure function of persisted state:
//! spectrum buffers are recomputed from the channel model at their saved
//! timestamps (`spectrum_at_phase_into` is pure in (channel, time,
//! phase)), PBerr/mean/info-bits memos restart cold, the capture-entry
//! memo and the scratch buffers restart cold. All of these rebuilds are
//! bit-identical to the warm state by construction — the differential
//! reference stepper (`reference.rs`, `tests/bit_identity.rs`) is the
//! proof harness for exactly this class of cache.
//!
//! Everything map-shaped is encoded sorted by key so `save → load → save`
//! is the identity on bytes (asserted by `tests/persist_roundtrip.rs`).

use crate::csma::BackoffState;
use crate::sim::{CachedSpectrum, PlcSim, RxState, StationId};
use electrifi_state::{Persist, SectionReader, SectionWriter, StateError};
use plc_phy::tonemap::TONEMAP_SLOTS;
use plc_phy::{ChannelEstimator, SnrSpectrum};
use simnet::time::Time;

impl Persist for PlcSim {
    fn save_state(&self, w: &mut SectionWriter) {
        // Shape guards: a snapshot must only load into an identically
        // configured simulation.
        w.put_u64(self.stations.len() as u64);
        w.put_u64(self.flows.len() as u64);
        w.put_u64(self.n_carriers as u64);
        w.put(&self.now);
        w.put(&self.rng);

        // Per-station MAC state. Outlets and flow memberships are
        // construction inputs; only the contention state is dynamic.
        for st in &self.stations {
            w.put(&st.backoff);
            w.put(&st.rr);
        }

        // Receiver-side link state, sorted by (src, dst).
        let mut rx_keys: Vec<(usize, usize)> = self.rx.keys().copied().collect();
        rx_keys.sort_unstable();
        w.put_u64(rx_keys.len() as u64);
        for key in rx_keys {
            let rx = &self.rx[&key];
            w.put_u64(key.0 as u64);
            w.put_u64(key.1 as u64);
            rx.estimator.save_state(w);
            w.put(&rx.window);
            w.put(&rx.ampstat);
            w.put(&rx.cumulative);
            w.put(&rx.last_observe);
            // bits_memo is a pure memo of the estimator's tone maps;
            // rebuilt lazily.
        }

        // Per-flow state, in flow order. Endpoints are stored only as a
        // guard against loading into a differently-wired simulation.
        for fs in &self.flows {
            w.put_u16(fs.flow.src);
            w.put_u16(fs.flow.dst);
            fs.flow.source.save_state(w);
            w.put_u64(fs.queue.len() as u64);
            for pb in &fs.queue {
                w.put(pb);
            }
            let mut tx: Vec<(u64, u32)> = fs.tx_counts.iter().map(|(k, v)| (*k, *v)).collect();
            tx.sort_unstable_by_key(|(seq, _)| *seq);
            w.put_u64(tx.len() as u64);
            for (seq, count) in tx {
                w.put_u64(seq);
                w.put_u32(count);
            }
            w.put_seq(&fs.delivered_tx_counts);
            fs.reassembler.save_state(w);
            w.put_seq(&fs.delivered);
            let mut bc: Vec<(StationId, (u64, u64))> =
                fs.broadcast_rx.iter().map(|(k, v)| (*k, *v)).collect();
            bc.sort_unstable_by_key(|(id, _)| *id);
            w.put_u64(bc.len() as u64);
            for (id, (ok, lost)) in bc {
                w.put_u16(id);
                w.put_u64(ok);
                w.put_u64(lost);
            }
            w.put_u64(fs.dropped);
        }

        w.put_seq(&self.sniffer);

        // Spectrum cache: keys and timestamps only — the buffers are a
        // pure function of (channel, time, slot phase) and are recomputed
        // on load.
        let mut spec_keys: Vec<(usize, usize, u8)> = self.spectra.keys().copied().collect();
        spec_keys.sort_unstable();
        w.put_u64(spec_keys.len() as u64);
        for key in spec_keys {
            w.put_u64(key.0 as u64);
            w.put_u64(key.1 as u64);
            w.put_u8(key.2);
            w.put(&self.spectra[&key].at);
        }
        w.put_u64(self.spectra_gen);
    }

    fn load_state(&mut self, r: &mut SectionReader<'_>) -> Result<(), StateError> {
        let n_stations = r.get_u64()? as usize;
        if n_stations != self.stations.len() {
            return Err(r.malformed(format!(
                "snapshot has {n_stations} stations, simulation has {}",
                self.stations.len()
            )));
        }
        let n_flows = r.get_u64()? as usize;
        if n_flows != self.flows.len() {
            return Err(r.malformed(format!(
                "snapshot has {n_flows} flows, simulation has {}",
                self.flows.len()
            )));
        }
        let n_carriers = r.get_u64()? as usize;
        if n_carriers != self.n_carriers {
            return Err(r.malformed(format!(
                "snapshot has {n_carriers} carriers, simulation has {}",
                self.n_carriers
            )));
        }
        self.now = r.get()?;
        self.rng = r.get()?;

        for i in 0..n_stations {
            let backoff: Option<BackoffState> = r.get()?;
            let rr: usize = r.get()?;
            let n = self.stations[i].flows.len();
            if (n == 0 && rr != 0) || (n > 0 && rr >= n) {
                return Err(r.malformed(format!(
                    "station {i} round-robin pointer {rr} out of range (flows: {n})"
                )));
            }
            self.stations[i].backoff = backoff;
            self.stations[i].rr = rr;
        }

        let n_rx = r.get_u64()? as usize;
        self.rx.clear();
        for _ in 0..n_rx {
            let src = r.get_u64()? as usize;
            let dst = r.get_u64()? as usize;
            if src >= n_stations || dst >= n_stations || src == dst {
                return Err(r.malformed(format!("rx link ({src}, {dst}) out of range")));
            }
            let mut estimator = ChannelEstimator::new(self.cfg.estimator, self.n_carriers);
            estimator.load_state(r)?;
            let state = RxState {
                estimator,
                window: r.get()?,
                ampstat: r.get()?,
                cumulative: r.get()?,
                last_observe: r.get()?,
                bits_memo: [None; TONEMAP_SLOTS],
            };
            for (label, (total, err)) in [
                ("window", state.window),
                ("ampstat", state.ampstat),
                ("cumulative", state.cumulative),
            ] {
                if err > total {
                    return Err(r.malformed(format!(
                        "rx ({src}, {dst}) {label} counter has {err} errors of {total} PBs"
                    )));
                }
            }
            if self.rx.insert((src, dst), state).is_some() {
                return Err(r.malformed(format!("duplicate rx link ({src}, {dst})")));
            }
        }

        for i in 0..n_flows {
            let src = r.get_u16()?;
            let dst = r.get_u16()?;
            let fs = &mut self.flows[i];
            if src != fs.flow.src || dst != fs.flow.dst {
                return Err(r.malformed(format!(
                    "flow {i} endpoints {src}->{dst} do not match configured {}->{}",
                    fs.flow.src, fs.flow.dst
                )));
            }
            fs.flow.source.load_state(r)?;
            let q_len = r.get_u64()? as usize;
            fs.queue.clear();
            for _ in 0..q_len {
                fs.queue.push_back(r.get()?);
            }
            let n_tx = r.get_u64()? as usize;
            fs.tx_counts.clear();
            for _ in 0..n_tx {
                let seq = r.get_u64()?;
                let count = r.get_u32()?;
                if count == 0 {
                    return Err(r.malformed(format!("flow {i} packet {seq} has zero tx count")));
                }
                if fs.tx_counts.insert(seq, count).is_some() {
                    return Err(r.malformed(format!("flow {i} duplicate tx count for {seq}")));
                }
            }
            fs.delivered_tx_counts = r.get_vec()?;
            fs.reassembler.load_state(r)?;
            fs.delivered = r.get_vec()?;
            let n_bc = r.get_u64()? as usize;
            fs.broadcast_rx.clear();
            for _ in 0..n_bc {
                let id = r.get_u16()?;
                let ok = r.get_u64()?;
                let lost = r.get_u64()?;
                if fs.broadcast_rx.insert(id, (ok, lost)).is_some() {
                    return Err(r.malformed(format!("flow {i} duplicate broadcast receiver {id}")));
                }
            }
            fs.dropped = r.get_u64()?;
        }

        self.sniffer = r.get_vec()?;

        let n_spec = r.get_u64()? as usize;
        self.spectra.clear();
        for _ in 0..n_spec {
            let src = r.get_u64()? as usize;
            let dst = r.get_u64()? as usize;
            let slot = r.get_u8()?;
            let at: Time = r.get()?;
            if src >= n_stations || dst >= n_stations || src == dst {
                return Err(r.malformed(format!("spectrum link ({src}, {dst}) out of range")));
            }
            if slot as usize >= TONEMAP_SLOTS {
                return Err(r.malformed(format!("spectrum slot {slot} out of range")));
            }
            let Some(ch) = self.channels.get(&Self::pair(src, dst)) else {
                return Err(r.malformed(format!(
                    "spectrum for ({src}, {dst}) but no channel connects them"
                )));
            };
            // Rebuild the buffer exactly as `refresh_spectrum` computed it
            // at save time: the spectrum is pure in (channel, time, phase).
            let mut entry = CachedSpectrum {
                at,
                spec: SnrSpectrum::empty(),
                pberr_for: None,
                mean_db: None,
            };
            let phase = (slot as f64 + 0.5) / TONEMAP_SLOTS as f64;
            ch.spectrum_at_phase_into(Self::dir(src, dst), at, phase, &mut entry.spec);
            if self.spectra.insert((src, dst, slot), entry).is_some() {
                return Err(r.malformed(format!("duplicate spectrum entry ({src}, {dst}, {slot})")));
            }
        }
        self.spectra_gen = r.get_u64()?;

        // Pure caches restart cold; their rebuilds are bit-identical.
        for entry in &mut self.capture_cache {
            *entry = Default::default();
        }
        self.scratch = Default::default();
        self.arrival_cache = None;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use crate::sim::{Flow, PlcSim, SimConfig, StationId};
    use electrifi_state::{SnapshotReader, SnapshotWriter, StateError};
    use simnet::appliance::ApplianceKind;
    use simnet::grid::{Grid, NodeId};
    use simnet::schedule::Schedule;
    use simnet::time::Time;
    use simnet::traffic::TrafficSource;

    fn grid4() -> (Grid, Vec<(StationId, NodeId)>) {
        let mut g = Grid::new();
        let j0 = g.add_junction("j0");
        let j1 = g.add_junction("j1");
        g.connect(j0, j1, 15.0);
        let mut outlets = Vec::new();
        for (i, j) in [(0u16, j0), (1, j0), (2, j1), (3, j1)] {
            let o = g.add_outlet(format!("s{i}"));
            g.connect(j, o, 2.0 + i as f64);
            outlets.push((i, o));
        }
        let oa = g.add_outlet("tv");
        g.connect(j1, oa, 2.0);
        g.attach(oa, ApplianceKind::Monitor, Schedule::AlwaysOn);
        (g, outlets)
    }

    fn build() -> (PlcSim, usize, usize) {
        let (g, outlets) = grid4();
        let cfg = SimConfig {
            sniffer: true,
            ..SimConfig::default()
        };
        let mut s = PlcSim::new(cfg, &g, &outlets);
        let f = s.add_flow(Flow::unicast(0, 2, TrafficSource::iperf_saturated()));
        let b = s.add_flow(Flow::broadcast(1, TrafficSource::probe_150kbps()));
        (s, f, b)
    }

    fn snapshot(sim: &PlcSim) -> Vec<u8> {
        let mut w = SnapshotWriter::new();
        w.save("mac.sim", sim);
        w.to_bytes()
    }

    #[test]
    fn resumed_sim_is_bit_identical() {
        let (mut straight, f, b) = build();
        let (mut resumed, _, _) = build();

        let cut = Time::from_millis(400);
        let end = Time::from_millis(900);
        straight.run_until(cut);
        let bytes = snapshot(&straight);
        SnapshotReader::from_bytes(&bytes)
            .unwrap()
            .load("mac.sim", &mut resumed)
            .unwrap();
        assert_eq!(resumed.now(), straight.now());

        straight.run_until(end);
        resumed.run_until(end);
        assert_eq!(straight.now(), resumed.now(), "clocks diverged");
        let (d1, d2) = (straight.take_delivered(f), resumed.take_delivered(f));
        assert_eq!(d1.len(), d2.len(), "delivery counts diverged");
        for (a, b) in d1.iter().zip(&d2) {
            assert_eq!(
                (a.seq, a.created, a.delivered),
                (b.seq, b.created, b.delivered)
            );
        }
        assert_eq!(straight.take_tx_counts(f), resumed.take_tx_counts(f));
        assert_eq!(
            straight.int6krate(0, 2).to_bits(),
            resumed.int6krate(0, 2).to_bits(),
            "BLE estimate diverged"
        );
        assert_eq!(straight.pb_counters(0, 2), resumed.pb_counters(0, 2));
        assert_eq!(straight.broadcast_stats(b), resumed.broadcast_stats(b));
        let (r1, r2) = (straight.sniffer_records(), resumed.sniffer_records());
        assert_eq!(r1.len(), r2.len(), "sniffer capture count diverged");
        for (a, b) in r1.iter().zip(r2) {
            assert_eq!(a.t, b.t);
            assert_eq!(a.sof.ble_mbps.to_bits(), b.sof.ble_mbps.to_bits());
        }
    }

    #[test]
    fn reencode_is_byte_identical() {
        let (mut s, _, _) = build();
        s.run_until(Time::from_millis(300));
        let first = snapshot(&s);
        let (mut fresh, _, _) = build();
        SnapshotReader::from_bytes(&first)
            .unwrap()
            .load("mac.sim", &mut fresh)
            .unwrap();
        let second = snapshot(&fresh);
        assert_eq!(first, second, "encode → decode → encode must be identity");
    }

    #[test]
    fn shape_mismatch_is_typed() {
        let (mut s, _, _) = build();
        s.run_until(Time::from_millis(100));
        let bytes = snapshot(&s);

        // A simulation with different flows must refuse the snapshot.
        let (g, outlets) = grid4();
        let mut other = PlcSim::new(SimConfig::default(), &g, &outlets);
        let _ = other.add_flow(Flow::unicast(3, 1, TrafficSource::iperf_saturated()));
        match SnapshotReader::from_bytes(&bytes)
            .unwrap()
            .load("mac.sim", &mut other)
        {
            Err(StateError::Malformed { section, .. }) => assert_eq!(section, "mac.sim"),
            other => panic!("expected Malformed, got {other:?}"),
        }
    }
}
