//! Central-coordinator (CCo) management and logical networks.
//!
//! Every HomePlug AV station must join a logical network managed by a
//! **central coordinator** (paper §3.1): "Usually, the CCo is the first
//! station plugged and it can change dynamically if another station has
//! better channel capabilities". Logical networks are separated by MAC
//! encryption keys — only members of the same network can exchange data,
//! which is why the paper's two-board floor forms two networks.
//!
//! The paper pins CCos statically (with the Open Powerline Toolkit) to
//! keep the topology stable; both policies are implemented here.

use crate::sim::StationId;
use serde::{Deserialize, Serialize};

/// How the network selects its coordinator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CcoPolicy {
    /// Pinned by the operator (the paper's testbed configuration).
    Static(StationId),
    /// HomePlug-style dynamic selection: the station with the best
    /// network-wide channel capability coordinates; re-elected as
    /// membership or capabilities change.
    Dynamic,
}

/// Per-station capability summary used for dynamic election: how many
/// peers the station can hear and how well.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CcoCandidate {
    /// The station.
    pub station: StationId,
    /// Number of network members it has a usable channel to.
    pub reachable_peers: usize,
    /// Mean SNR (dB) over those channels.
    pub mean_snr_db: f64,
}

/// Pick the coordinator among candidates: maximum reachable peers, ties
/// broken by mean SNR, then by lowest id (deterministic).
pub fn elect_cco(candidates: &[CcoCandidate]) -> Option<StationId> {
    candidates
        .iter()
        .max_by(|a, b| {
            a.reachable_peers
                .cmp(&b.reachable_peers)
                .then_with(|| {
                    a.mean_snr_db
                        .partial_cmp(&b.mean_snr_db)
                        .expect("finite SNRs")
                })
                .then_with(|| b.station.cmp(&a.station))
        })
        .map(|c| c.station)
}

/// A logical AVLN (AV logical network): encryption domain + CCo.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LogicalNetwork {
    /// Network identifier (derived from the network membership key).
    pub nid: u64,
    /// Member stations, sorted.
    pub members: Vec<StationId>,
    /// Coordinator policy.
    pub policy: CcoPolicy,
    /// Current coordinator.
    pub cco: StationId,
}

impl LogicalNetwork {
    /// Form a network from its first station ("the CCo is the first
    /// station plugged").
    pub fn form(nid: u64, first: StationId, policy: CcoPolicy) -> Self {
        let cco = match policy {
            CcoPolicy::Static(id) => id,
            CcoPolicy::Dynamic => first,
        };
        LogicalNetwork {
            nid,
            members: vec![first],
            policy,
            cco,
        }
    }

    /// Is a station a member (shares the encryption key)?
    pub fn is_member(&self, id: StationId) -> bool {
        self.members.binary_search(&id).is_ok()
    }

    /// A station joins; with a dynamic policy, provide the updated
    /// capability table to trigger re-election.
    pub fn join(&mut self, id: StationId, capabilities: &[CcoCandidate]) {
        if let Err(pos) = self.members.binary_search(&id) {
            self.members.insert(pos, id);
        }
        self.reelect(capabilities);
    }

    /// A station leaves (unplugged); the CCo hands over if it left.
    pub fn leave(&mut self, id: StationId, capabilities: &[CcoCandidate]) {
        if let Ok(pos) = self.members.binary_search(&id) {
            self.members.remove(pos);
        }
        if self.cco == id || matches!(self.policy, CcoPolicy::Dynamic) {
            self.reelect(capabilities);
        }
    }

    fn reelect(&mut self, capabilities: &[CcoCandidate]) {
        match self.policy {
            CcoPolicy::Static(id) => {
                if self.is_member(id) {
                    self.cco = id;
                } else if let Some(&first) = self.members.first() {
                    // The pinned CCo is gone: fall back to the oldest
                    // member until the operator re-pins.
                    self.cco = first;
                }
            }
            CcoPolicy::Dynamic => {
                let member_caps: Vec<CcoCandidate> = capabilities
                    .iter()
                    .filter(|c| self.is_member(c.station))
                    .copied()
                    .collect();
                if let Some(new) = elect_cco(&member_caps) {
                    self.cco = new;
                } else if let Some(&first) = self.members.first() {
                    self.cco = first;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cand(station: StationId, peers: usize, snr: f64) -> CcoCandidate {
        CcoCandidate {
            station,
            reachable_peers: peers,
            mean_snr_db: snr,
        }
    }

    #[test]
    fn election_prefers_reach_then_snr_then_id() {
        let c = vec![cand(1, 3, 20.0), cand(2, 4, 10.0), cand(3, 4, 15.0)];
        assert_eq!(elect_cco(&c), Some(3)); // most peers, better SNR
        let tie = vec![cand(5, 2, 20.0), cand(4, 2, 20.0)];
        assert_eq!(elect_cco(&tie), Some(4)); // lowest id wins ties
        assert_eq!(elect_cco(&[]), None);
    }

    #[test]
    fn first_station_coordinates_dynamic_network() {
        let n = LogicalNetwork::form(0xA, 7, CcoPolicy::Dynamic);
        assert_eq!(n.cco, 7);
        assert!(n.is_member(7));
    }

    #[test]
    fn better_joiner_takes_over_dynamically() {
        let mut n = LogicalNetwork::form(0xA, 7, CcoPolicy::Dynamic);
        let caps = vec![cand(7, 1, 15.0), cand(3, 5, 30.0)];
        n.join(3, &caps);
        assert_eq!(n.cco, 3, "station with better capabilities coordinates");
        assert!(n.is_member(3) && n.is_member(7));
    }

    #[test]
    fn static_pin_survives_joins() {
        let mut n = LogicalNetwork::form(0xB, 11, CcoPolicy::Static(11));
        let caps = vec![cand(11, 1, 10.0), cand(4, 9, 40.0)];
        n.join(4, &caps);
        assert_eq!(n.cco, 11, "the paper pins CCos statically");
    }

    #[test]
    fn cco_departure_hands_over() {
        let mut n = LogicalNetwork::form(0xC, 1, CcoPolicy::Dynamic);
        n.join(2, &[cand(1, 2, 20.0), cand(2, 2, 18.0)]);
        n.join(3, &[cand(1, 2, 20.0), cand(2, 2, 18.0), cand(3, 2, 19.0)]);
        assert_eq!(n.cco, 1);
        n.leave(1, &[cand(2, 1, 18.0), cand(3, 1, 19.0)]);
        assert!(!n.is_member(1));
        assert_eq!(n.cco, 3, "best remaining candidate takes over");
    }

    #[test]
    fn static_fallback_when_pin_leaves() {
        let mut n = LogicalNetwork::form(0xD, 11, CcoPolicy::Static(11));
        n.join(4, &[]);
        n.leave(11, &[]);
        assert_eq!(n.cco, 4, "oldest member stands in for the missing pin");
    }

    #[test]
    fn membership_is_sorted_and_deduplicated() {
        let mut n = LogicalNetwork::form(0xE, 5, CcoPolicy::Dynamic);
        n.join(2, &[]);
        n.join(9, &[]);
        n.join(2, &[]);
        assert_eq!(n.members, vec![2, 5, 9]);
    }
}
