//! Differential bit-identity suite: the optimized hot loop
//! ([`PlcSim::run_until`]) must produce **byte-identical** observables to
//! the retained reference stepper
//! ([`PlcSim::run_until_reference`](plc_mac::sim::PlcSim)) on every
//! workload shape the paper's figures use — same seed, same RNG draw
//! sequence, same `f64` bit patterns.
//!
//! The golden tests pin the figure-shaped workloads (Fig. 9 sniffer
//! captures, Fig. 16 / Table 3 saturated meshes, Fig. 21 broadcast,
//! Fig. 22 retransmission counts, priority and ablation variants); the
//! proptest sweeps topology size, traffic mix, seed, queue capacity and
//! ablation flags. Everything funnels into one FNV-style digest over the
//! raw bits of every observable, so any divergence — a reordered RNG
//! draw, an off-by-one symbol count, a drifted estimate — flips the hash.

use plc_mac::sim::{Flow, PlcSim, Priority, SimConfig, StationId};
use proptest::prelude::*;
use simnet::appliance::ApplianceKind;
use simnet::grid::Grid;
use simnet::schedule::Schedule;
use simnet::time::{Duration, Time};
use simnet::traffic::{TrafficPattern, TrafficSource};

/// One flow of a scenario, kept around so the digest can query the
/// link-level estimator state for exactly this (src, dst) pair.
#[derive(Clone, Debug)]
struct FlowSpec {
    src: StationId,
    /// `None` = broadcast.
    dst: Option<StationId>,
    pattern: TrafficPattern,
    start_ms: u64,
    priority: Priority,
}

#[derive(Clone, Debug)]
struct Scenario {
    n_stations: u16,
    flows: Vec<FlowSpec>,
    cfg: SimConfig,
    run_ms: u64,
}

/// Bus-topology grid: stations hang off a junction chain, with a couple
/// of appliances for channel texture (mirrors the sim's unit fixture and
/// the procedural grids the figure experiments use).
fn bus_grid(n: u16) -> (Grid, Vec<(StationId, simnet::grid::NodeId)>) {
    let mut g = Grid::new();
    let mut junctions = Vec::new();
    let n_j = (n as usize).div_ceil(2).max(2);
    for j in 0..n_j {
        junctions.push(g.add_junction(format!("j{j}")));
        if j > 0 {
            g.connect(junctions[j - 1], junctions[j], 9.0 + j as f64);
        }
    }
    let mut outlets = Vec::new();
    for i in 0..n {
        let o = g.add_outlet(format!("s{i}"));
        g.connect(junctions[i as usize % n_j], o, 2.0 + i as f64);
        outlets.push((i, o));
    }
    let oa = g.add_outlet("pc");
    g.connect(junctions[0], oa, 2.0);
    g.attach(oa, ApplianceKind::DesktopPc, Schedule::AlwaysOn);
    let ob = g.add_outlet("printer");
    g.connect(junctions[n_j - 1], ob, 2.5);
    g.attach(ob, ApplianceKind::LaserPrinter, Schedule::AlwaysOn);
    (g, outlets)
}

fn build(scn: &Scenario) -> (PlcSim, Vec<usize>) {
    let (g, outlets) = bus_grid(scn.n_stations);
    let mut sim = PlcSim::new(scn.cfg.clone(), &g, &outlets);
    let mut handles = Vec::new();
    for fs in &scn.flows {
        let source = TrafficSource::new(fs.pattern, Time::from_millis(fs.start_ms));
        let flow = match fs.dst {
            Some(d) => Flow::unicast(fs.src, d, source),
            None => Flow::broadcast(fs.src, source),
        }
        .with_priority(fs.priority);
        handles.push(sim.add_flow(flow));
    }
    (sim, handles)
}

fn mix(h: &mut u64, v: u64) {
    *h ^= v;
    *h = h.wrapping_mul(0x0000_0100_0000_01b3);
}

/// Fold every observable of a finished simulation into one digest:
/// delivered packet identities and timestamps, per-packet frame counts,
/// queue drops, broadcast per-receiver counters, cumulative PB counters,
/// the bit patterns of the advertised BLE on every flow's link, every
/// sniffer capture, and the simulation clock itself.
fn digest(sim: &mut PlcSim, scn: &Scenario, handles: &[usize]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    mix(&mut h, sim.now().as_nanos());
    for (fs, &f) in scn.flows.iter().zip(handles) {
        for p in sim.take_delivered(f) {
            mix(&mut h, p.seq);
            mix(&mut h, p.created.as_nanos());
            mix(&mut h, p.delivered.as_nanos());
        }
        for c in sim.take_tx_counts(f) {
            mix(&mut h, c as u64);
        }
        mix(&mut h, sim.dropped(f));
        match fs.dst {
            Some(d) => {
                mix(&mut h, sim.int6krate(fs.src, d).to_bits());
                let (total, err) = sim.pb_counters(fs.src, d);
                mix(&mut h, total);
                mix(&mut h, err);
            }
            None => {
                let mut rows: Vec<(StationId, u64, u64)> = sim
                    .broadcast_stats(f)
                    .iter()
                    .map(|(&r, &(ok, lost))| (r, ok, lost))
                    .collect();
                rows.sort_unstable();
                for (r, ok, lost) in rows {
                    mix(&mut h, r as u64);
                    mix(&mut h, ok);
                    mix(&mut h, lost);
                }
            }
        }
    }
    for rec in sim.sniffer_records() {
        mix(&mut h, rec.t.as_nanos());
        mix(&mut h, rec.sof.src as u64);
        mix(&mut h, rec.sof.dst as u64);
        mix(&mut h, rec.sof.ble_mbps.to_bits());
        mix(&mut h, rec.sof.tonemap_id as u64);
        mix(&mut h, rec.sof.slot as u64);
        mix(&mut h, rec.sof.n_symbols);
    }
    h
}

/// Run a scenario through both steppers and assert digest equality.
fn assert_bit_identical(scn: Scenario) {
    let end = Time::from_millis(scn.run_ms);
    let (mut opt, h1) = build(&scn);
    opt.run_until(end);
    let d_opt = digest(&mut opt, &scn, &h1);

    let (mut refr, h2) = build(&scn);
    refr.run_until_reference(end);
    let d_ref = digest(&mut refr, &scn, &h2);

    assert_eq!(
        d_opt, d_ref,
        "optimized and reference steppers diverged on {scn:?}"
    );
}

/// A fine-grained-stepping variant: both sims are advanced in small
/// `run_until` chunks — the pattern the temporal experiments use, and
/// the one that exercises the idle-skip cache hardest, since every
/// chunk boundary on an idle medium re-consults the cached minimum
/// next-arrival without an intervening enqueue.
fn assert_bit_identical_chunked(scn: Scenario, chunk_us: u64) {
    let end = Time::from_millis(scn.run_ms);
    let (mut opt, h1) = build(&scn);
    let mut t = Time::ZERO;
    while t < end {
        t = (t + Duration::from_micros(chunk_us)).min(end);
        opt.run_until(t);
    }
    let d_opt = digest(&mut opt, &scn, &h1);

    let (mut refr, h2) = build(&scn);
    let mut t = Time::ZERO;
    while t < end {
        t = (t + Duration::from_micros(chunk_us)).min(end);
        refr.run_until_reference(t);
    }
    let d_ref = digest(&mut refr, &scn, &h2);

    assert_eq!(d_opt, d_ref, "chunked stepping diverged on {scn:?}");
}

fn saturated() -> TrafficPattern {
    TrafficPattern::Saturated { pkt_bytes: 1500 }
}

fn probe() -> TrafficPattern {
    TrafficPattern::Cbr {
        rate_bps: 150_000.0,
        pkt_bytes: 1500,
    }
}

// ----- Golden figure-shaped workloads -----

/// Fig. 9: one saturated pair, sniffer on — SoF captures must match to
/// the bit (timestamps, BLE floats, symbol counts).
#[test]
fn golden_fig9_sniffed_saturated_pair() {
    assert_bit_identical(Scenario {
        n_stations: 4,
        flows: vec![FlowSpec {
            src: 0,
            dst: Some(2),
            pattern: saturated(),
            start_ms: 0,
            priority: Priority::Ca1,
        }],
        cfg: SimConfig {
            sniffer: true,
            ..SimConfig::default()
        },
        run_ms: 800,
    });
}

/// Fig. 16 / Table 3: a saturated many-station mesh — the workload the
/// perf gate benchmarks, so its bit-identity matters most.
#[test]
fn golden_fig16_saturated_mesh() {
    let flows = (0..10u16)
        .map(|i| FlowSpec {
            src: i,
            dst: Some((i + 1) % 10),
            pattern: saturated(),
            start_ms: 0,
            priority: Priority::Ca1,
        })
        .collect();
    assert_bit_identical(Scenario {
        n_stations: 10,
        flows,
        cfg: SimConfig::default(),
        run_ms: 400,
    });
}

/// Fig. 22-style: slow probes (retransmission counting) with a
/// saturated interferer, chunk-stepped to hammer the idle-skip cache.
#[test]
fn golden_fig22_probes_with_background() {
    let scn = Scenario {
        n_stations: 5,
        flows: vec![
            FlowSpec {
                src: 0,
                dst: Some(4),
                pattern: probe(),
                start_ms: 0,
                priority: Priority::Ca1,
            },
            FlowSpec {
                src: 1,
                dst: Some(3),
                pattern: TrafficPattern::Bursts {
                    rate_bps: 2_000_000.0,
                    pkt_bytes: 1500,
                    burst_len: 8,
                },
                start_ms: 20,
                priority: Priority::Ca1,
            },
        ],
        cfg: SimConfig::default(),
        run_ms: 1_500,
    };
    assert_bit_identical_chunked(scn, 700);
}

/// Fig. 21-style: broadcast probes to all stations.
#[test]
fn golden_fig21_broadcast_probes() {
    assert_bit_identical(Scenario {
        n_stations: 6,
        flows: vec![FlowSpec {
            src: 2,
            dst: None,
            pattern: TrafficPattern::Cbr {
                rate_bps: 120_000.0,
                pkt_bytes: 1500,
            },
            start_ms: 0,
            priority: Priority::Ca1,
        }],
        cfg: SimConfig::default(),
        run_ms: 2_000,
    });
}

/// File transfer (finite source) + CA2 priority probe: exercises
/// priority resolution, the source-exhaustion path of the arrival cache,
/// and flow completion.
#[test]
fn golden_file_transfer_with_priority_probe() {
    assert_bit_identical(Scenario {
        n_stations: 4,
        flows: vec![
            FlowSpec {
                src: 0,
                dst: Some(3),
                pattern: TrafficPattern::FileTransfer {
                    total_bytes: 2_000_000,
                    pkt_bytes: 1500,
                },
                start_ms: 0,
                priority: Priority::Ca1,
            },
            FlowSpec {
                src: 1,
                dst: Some(2),
                pattern: probe(),
                start_ms: 5,
                priority: Priority::Ca2,
            },
        ],
        cfg: SimConfig::default(),
        run_ms: 1_000,
    });
}

/// Pathological queue cap: a saturated source that can never enqueue a
/// whole packet. The arrival cache must stay disabled (now-dependent
/// source with an empty queue) without behavioural drift.
#[test]
fn golden_tiny_queue_cap() {
    assert_bit_identical_chunked(
        Scenario {
            n_stations: 4,
            flows: vec![FlowSpec {
                src: 0,
                dst: Some(2),
                pattern: saturated(),
                start_ms: 0,
                priority: Priority::Ca1,
            }],
            cfg: SimConfig {
                queue_cap_pbs: 1,
                ..SimConfig::default()
            },
            run_ms: 200,
        },
        500,
    );
}

/// The 802.11-style ablation (no deferral counter) with collisions and
/// capture: stresses the pooled-frame collision path.
#[test]
fn golden_deferral_ablation_collisions() {
    let flows = (0..4u16)
        .map(|i| FlowSpec {
            src: i,
            dst: Some((i + 2) % 4),
            pattern: saturated(),
            start_ms: 0,
            priority: Priority::Ca1,
        })
        .collect();
    assert_bit_identical(Scenario {
        n_stations: 4,
        flows,
        cfg: SimConfig {
            disable_deferral: true,
            sniffer: true,
            ..SimConfig::default()
        },
        run_ms: 500,
    });
}

// ----- Property-based sweep -----

/// Raw per-flow draw: ((src, dst), (pattern kind, pattern parameter),
/// (is-broadcast, is-CA2), start ms). Decoded by [`decode_flow`].
type RawFlow = ((u16, u16), (u8, u64), (bool, bool), u64);

fn decode_flow(n_stations: u16, raw: RawFlow) -> FlowSpec {
    let ((src_raw, dst_raw), (kind, param), (bcast, ca2), start_ms) = raw;
    let src = src_raw % n_stations;
    let dst_candidate = dst_raw % n_stations;
    let dst = if bcast {
        None
    } else if dst_candidate == src {
        Some((src + 1) % n_stations)
    } else {
        Some(dst_candidate)
    };
    let pattern = match kind % 4 {
        0 => TrafficPattern::Saturated { pkt_bytes: 1500 },
        1 => TrafficPattern::Cbr {
            rate_bps: 50_000.0 + (param % 1000) as f64 * 2_000.0,
            pkt_bytes: 1500,
        },
        2 => TrafficPattern::Bursts {
            rate_bps: 100_000.0 + (param % 1000) as f64 * 3_000.0,
            pkt_bytes: 1500,
            burst_len: 2 + (param % 8) as u32,
        },
        _ => TrafficPattern::FileTransfer {
            total_bytes: 100_000 + param % 3_000_000,
            pkt_bytes: 1500,
        },
    };
    FlowSpec {
        src,
        dst,
        pattern,
        start_ms,
        priority: if ca2 { Priority::Ca2 } else { Priority::Ca1 },
    }
}

#[allow(clippy::too_many_arguments)]
fn decode_scenario(
    n_stations: u16,
    raw_flows: Vec<RawFlow>,
    seed: u64,
    sniffer: bool,
    disable_deferral: bool,
    cap_sel: u8,
    run_ms: u64,
) -> Scenario {
    let flows = raw_flows
        .into_iter()
        .map(|r| decode_flow(n_stations, r))
        .collect();
    Scenario {
        n_stations,
        flows,
        cfg: SimConfig {
            seed,
            sniffer,
            disable_deferral,
            queue_cap_pbs: [2usize, 64, 512][cap_sel as usize % 3],
            ..SimConfig::default()
        },
        run_ms,
    }
}

proptest! {
    /// Any topology/traffic/seed/ablation combination produces identical
    /// digests from the optimized and reference steppers.
    #[test]
    fn prop_optimized_matches_reference(
        n_stations in 3u16..7,
        raw_flows in collection::vec(
            ((0u16..6, 0u16..6), (0u8..4, any::<u64>()), (any::<bool>(), any::<bool>()), 0u64..50),
            1..4,
        ),
        (seed, sniffer, disable_deferral) in (any::<u64>(), any::<bool>(), any::<bool>()),
        (cap_sel, run_ms) in (0u8..3, 60u64..200),
    ) {
        assert_bit_identical(decode_scenario(
            n_stations, raw_flows, seed, sniffer, disable_deferral, cap_sel, run_ms,
        ));
    }

    /// Chunked fine-grained stepping (idle-skip heavy) matches too: the
    /// optimized path consults the arrival cache at every chunk boundary.
    #[test]
    fn prop_chunked_stepping_matches(
        n_stations in 3u16..7,
        raw_flows in collection::vec(
            ((0u16..6, 0u16..6), (0u8..4, any::<u64>()), (any::<bool>(), any::<bool>()), 0u64..50),
            1..3,
        ),
        (seed, sniffer, disable_deferral) in (any::<u64>(), any::<bool>(), any::<bool>()),
        (cap_sel, run_ms, chunk_us) in (0u8..3, 60u64..150, 200u64..2_000),
    ) {
        let scn = decode_scenario(
            n_stations, raw_flows, seed, sniffer, disable_deferral, cap_sel, run_ms,
        );
        assert_bit_identical_chunked(scn, chunk_us);
    }
}
