//! Property suite for the `electrifi-state` persistence layer.
//!
//! Three families, all over randomized MAC scenarios (the same
//! topology/traffic/seed space as `bit_identity.rs`):
//!
//! * **canonical encoding** — encode → decode → encode is byte-identical
//!   for [`PlcSim`], [`EventQueue`] and raw RNG streams, so a snapshot
//!   of a snapshot can never drift;
//! * **bit-identical resume** — a sim snapshotted mid-run, loaded into a
//!   freshly built sim and run to the end produces exactly the digest of
//!   the uninterrupted run (same RNG draws, same `f64` bit patterns);
//! * **malformed-input fuzz** — any single-byte flip or truncation of a
//!   valid snapshot either fails with a typed [`StateError`] (never a
//!   panic) or — for the one benign flip, a version downgrade in the
//!   header — still decodes to a state that re-encodes identically.

use electrifi_state::{PersistValue, SectionReader, SectionWriter, SnapshotReader, SnapshotWriter};
use plc_mac::sim::{Flow, PlcSim, Priority, SimConfig, StationId};
use proptest::collection;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use simnet::appliance::ApplianceKind;
use simnet::event::EventQueue;
use simnet::grid::Grid;
use simnet::schedule::Schedule;
use simnet::time::Time;
use simnet::traffic::{TrafficPattern, TrafficSource};

#[derive(Clone, Debug)]
struct FlowSpec {
    src: StationId,
    /// `None` = broadcast.
    dst: Option<StationId>,
    pattern: TrafficPattern,
    start_ms: u64,
    priority: Priority,
}

#[derive(Clone, Debug)]
struct Scenario {
    n_stations: u16,
    flows: Vec<FlowSpec>,
    cfg: SimConfig,
    run_ms: u64,
    /// Snapshot point, as a fraction of `run_ms` in (0, 1).
    cut_frac: f64,
}

fn bus_grid(n: u16) -> (Grid, Vec<(StationId, simnet::grid::NodeId)>) {
    let mut g = Grid::new();
    let mut junctions = Vec::new();
    let n_j = (n as usize).div_ceil(2).max(2);
    for j in 0..n_j {
        junctions.push(g.add_junction(format!("j{j}")));
        if j > 0 {
            g.connect(junctions[j - 1], junctions[j], 9.0 + j as f64);
        }
    }
    let mut outlets = Vec::new();
    for i in 0..n {
        let o = g.add_outlet(format!("s{i}"));
        g.connect(junctions[i as usize % n_j], o, 2.0 + i as f64);
        outlets.push((i, o));
    }
    let oa = g.add_outlet("pc");
    g.connect(junctions[0], oa, 2.0);
    g.attach(oa, ApplianceKind::DesktopPc, Schedule::AlwaysOn);
    (g, outlets)
}

fn build(scn: &Scenario) -> (PlcSim, Vec<usize>) {
    let (g, outlets) = bus_grid(scn.n_stations);
    let mut sim = PlcSim::new(scn.cfg.clone(), &g, &outlets);
    let mut handles = Vec::new();
    for fs in &scn.flows {
        let source = TrafficSource::new(fs.pattern, Time::from_millis(fs.start_ms));
        let flow = match fs.dst {
            Some(d) => Flow::unicast(fs.src, d, source),
            None => Flow::broadcast(fs.src, source),
        }
        .with_priority(fs.priority);
        handles.push(sim.add_flow(flow));
    }
    (sim, handles)
}

fn mix(h: &mut u64, v: u64) {
    *h ^= v;
    *h = h.wrapping_mul(0x0000_0100_0000_01b3);
}

/// Observable digest, mirroring `bit_identity.rs`: delivered packets,
/// retransmission counts, drops, link estimates, PB counters, broadcast
/// stats, sniffer captures and the clock.
fn digest(sim: &mut PlcSim, scn: &Scenario, handles: &[usize]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    mix(&mut h, sim.now().as_nanos());
    for (fs, &f) in scn.flows.iter().zip(handles) {
        for p in sim.take_delivered(f) {
            mix(&mut h, p.seq);
            mix(&mut h, p.created.as_nanos());
            mix(&mut h, p.delivered.as_nanos());
        }
        for c in sim.take_tx_counts(f) {
            mix(&mut h, c as u64);
        }
        mix(&mut h, sim.dropped(f));
        match fs.dst {
            Some(d) => {
                mix(&mut h, sim.int6krate(fs.src, d).to_bits());
                let (total, err) = sim.pb_counters(fs.src, d);
                mix(&mut h, total);
                mix(&mut h, err);
            }
            None => {
                let mut rows: Vec<(StationId, u64, u64)> = sim
                    .broadcast_stats(f)
                    .iter()
                    .map(|(&r, &(ok, lost))| (r, ok, lost))
                    .collect();
                rows.sort_unstable();
                for (r, ok, lost) in rows {
                    mix(&mut h, r as u64);
                    mix(&mut h, ok);
                    mix(&mut h, lost);
                }
            }
        }
    }
    for rec in sim.sniffer_records() {
        mix(&mut h, rec.t.as_nanos());
        mix(&mut h, rec.sof.src as u64);
        mix(&mut h, rec.sof.dst as u64);
        mix(&mut h, rec.sof.ble_mbps.to_bits());
        mix(&mut h, rec.sof.tonemap_id as u64);
        mix(&mut h, rec.sof.slot as u64);
        mix(&mut h, rec.sof.n_symbols);
    }
    h
}

fn encode(sim: &PlcSim) -> Vec<u8> {
    let mut w = SnapshotWriter::new();
    w.save("mac.sim", sim);
    w.to_bytes()
}

fn load_into(bytes: &[u8], sim: &mut PlcSim) -> Result<(), electrifi_state::StateError> {
    SnapshotReader::from_bytes(bytes)?.load("mac.sim", sim)
}

type RawFlow = ((u16, u16), (u8, u64), (bool, bool), u64);

fn decode_flow(n_stations: u16, raw: RawFlow) -> FlowSpec {
    let ((src_raw, dst_raw), (kind, param), (bcast, ca2), start_ms) = raw;
    let src = src_raw % n_stations;
    let dst_candidate = dst_raw % n_stations;
    let dst = if bcast {
        None
    } else if dst_candidate == src {
        Some((src + 1) % n_stations)
    } else {
        Some(dst_candidate)
    };
    let pattern = match kind % 4 {
        0 => TrafficPattern::Saturated { pkt_bytes: 1500 },
        1 => TrafficPattern::Cbr {
            rate_bps: 50_000.0 + (param % 1000) as f64 * 2_000.0,
            pkt_bytes: 1500,
        },
        2 => TrafficPattern::Bursts {
            rate_bps: 100_000.0 + (param % 1000) as f64 * 3_000.0,
            pkt_bytes: 1500,
            burst_len: 2 + (param % 8) as u32,
        },
        _ => TrafficPattern::FileTransfer {
            total_bytes: 100_000 + param % 3_000_000,
            pkt_bytes: 1500,
        },
    };
    FlowSpec {
        src,
        dst,
        pattern,
        start_ms,
        priority: if ca2 { Priority::Ca2 } else { Priority::Ca1 },
    }
}

fn decode_scenario(
    n_stations: u16,
    raw_flows: Vec<RawFlow>,
    seed: u64,
    sniffer: bool,
    run_ms: u64,
    cut_frac: f64,
) -> Scenario {
    let flows = raw_flows
        .into_iter()
        .map(|r| decode_flow(n_stations, r))
        .collect();
    Scenario {
        n_stations,
        flows,
        cfg: SimConfig {
            seed,
            sniffer,
            ..SimConfig::default()
        },
        run_ms,
        cut_frac,
    }
}

const SCN_FLOWS: std::ops::Range<usize> = 1..3;

proptest! {
    /// encode → decode → encode is byte-identical for mid-run MAC state.
    #[test]
    fn prop_plcsim_reencode_is_byte_identical(
        n_stations in 3u16..6,
        raw_flows in collection::vec(
            ((0u16..6, 0u16..6), (0u8..4, any::<u64>()), (any::<bool>(), any::<bool>()), 0u64..40),
            SCN_FLOWS,
        ),
        (seed, sniffer) in (any::<u64>(), any::<bool>()),
        (run_ms, cut_frac) in (60u64..140, 0.15f64..0.85),
    ) {
        let scn = decode_scenario(n_stations, raw_flows, seed, sniffer, run_ms, cut_frac);
        let (mut sim, _h) = build(&scn);
        sim.run_until(Time::from_millis((scn.run_ms as f64 * scn.cut_frac) as u64));
        let first = encode(&sim);

        let (mut loaded, _h2) = build(&scn);
        load_into(&first, &mut loaded).expect("own snapshot loads");
        prop_assert_eq!(encode(&loaded), first);
    }

    /// A resumed sim finishes with exactly the uninterrupted digest.
    #[test]
    fn prop_resumed_sim_is_bit_identical(
        n_stations in 3u16..6,
        raw_flows in collection::vec(
            ((0u16..6, 0u16..6), (0u8..4, any::<u64>()), (any::<bool>(), any::<bool>()), 0u64..40),
            SCN_FLOWS,
        ),
        (seed, sniffer) in (any::<u64>(), any::<bool>()),
        (run_ms, cut_frac) in (60u64..140, 0.15f64..0.85),
    ) {
        let scn = decode_scenario(n_stations, raw_flows, seed, sniffer, run_ms, cut_frac);
        let end = Time::from_millis(scn.run_ms);
        let cut = Time::from_millis((scn.run_ms as f64 * scn.cut_frac) as u64);

        let (mut straight, h1) = build(&scn);
        straight.run_until(end);
        let want = digest(&mut straight, &scn, &h1);

        let (mut first_leg, _h) = build(&scn);
        first_leg.run_until(cut);
        let bytes = encode(&first_leg);
        drop(first_leg);

        let (mut resumed, h2) = build(&scn);
        load_into(&bytes, &mut resumed).expect("snapshot loads");
        resumed.run_until(end);
        prop_assert_eq!(digest(&mut resumed, &scn, &h2), want);
    }
}

proptest! {
    /// Single-byte corruption of a snapshot never panics: it either
    /// yields a typed `StateError`, or — when the flip lands on the
    /// format-version header byte as a downgrade — decodes to a state
    /// that re-encodes byte-identically.
    #[test]
    fn prop_flipped_byte_never_panics(
        seed in any::<u64>(),
        pos_raw in any::<u64>(),
        bit in 0u8..8,
    ) {
        let scn = tiny_scenario(seed);
        let (mut sim, _h) = build(&scn);
        sim.run_until(Time::from_millis(40));
        let mut bytes = encode(&sim);
        let pos = (pos_raw % bytes.len() as u64) as usize;
        bytes[pos] ^= 1 << bit;

        let (mut target, _h2) = build(&scn);
        if load_into(&bytes, &mut target).is_ok() {
            bytes[pos] ^= 1 << bit; // restore: only benign header flips land here
            prop_assert_eq!(encode(&target), bytes);
        }
    }

    /// Truncation at any strict prefix is a typed error, never a panic.
    #[test]
    fn prop_truncation_never_panics(
        seed in any::<u64>(),
        len_raw in any::<u64>(),
    ) {
        let scn = tiny_scenario(seed);
        let (mut sim, _h) = build(&scn);
        sim.run_until(Time::from_millis(40));
        let bytes = encode(&sim);
        let keep = (len_raw % bytes.len() as u64) as usize;

        let (mut target, _h2) = build(&scn);
        prop_assert!(load_into(&bytes[..keep], &mut target).is_err());
    }

    /// RNG streams are canonical: state() → encode → decode → resume
    /// draws the same sequence as the original generator.
    #[test]
    fn prop_rng_roundtrip_resumes_the_stream(seed in any::<u64>(), draws in 0usize..64) {
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..draws {
            let _: u64 = rng.random();
        }
        let mut w = SectionWriter::new();
        rng.encode(&mut w);
        let first = w.bytes().to_vec();

        let mut r = SectionReader::new("rng", w.bytes());
        let mut restored = StdRng::decode(&mut r).expect("rng decodes");
        r.finish().expect("nothing trails");

        let mut w2 = SectionWriter::new();
        restored.encode(&mut w2);
        prop_assert_eq!(w2.bytes(), &first[..]);
        let a: [u64; 4] = core::array::from_fn(|_| rng.random());
        let b: [u64; 4] = core::array::from_fn(|_| restored.random());
        prop_assert_eq!(a, b);
    }

    /// Event queues round-trip canonically, preserving FIFO tie-break
    /// order among same-timestamp events.
    #[test]
    fn prop_event_queue_roundtrip_is_canonical(
        events in collection::vec((0u64..2_000, any::<u64>()), 0..48),
        pops in 0usize..16,
    ) {
        let mut q: EventQueue<u64> = EventQueue::new();
        for &(at_us, payload) in &events {
            q.schedule(Time::from_micros(at_us), payload);
        }
        for _ in 0..pops.min(events.len()) {
            q.pop();
        }

        let mut snap = SnapshotWriter::new();
        snap.save("queue", &q);
        let first = snap.to_bytes();

        let mut restored: EventQueue<u64> = EventQueue::new();
        SnapshotReader::from_bytes(&first)
            .expect("valid snapshot")
            .load("queue", &mut restored)
            .expect("queue loads");
        let mut snap2 = SnapshotWriter::new();
        snap2.save("queue", &restored);
        prop_assert_eq!(snap2.to_bytes(), first);

        // Drain both: identical (time, payload) sequences.
        while let (Some(a), Some(b)) = (q.pop(), restored.pop()) {
            prop_assert_eq!((a.at, a.event), (b.at, b.event));
        }
        prop_assert!(q.is_empty() && restored.is_empty());
    }
}

/// Small fixed-shape scenario for the fuzz properties (the corruption
/// space, not the workload space, is what varies).
fn tiny_scenario(seed: u64) -> Scenario {
    Scenario {
        n_stations: 4,
        flows: vec![
            FlowSpec {
                src: 0,
                dst: Some(2),
                pattern: TrafficPattern::Saturated { pkt_bytes: 1500 },
                start_ms: 0,
                priority: Priority::Ca1,
            },
            FlowSpec {
                src: 1,
                dst: None,
                pattern: TrafficPattern::Cbr {
                    rate_bps: 150_000.0,
                    pkt_bytes: 1500,
                },
                start_ms: 3,
                priority: Priority::Ca2,
            },
        ],
        cfg: SimConfig {
            seed,
            sniffer: true,
            ..SimConfig::default()
        },
        run_ms: 40,
        cut_frac: 0.5,
    }
}
