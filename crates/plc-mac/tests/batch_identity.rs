//! Differential bit-identity suite for the batched stepper
//! ([`plc_mac::PlcBatch`]): an ensemble advanced through the shared
//! time wheel must be indistinguishable — byte for byte — from the
//! same sims advanced serially, one `run_until` at a time.
//!
//! Three observables are compared, over arbitrary flow mixes, batch
//! sizes, epoch widths and run_until cut sequences:
//!
//! * the full per-sim digest (delivered packets, tx counts, drops,
//!   BLE bit patterns, PB counters, sniffer captures, the clock) —
//!   the same digest `bit_identity.rs` uses to gate the PR 4 loop;
//! * the obs **counter** snapshot of each arm's registry (steps,
//!   events, CSMA/SACK/tonemap counters, idle skips...), with only the
//!   engine's own additive `mac.batch.*` series excluded;
//! * the `Persist` snapshot bytes of every member at every
//!   intermediate cut point.

use electrifi_state::SnapshotWriter;
use plc_mac::sim::{Flow, PlcSim, Priority, SimConfig, StationId};
use plc_mac::PlcBatch;
use proptest::collection;
use proptest::prelude::*;
use simnet::appliance::ApplianceKind;
use simnet::grid::Grid;
use simnet::obs::{self, Obs};
use simnet::schedule::Schedule;
use simnet::time::{Duration, Time};
use simnet::traffic::{TrafficPattern, TrafficSource};

#[derive(Clone, Debug)]
struct FlowSpec {
    src: StationId,
    /// `None` = broadcast.
    dst: Option<StationId>,
    pattern: TrafficPattern,
    start_ms: u64,
    priority: Priority,
}

/// One ensemble member: its own topology, traffic mix and seed.
#[derive(Clone, Debug)]
struct Member {
    n_stations: u16,
    flows: Vec<FlowSpec>,
    cfg: SimConfig,
}

fn bus_grid(n: u16) -> (Grid, Vec<(StationId, simnet::grid::NodeId)>) {
    let mut g = Grid::new();
    let mut junctions = Vec::new();
    let n_j = (n as usize).div_ceil(2).max(2);
    for j in 0..n_j {
        junctions.push(g.add_junction(format!("j{j}")));
        if j > 0 {
            g.connect(junctions[j - 1], junctions[j], 9.0 + j as f64);
        }
    }
    let mut outlets = Vec::new();
    for i in 0..n {
        let o = g.add_outlet(format!("s{i}"));
        g.connect(junctions[i as usize % n_j], o, 2.0 + i as f64);
        outlets.push((i, o));
    }
    let oa = g.add_outlet("pc");
    g.connect(junctions[0], oa, 2.0);
    g.attach(oa, ApplianceKind::DesktopPc, Schedule::AlwaysOn);
    (g, outlets)
}

fn build(m: &Member) -> (PlcSim, Vec<usize>) {
    let (g, outlets) = bus_grid(m.n_stations);
    let mut sim = PlcSim::new(m.cfg.clone(), &g, &outlets);
    let mut handles = Vec::new();
    for fs in &m.flows {
        let source = TrafficSource::new(fs.pattern, Time::from_millis(fs.start_ms));
        let flow = match fs.dst {
            Some(d) => Flow::unicast(fs.src, d, source),
            None => Flow::broadcast(fs.src, source),
        }
        .with_priority(fs.priority);
        handles.push(sim.add_flow(flow));
    }
    (sim, handles)
}

fn mix(h: &mut u64, v: u64) {
    *h ^= v;
    *h = h.wrapping_mul(0x0000_0100_0000_01b3);
}

/// The `bit_identity.rs` observable digest, verbatim.
fn digest(sim: &mut PlcSim, m: &Member, handles: &[usize]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    mix(&mut h, sim.now().as_nanos());
    for (fs, &f) in m.flows.iter().zip(handles) {
        for p in sim.take_delivered(f) {
            mix(&mut h, p.seq);
            mix(&mut h, p.created.as_nanos());
            mix(&mut h, p.delivered.as_nanos());
        }
        for c in sim.take_tx_counts(f) {
            mix(&mut h, c as u64);
        }
        mix(&mut h, sim.dropped(f));
        match fs.dst {
            Some(d) => {
                mix(&mut h, sim.int6krate(fs.src, d).to_bits());
                let (total, err) = sim.pb_counters(fs.src, d);
                mix(&mut h, total);
                mix(&mut h, err);
            }
            None => {
                let mut rows: Vec<(StationId, u64, u64)> = sim
                    .broadcast_stats(f)
                    .iter()
                    .map(|(&r, &(ok, lost))| (r, ok, lost))
                    .collect();
                rows.sort_unstable();
                for (r, ok, lost) in rows {
                    mix(&mut h, r as u64);
                    mix(&mut h, ok);
                    mix(&mut h, lost);
                }
            }
        }
    }
    for rec in sim.sniffer_records() {
        mix(&mut h, rec.t.as_nanos());
        mix(&mut h, rec.sof.src as u64);
        mix(&mut h, rec.sof.dst as u64);
        mix(&mut h, rec.sof.ble_mbps.to_bits());
        mix(&mut h, rec.sof.tonemap_id as u64);
        mix(&mut h, rec.sof.slot as u64);
        mix(&mut h, rec.sof.n_symbols);
    }
    h
}

fn encode(sim: &PlcSim) -> Vec<u8> {
    let mut w = SnapshotWriter::new();
    w.save("mac.sim", sim);
    w.to_bytes()
}

/// Counter snapshot of a registry with the batch engine's own additive
/// series removed: `mac.batch.*` exists only in the batched arm by
/// construction and measures execution shape, not sim behaviour.
fn sim_counters(reg: &simnet::Registry) -> Vec<(String, u64)> {
    reg.snapshot()
        .counters
        .into_iter()
        .filter(|(name, _)| !name.starts_with("mac.batch."))
        .collect()
}

/// Everything one arm produces: per-member digests, per-member
/// snapshot bytes at every intermediate cut, and the counter totals.
type ArmResult = (Vec<u64>, Vec<Vec<Vec<u8>>>, Vec<(String, u64)>);

/// Serial arm: each member runs alone through the ascending `ends`
/// sequence (the last entry is the final horizon).
fn run_serial(members: &[Member], ends: &[Time]) -> ArmResult {
    let obs = Obs::new();
    let reg = obs.registry().clone();
    let (digests, cuts) = obs::with_default(obs, || {
        let mut digests = Vec::new();
        let mut cuts = Vec::new();
        for m in members {
            let (mut sim, handles) = build(m);
            let mut sim_cuts = Vec::new();
            for (k, &end) in ends.iter().enumerate() {
                sim.run_until(end);
                if k + 1 < ends.len() {
                    sim_cuts.push(encode(&sim));
                }
            }
            digests.push(digest(&mut sim, m, &handles));
            cuts.push(sim_cuts);
        }
        (digests, cuts)
    });
    (digests, cuts, sim_counters(&reg))
}

/// Batched arm: all members in one [`PlcBatch`], advanced through the
/// same `ends` sequence, snapshotted at the same cuts.
fn run_batched(members: &[Member], ends: &[Time], epoch: Duration) -> ArmResult {
    let obs = Obs::new();
    let reg = obs.registry().clone();
    let (digests, cuts) = obs::with_default(obs, || {
        let built: Vec<(PlcSim, Vec<usize>)> = members.iter().map(build).collect();
        let mut handles = Vec::new();
        let mut sims = Vec::new();
        for (sim, h) in built {
            sims.push(sim);
            handles.push(h);
        }
        let mut batch = PlcBatch::with_epoch(sims, epoch);
        let mut cuts: Vec<Vec<Vec<u8>>> = vec![Vec::new(); members.len()];
        for (k, &end) in ends.iter().enumerate() {
            batch.run_until(end);
            if k + 1 < ends.len() {
                for (i, sim) in batch.sims().iter().enumerate() {
                    cuts[i].push(encode(sim));
                }
            }
        }
        let mut sims = batch.into_sims();
        let digests = sims
            .iter_mut()
            .zip(members)
            .zip(&handles)
            .map(|((sim, m), h)| digest(sim, m, h))
            .collect();
        (digests, cuts)
    });
    (digests, cuts, sim_counters(&reg))
}

fn assert_arms_match(members: &[Member], ends: &[Time], epoch: Duration) {
    let (d_ser, cuts_ser, ctr_ser) = run_serial(members, ends);
    let (d_bat, cuts_bat, ctr_bat) = run_batched(members, ends, epoch);
    assert_eq!(d_ser, d_bat, "observable digests diverged ({members:?})");
    assert_eq!(
        cuts_ser, cuts_bat,
        "Persist snapshot bytes diverged at a cut point"
    );
    assert_eq!(ctr_ser, ctr_bat, "obs counter totals diverged");
}

// ----- Generators (same workload space as bit_identity.rs) -----

type RawFlow = ((u16, u16), (u8, u64), (bool, bool), u64);

fn decode_flow(n_stations: u16, raw: RawFlow) -> FlowSpec {
    let ((src_raw, dst_raw), (kind, param), (bcast, ca2), start_ms) = raw;
    let src = src_raw % n_stations;
    let dst_candidate = dst_raw % n_stations;
    let dst = if bcast {
        None
    } else if dst_candidate == src {
        Some((src + 1) % n_stations)
    } else {
        Some(dst_candidate)
    };
    let pattern = match kind % 4 {
        0 => TrafficPattern::Saturated { pkt_bytes: 1500 },
        1 => TrafficPattern::Cbr {
            rate_bps: 50_000.0 + (param % 1000) as f64 * 2_000.0,
            pkt_bytes: 1500,
        },
        2 => TrafficPattern::Bursts {
            rate_bps: 100_000.0 + (param % 1000) as f64 * 3_000.0,
            pkt_bytes: 1500,
            burst_len: 2 + (param % 8) as u32,
        },
        _ => TrafficPattern::FileTransfer {
            total_bytes: 100_000 + param % 3_000_000,
            pkt_bytes: 1500,
        },
    };
    FlowSpec {
        src,
        dst,
        pattern,
        start_ms,
        priority: if ca2 { Priority::Ca2 } else { Priority::Ca1 },
    }
}

type RawMember = (u16, Vec<RawFlow>, u64, bool);

fn decode_member(raw: RawMember) -> Member {
    let (n_stations, raw_flows, seed, sniffer) = raw;
    Member {
        n_stations,
        flows: raw_flows
            .into_iter()
            .map(|r| decode_flow(n_stations, r))
            .collect(),
        cfg: SimConfig {
            seed,
            sniffer,
            ..SimConfig::default()
        },
    }
}

fn raw_member() -> impl Strategy<Value = RawMember> {
    (
        3u16..6,
        collection::vec(
            (
                (0u16..6, 0u16..6),
                (0u8..4, any::<u64>()),
                (any::<bool>(), any::<bool>()),
                0u64..40,
            ),
            1..3,
        ),
        any::<u64>(),
        any::<bool>(),
    )
}

proptest! {
    /// Arbitrary ensembles, epoch widths and run_until cut sequences:
    /// batched == serial on every observable.
    #[test]
    fn prop_batched_matches_serial(
        raw_members in collection::vec(raw_member(), 1..7),
        epoch_us in 500u64..30_000,
        ends_ms in collection::vec(10u64..140, 1..4),
    ) {
        let members: Vec<Member> = raw_members.into_iter().map(decode_member).collect();
        let mut ends_ms = ends_ms;
        ends_ms.sort_unstable();
        let ends: Vec<Time> = ends_ms.into_iter().map(Time::from_millis).collect();
        assert_arms_match(&members, &ends, Duration::from_micros(epoch_us));
    }
}

/// Deterministic ensemble shaped like the campaign's probing workload:
/// many quiescent links at the paper's Fig. 16 probing rates, stepped
/// through several cuts with a batch larger than the proptest sweep
/// reaches.
#[test]
fn fig16_shaped_ensemble_is_bit_identical() {
    let rates = [1.0f64, 10.0, 50.0, 200.0];
    let members: Vec<Member> = (0..24)
        .map(|i| Member {
            n_stations: 3,
            flows: vec![FlowSpec {
                src: 0,
                dst: Some(2),
                pattern: TrafficPattern::Cbr {
                    rate_bps: rates[i % rates.len()] * 1300.0 * 8.0,
                    pkt_bytes: 1300,
                },
                start_ms: (i as u64 * 7) % 40,
                priority: Priority::Ca1,
            }],
            cfg: SimConfig {
                seed: 0xF16_0000 + i as u64,
                ..SimConfig::default()
            },
        })
        .collect();
    let ends = [
        Time::from_millis(150),
        Time::from_millis(150),
        Time::from_millis(400),
        Time::from_millis(650),
    ];
    assert_arms_match(&members, &ends, Duration::from_millis(10));
}
