//! Property-based tests for the IEEE 1901 MAC building blocks.

use plc_mac::csma::{BackoffState, CW_TABLE, DC_TABLE};
use plc_mac::frame::{classify_retransmissions, SofDelimiter, SofRecord};
use plc_mac::pb::{pbs_for_packet, QueuedPb, Reassembler, PB_PAYLOAD_BYTES};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use simnet::time::{Duration, Time};

proptest! {
    /// PB segmentation covers the payload exactly: count × 512 ≥ bytes,
    /// and one fewer PB would not fit (except the 1-PB minimum).
    #[test]
    fn pb_count_is_tight(bytes in 0u32..100_000) {
        let n = pbs_for_packet(bytes);
        prop_assert!(n >= 1);
        let cover = n as u64 * PB_PAYLOAD_BYTES as u64;
        prop_assert!(cover >= bytes as u64);
        if n > 1 {
            let smaller = (n - 1) as u64 * PB_PAYLOAD_BYTES as u64;
            prop_assert!(smaller < bytes as u64);
        }
    }

    /// Reassembly completes exactly once per packet for any arrival
    /// permutation of its PBs.
    #[test]
    fn reassembly_completes_under_any_order(
        bytes in 1u32..20_000,
        perm_seed in any::<u64>(),
    ) {
        let pbs = QueuedPb::segment(9, bytes, Time::ZERO);
        let mut order: Vec<usize> = (0..pbs.len()).collect();
        // Deterministic Fisher-Yates from the seed.
        let mut state = perm_seed | 1;
        for i in (1..order.len()).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let j = (state >> 33) as usize % (i + 1);
            order.swap(i, j);
        }
        let mut r = Reassembler::new();
        let mut completions = 0;
        for (k, &idx) in order.iter().enumerate() {
            r.accept(pbs[idx], Time::from_micros(k as u64));
            completions += r.take_completed().len();
        }
        prop_assert_eq!(completions, 1);
        prop_assert_eq!(r.pending_count(), 0);
    }

    /// Backoff state machine invariants hold under arbitrary event
    /// sequences: stage within table bounds, BC below the stage's CW,
    /// DC below the stage's table entry.
    #[test]
    fn backoff_invariants(seed in any::<u64>(), events in proptest::collection::vec(0u8..4, 0..200)) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut s = BackoffState::new(&mut rng);
        for e in events {
            match e {
                0 => s.elapse_idle(1),
                1 => s.on_busy(&mut rng),
                2 => s.on_collision(&mut rng),
                _ => s.on_success(&mut rng),
            }
            prop_assert!(s.stage() < CW_TABLE.len());
            prop_assert!(s.backoff_slots() < CW_TABLE[s.stage()]);
            prop_assert!(s.deferral_counter() <= DC_TABLE[s.stage()]);
        }
    }

    /// The retransmission classifier never marks the first frame of a
    /// link, and flags exactly the frames whose same-link gap is under
    /// the threshold.
    #[test]
    fn retransmission_classifier_is_exact(
        gaps in proptest::collection::vec(0u64..50, 1..100),
        threshold_ms in 1u64..20,
    ) {
        let mut t = 0u64;
        let records: Vec<SofRecord> = gaps
            .iter()
            .map(|&g| {
                t += g;
                SofRecord {
                    t: Time::from_millis(t),
                    sof: SofDelimiter {
                        src: 1,
                        dst: 2,
                        ble_mbps: 50.0,
                        tonemap_id: 0,
                        slot: 0,
                        n_symbols: 1,
                    },
                }
            })
            .collect();
        let flags = classify_retransmissions(&records, Duration::from_millis(threshold_ms));
        prop_assert!(!flags[0]);
        for (i, &g) in gaps.iter().enumerate().skip(1) {
            prop_assert_eq!(flags[i], g < threshold_ms, "index {}", i);
        }
    }

    /// The analytic saturation throughput is bounded by the BLE, zero for
    /// dead links, and decreasing in contention and loss.
    #[test]
    fn analytic_throughput_sane(
        ble in 0f64..160.0,
        pberr in 0f64..1.0,
        n in 1usize..8,
    ) {
        let t = plc_mac::saturation_throughput_mbps(ble, pberr, n);
        prop_assert!(t >= 0.0);
        prop_assert!(t <= ble + 1e-9);
        let t_more_loss = plc_mac::saturation_throughput_mbps(ble, (pberr + 0.1).min(1.0), n);
        prop_assert!(t_more_loss <= t + 1e-9);
        let t_more_contention = plc_mac::saturation_throughput_mbps(ble, pberr, n + 1);
        prop_assert!(t_more_contention <= t + 1e-9);
    }
}
