//! # allocprobe — a counting global allocator
//!
//! A thin wrapper around [`std::alloc::System`] that counts every
//! allocation, reallocation and deallocation. The perf harness
//! (`bench_mac`) installs it as the `#[global_allocator]` and diffs the
//! counters around the MAC hot loop to prove the steady state performs
//! **zero** heap allocations.
//!
//! This is the only crate in the workspace that cannot
//! `forbid(unsafe_code)`: implementing [`GlobalAlloc`] is inherently
//! `unsafe`. The unsafe surface is confined to delegating the four
//! allocator methods to `System` verbatim; the counting itself is a pair
//! of relaxed atomics (the probe is read only between phases, never
//! concurrently with precise ordering requirements).
//!
//! ```no_run
//! use allocprobe::CountingAlloc;
//!
//! #[global_allocator]
//! static ALLOC: CountingAlloc = CountingAlloc::new();
//!
//! let before = ALLOC.snapshot();
//! // ... hot loop ...
//! let after = ALLOC.snapshot();
//! assert_eq!(after.allocs - before.allocs, 0);
//! ```

#![warn(missing_docs)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// A global allocator that delegates to [`System`] and counts calls.
#[derive(Debug)]
pub struct CountingAlloc {
    allocs: AtomicU64,
    deallocs: AtomicU64,
    reallocs: AtomicU64,
    bytes_allocated: AtomicU64,
}

/// A point-in-time reading of the allocator counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AllocSnapshot {
    /// Number of `alloc`/`alloc_zeroed` calls so far.
    pub allocs: u64,
    /// Number of `dealloc` calls so far.
    pub deallocs: u64,
    /// Number of `realloc` calls so far.
    pub reallocs: u64,
    /// Total bytes requested from `alloc`/`alloc_zeroed`/`realloc`.
    pub bytes_allocated: u64,
}

impl AllocSnapshot {
    /// Counter deltas between two snapshots (`later - self`).
    pub fn delta(&self, later: &AllocSnapshot) -> AllocSnapshot {
        AllocSnapshot {
            allocs: later.allocs - self.allocs,
            deallocs: later.deallocs - self.deallocs,
            reallocs: later.reallocs - self.reallocs,
            bytes_allocated: later.bytes_allocated - self.bytes_allocated,
        }
    }

    /// Total allocator events (allocs + reallocs): the quantity the
    /// zero-allocation gate checks.
    pub fn events(&self) -> u64 {
        self.allocs + self.reallocs
    }
}

impl CountingAlloc {
    /// A new probe with all counters at zero.
    pub const fn new() -> Self {
        CountingAlloc {
            allocs: AtomicU64::new(0),
            deallocs: AtomicU64::new(0),
            reallocs: AtomicU64::new(0),
            bytes_allocated: AtomicU64::new(0),
        }
    }

    /// Read all counters.
    pub fn snapshot(&self) -> AllocSnapshot {
        AllocSnapshot {
            allocs: self.allocs.load(Ordering::Relaxed),
            deallocs: self.deallocs.load(Ordering::Relaxed),
            reallocs: self.reallocs.load(Ordering::Relaxed),
            bytes_allocated: self.bytes_allocated.load(Ordering::Relaxed),
        }
    }
}

impl Default for CountingAlloc {
    fn default() -> Self {
        Self::new()
    }
}

// SAFETY: all four methods delegate directly to `System`, which upholds
// the `GlobalAlloc` contract; the added atomic increments do not touch
// the returned memory.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        self.allocs.fetch_add(1, Ordering::Relaxed);
        self.bytes_allocated
            .fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        self.allocs.fetch_add(1, Ordering::Relaxed);
        self.bytes_allocated
            .fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        self.deallocs.fetch_add(1, Ordering::Relaxed);
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        self.reallocs.fetch_add(1, Ordering::Relaxed);
        self.bytes_allocated
            .fetch_add(new_size as u64, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Note: the tests exercise the probe as a plain value, not as the
    // process-global allocator (installing one in a test binary would
    // also count the harness's own allocations).

    #[test]
    fn counters_track_delegated_calls() {
        let probe = CountingAlloc::new();
        let layout = Layout::from_size_align(64, 8).unwrap();
        unsafe {
            let p = probe.alloc(layout);
            assert!(!p.is_null());
            let p2 = probe.realloc(p, layout, 128);
            assert!(!p2.is_null());
            probe.dealloc(p2, Layout::from_size_align(128, 8).unwrap());
        }
        let s = probe.snapshot();
        assert_eq!(s.allocs, 1);
        assert_eq!(s.reallocs, 1);
        assert_eq!(s.deallocs, 1);
        assert_eq!(s.bytes_allocated, 64 + 128);
        assert_eq!(s.events(), 2);
    }

    #[test]
    fn delta_subtracts_snapshots() {
        let probe = CountingAlloc::new();
        let layout = Layout::from_size_align(16, 8).unwrap();
        let before = probe.snapshot();
        unsafe {
            let p = probe.alloc(layout);
            probe.dealloc(p, layout);
        }
        let d = before.delta(&probe.snapshot());
        assert_eq!(d.allocs, 1);
        assert_eq!(d.deallocs, 1);
        assert_eq!(d.reallocs, 0);
        assert_eq!(d.events(), 1);
    }
}
