//! The disturbance/coupling/assertion vocabulary the scenario schema
//! parses into.
//!
//! Times are *relative to the measurement start* of the run (seconds):
//! scenarios do not know the absolute workload window, and campaigns
//! override workloads per run, so anchoring happens at compile time
//! ([`crate::CompiledFaults::compile`]).

/// Attenuation (dB) applied to a link isolated by a breaker trip — far
/// past any usable SNR, so the link reads as electrically dead while the
/// trip lasts.
pub const ISOLATION_DB: f64 = 300.0;

/// What a disturbance does to the floor. PLC-side kinds target one
/// distribution board (= logical PLC network index: the paper floor's
/// network A is board 0, B is board 1); WiFi jamming and probe dropouts
/// act floor-wide.
#[derive(Debug, Clone, PartialEq)]
pub enum DisturbanceKind {
    /// An appliance surge raises the noise floor on every link of one
    /// board by `noise_db` (paper §5: appliance events dominate PLC
    /// temporal variation).
    ApplianceSurge {
        /// Distribution board (logical PLC network index) hit.
        board: u16,
        /// Noise-floor rise, dB (> 0).
        noise_db: f64,
    },
    /// A breaker trip electrically isolates one board: its links see
    /// [`ISOLATION_DB`] of attenuation for the duration.
    BreakerTrip {
        /// Distribution board isolated.
        board: u16,
    },
    /// Progressive cable degradation: attenuation on one board's links
    /// ramps linearly to `atten_db` over the disturbance's `ramp_s`.
    CableDegrade {
        /// Distribution board whose wiring degrades.
        board: u16,
        /// Attenuation reached at the end of the ramp, dB (> 0).
        atten_db: f64,
    },
    /// A wide-band WiFi jamming burst: every WiFi link loses
    /// `penalty_db` of SNR.
    WifiJam {
        /// SNR penalty while jammed, dB (> 0).
        penalty_db: f64,
    },
    /// Probe/sensor dropout: the hybrid layer's link-metric probes stop
    /// updating and the last estimate goes stale.
    ProbeDropout,
}

impl DisturbanceKind {
    /// Stable kebab-case name (used in JSON and verdict details).
    pub fn name(&self) -> &'static str {
        match self {
            DisturbanceKind::ApplianceSurge { .. } => "appliance-surge",
            DisturbanceKind::BreakerTrip { .. } => "breaker-trip",
            DisturbanceKind::CableDegrade { .. } => "cable-degrade",
            DisturbanceKind::WifiJam { .. } => "wifi-jam",
            DisturbanceKind::ProbeDropout => "probe-dropout",
        }
    }
}

/// One scripted disturbance: a kind active over a window.
#[derive(Debug, Clone, PartialEq)]
pub struct DisturbanceSpec {
    /// Optional label couplings refer to (empty = anonymous).
    pub name: String,
    /// Onset, seconds after measurement start (>= 0).
    pub at_s: f64,
    /// Active window length, seconds (> 0).
    pub duration_s: f64,
    /// Linear ramp-in length, seconds (0 = step; <= duration_s). Only
    /// meaningful for overlay kinds (surge/degrade).
    pub ramp_s: f64,
    /// What happens.
    pub kind: DisturbanceKind,
}

/// A delayed coupling: when the named disturbance fires, `effect` starts
/// `after_ms` later. Because disturbances are scripted, couplings resolve
/// at compile time into ordinary timeline windows — execution stays
/// deterministic by construction.
#[derive(Debug, Clone, PartialEq)]
pub struct CouplingSpec {
    /// Name of the triggering disturbance.
    pub source: String,
    /// Delay after the trigger's onset, milliseconds.
    pub after_ms: u64,
    /// Effect window length, seconds (> 0).
    pub duration_s: f64,
    /// Triggered effect.
    pub effect: DisturbanceKind,
}

/// A declarative invariant checked against a disturbed run's measured
/// series (see [`crate::evaluate`] for exact semantics).
#[derive(Debug, Clone, PartialEq)]
pub enum AssertionSpec {
    /// The paper's §7 load-balancing invariant: the hybrid aggregate is
    /// at least the best single medium, everywhere except a `within_s`
    /// grace window after each disturbance boundary.
    HybridAtLeastBestMedium {
        /// Adaptation grace period after each disturbance edge, seconds.
        within_s: f64,
    },
    /// While the floor is quiesced (no disturbance active and `settle_s`
    /// past the last one), the hybrid layer's capacity estimate tracks
    /// delivered throughput within `tolerance_frac`.
    EstimateWithin {
        /// Allowed relative error, fraction of delivered (0 < x <= 1).
        tolerance_frac: f64,
        /// Settling time after a disturbance ends before samples count,
        /// seconds.
        settle_s: f64,
    },
    /// After every disturbance window ends, delivered throughput
    /// recovers to `frac` of the pre-disturbance baseline within
    /// `within_s`.
    RecoveryWithin {
        /// Recovery deadline after each disturbance end, seconds.
        within_s: f64,
        /// Required fraction of the quiesced baseline (0 < x <= 1).
        frac: f64,
    },
    /// A named metrics counter reached at least `min` by the end of the
    /// run (e.g. `faults.edges` to assert the timeline actually fired).
    CounterAtLeast {
        /// Counter name in the run's metrics snapshot.
        counter: String,
        /// Required minimum value.
        min: f64,
    },
}

impl AssertionSpec {
    /// Stable kebab-case name (used in JSON and verdict blocks).
    pub fn name(&self) -> &'static str {
        match self {
            AssertionSpec::HybridAtLeastBestMedium { .. } => "hybrid-at-least-best-medium",
            AssertionSpec::EstimateWithin { .. } => "estimate-within",
            AssertionSpec::RecoveryWithin { .. } => "recovery-within",
            AssertionSpec::CounterAtLeast { .. } => "counter-at-least",
        }
    }
}
