//! Compiled actuation profiles: pure functions of simulation time.
//!
//! Each profile is a sorted set of absolute-time windows baked at
//! compile time ([`crate::CompiledFaults::compile`]). Medium models call
//! the accessors inline from their hot paths; because the answer depends
//! only on the queried [`Time`], batched, sharded and serial executions
//! of the same scenario observe bit-identical channels.
//!
//! Window bounds are stored as nanoseconds-since-epoch (`u64`) rather
//! than [`Time`] so the types stay plain-old-data for serde derives and
//! byte-stable persistence.

use serde::{Deserialize, Serialize};
use simnet::Time;

/// One additive window on a PLC board: noise and/or attenuation, with an
/// optional linear ramp-in.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OverlayWindow {
    /// Window start, ns since sim epoch.
    pub start_ns: u64,
    /// Window end (exclusive), ns since sim epoch.
    pub end_ns: u64,
    /// Ramp-in length, ns (0 = step). The contribution scales linearly
    /// from 0 at `start_ns` to full at `start_ns + ramp_ns`.
    pub ramp_ns: u64,
    /// Noise-floor rise at full strength, dB.
    pub noise_db: f64,
    /// Extra attenuation at full strength, dB.
    pub atten_db: f64,
}

impl OverlayWindow {
    /// Ramp factor in [0, 1] at time `t_ns`, 0 outside the window.
    fn strength(&self, t_ns: u64) -> f64 {
        if t_ns < self.start_ns || t_ns >= self.end_ns {
            return 0.0;
        }
        if self.ramp_ns == 0 {
            return 1.0;
        }
        let into = t_ns - self.start_ns;
        if into >= self.ramp_ns {
            1.0
        } else {
            into as f64 / self.ramp_ns as f64
        }
    }
}

/// The additive channel overlay for one distribution board: what an
/// appliance surge, breaker trip or cable-degradation ramp does to every
/// PLC link on that board.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct LinkOverlay {
    /// Windows, sorted by `start_ns` (may overlap; contributions add).
    pub windows: Vec<OverlayWindow>,
}

impl LinkOverlay {
    /// `(noise_db, atten_db)` to add to the board's links at `t`.
    ///
    /// Returns exact `(0.0, 0.0)` outside all windows, so callers can
    /// branch on activity without floating-point hazards.
    pub fn at(&self, t: Time) -> (f64, f64) {
        let t_ns = t.as_nanos();
        let mut noise = 0.0;
        let mut atten = 0.0;
        for w in &self.windows {
            if t_ns >= w.end_ns {
                continue;
            }
            if t_ns < w.start_ns {
                break; // sorted by start: nothing later is active yet
            }
            let s = w.strength(t_ns);
            if s > 0.0 {
                noise += s * w.noise_db;
                atten += s * w.atten_db;
            }
        }
        (noise, atten)
    }

    /// True if any window is active at `t` (cheap pre-check).
    pub fn is_active(&self, t: Time) -> bool {
        let t_ns = t.as_nanos();
        self.windows
            .iter()
            .any(|w| t_ns >= w.start_ns && t_ns < w.end_ns)
    }
}

/// One WiFi jamming window.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JamWindow {
    /// Window start, ns since sim epoch.
    pub start_ns: u64,
    /// Window end (exclusive), ns since sim epoch.
    pub end_ns: u64,
    /// SNR penalty while jammed, dB.
    pub penalty_db: f64,
}

/// Floor-wide WiFi jamming profile.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct JamProfile {
    /// Windows, sorted by `start_ns` (overlaps add).
    pub windows: Vec<JamWindow>,
}

impl JamProfile {
    /// SNR penalty (dB) at `t`; exact `0.0` outside all windows.
    pub fn penalty_db(&self, t: Time) -> f64 {
        let t_ns = t.as_nanos();
        let mut penalty = 0.0;
        for w in &self.windows {
            if t_ns >= w.end_ns {
                continue;
            }
            if t_ns < w.start_ns {
                break;
            }
            penalty += w.penalty_db;
        }
        penalty
    }
}

/// Probe/sensor dropout profile: while active, the hybrid layer's probes
/// are lost and its capacity estimate goes stale.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct DropoutProfile {
    /// `(start_ns, end_ns)` windows, sorted, non-normalised (overlaps
    /// simply both report active).
    pub windows: Vec<(u64, u64)>,
}

impl DropoutProfile {
    /// True while probes are dropped at `t`.
    pub fn is_dropped(&self, t: Time) -> bool {
        let t_ns = t.as_nanos();
        self.windows.iter().any(|&(s, e)| t_ns >= s && t_ns < e)
    }
}

/// MAC-visible outage profile: windows during which a board's stations
/// cannot win the medium at all (breaker trip, seen from the MAC).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct OutageProfile {
    /// `(start_ns, end_ns)` windows, sorted by start.
    pub windows: Vec<(u64, u64)>,
}

impl OutageProfile {
    /// If `t` falls inside an outage window, the window's end time —
    /// i.e. the earliest instant the MAC may transmit again.
    pub fn blackout_until(&self, t: Time) -> Option<Time> {
        let t_ns = t.as_nanos();
        for &(s, e) in &self.windows {
            if t_ns >= s && t_ns < e {
                return Some(Time(e));
            }
            if t_ns < s {
                break;
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> Time {
        Time((s * 1e9) as u64)
    }

    #[test]
    fn overlay_is_zero_outside_and_ramps_inside() {
        let ov = LinkOverlay {
            windows: vec![OverlayWindow {
                start_ns: 10_000_000_000,
                end_ns: 20_000_000_000,
                ramp_ns: 4_000_000_000,
                noise_db: 8.0,
                atten_db: 2.0,
            }],
        };
        assert_eq!(ov.at(t(9.999)), (0.0, 0.0));
        assert_eq!(ov.at(t(20.0)), (0.0, 0.0));
        let (n, a) = ov.at(t(12.0)); // halfway up the ramp
        assert!((n - 4.0).abs() < 1e-9, "noise {n}");
        assert!((a - 1.0).abs() < 1e-9, "atten {a}");
        assert_eq!(ov.at(t(15.0)), (8.0, 2.0));
        assert!(ov.is_active(t(15.0)));
        assert!(!ov.is_active(t(25.0)));
    }

    #[test]
    fn overlapping_overlay_windows_add() {
        let ov = LinkOverlay {
            windows: vec![
                OverlayWindow {
                    start_ns: 0,
                    end_ns: 10,
                    ramp_ns: 0,
                    noise_db: 3.0,
                    atten_db: 0.0,
                },
                OverlayWindow {
                    start_ns: 5,
                    end_ns: 15,
                    ramp_ns: 0,
                    noise_db: 4.0,
                    atten_db: 1.0,
                },
            ],
        };
        assert_eq!(ov.at(Time(7)), (7.0, 1.0));
    }

    #[test]
    fn jam_penalty_windows() {
        let jam = JamProfile {
            windows: vec![JamWindow {
                start_ns: 1_000,
                end_ns: 2_000,
                penalty_db: 25.0,
            }],
        };
        assert_eq!(jam.penalty_db(Time(999)), 0.0);
        assert_eq!(jam.penalty_db(Time(1_500)), 25.0);
        assert_eq!(jam.penalty_db(Time(2_000)), 0.0);
    }

    #[test]
    fn outage_reports_blackout_end() {
        let out = OutageProfile {
            windows: vec![(100, 200), (400, 500)],
        };
        assert_eq!(out.blackout_until(Time(50)), None);
        assert_eq!(out.blackout_until(Time(150)), Some(Time(200)));
        assert_eq!(out.blackout_until(Time(450)), Some(Time(500)));
        assert_eq!(out.blackout_until(Time(600)), None);
    }

    #[test]
    fn dropout_windows() {
        let d = DropoutProfile {
            windows: vec![(10, 20)],
        };
        assert!(d.is_dropped(Time(10)));
        assert!(!d.is_dropped(Time(20)));
    }
}
