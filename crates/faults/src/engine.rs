//! Compilation of disturbance specs into anchored profiles, and the
//! run-time cursor that walks the boundary-event timeline.

use crate::profile::{
    DropoutProfile, JamProfile, JamWindow, LinkOverlay, OutageProfile, OverlayWindow,
};
use crate::spec::{CouplingSpec, DisturbanceKind, DisturbanceSpec, ISOLATION_DB};
use electrifi_state::{Persist, SectionReader, SectionWriter, StateError};
use simnet::{Duration, Time};

/// One resolved disturbance window on the absolute timeline (used by the
/// verdict evaluator for grace/recovery bookkeeping and reported in the
/// verdict block).
#[derive(Debug, Clone, PartialEq)]
pub struct ResolvedWindow {
    /// Window start, ns since sim epoch.
    pub start_ns: u64,
    /// Window end (exclusive), ns since sim epoch.
    pub end_ns: u64,
    /// Stable kind name (`appliance-surge`, `breaker-trip`, ...).
    pub kind: &'static str,
    /// Disturbance label (empty for anonymous or coupling-triggered).
    pub name: String,
}

/// The full fault timeline of one run, anchored at an absolute
/// measurement-start time and compiled into per-medium profiles.
///
/// Everything here is immutable after [`compile`](Self::compile): the
/// medium models only ever *read* it, through pure functions of time, so
/// sharing one `Arc<CompiledFaults>` across batched lanes is sound.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CompiledFaults {
    overlays: Vec<(u16, LinkOverlay)>,
    outages: Vec<(u16, OutageProfile)>,
    jam: JamProfile,
    dropout: DropoutProfile,
    windows: Vec<ResolvedWindow>,
    edges: Vec<Time>,
}

impl CompiledFaults {
    /// Anchor `disturbances` (+ resolved `couplings`) at measurement
    /// start `t0` and bake the per-medium profiles.
    ///
    /// Fails only if a coupling names an unknown source disturbance —
    /// the scenario validator rejects that earlier, so hitting it here
    /// means the caller bypassed validation.
    pub fn compile(
        disturbances: &[DisturbanceSpec],
        couplings: &[CouplingSpec],
        t0: Time,
    ) -> Result<CompiledFaults, String> {
        let mut cf = CompiledFaults::default();
        for d in disturbances {
            let start = t0 + Duration::from_secs_f64(d.at_s);
            cf.add_window(
                start,
                Duration::from_secs_f64(d.duration_s),
                Duration::from_secs_f64(d.ramp_s),
                &d.kind,
                &d.name,
            );
        }
        for c in couplings {
            let src = disturbances
                .iter()
                .find(|d| !d.name.is_empty() && d.name == c.source)
                .ok_or_else(|| format!("coupling source `{}` names no disturbance", c.source))?;
            let start = t0 + Duration::from_secs_f64(src.at_s) + Duration::from_millis(c.after_ms);
            cf.add_window(
                start,
                Duration::from_secs_f64(c.duration_s),
                Duration::ZERO,
                &c.effect,
                "",
            );
        }
        cf.seal();
        Ok(cf)
    }

    fn add_window(
        &mut self,
        start: Time,
        duration: Duration,
        ramp: Duration,
        kind: &DisturbanceKind,
        name: &str,
    ) {
        let start_ns = start.as_nanos();
        let end_ns = start_ns + duration.as_nanos();
        match *kind {
            DisturbanceKind::ApplianceSurge { board, noise_db } => {
                self.overlay_mut(board).windows.push(OverlayWindow {
                    start_ns,
                    end_ns,
                    ramp_ns: ramp.as_nanos(),
                    noise_db,
                    atten_db: 0.0,
                });
            }
            DisturbanceKind::BreakerTrip { board } => {
                // A trip is a step, never a ramp: the board is either on
                // the grid or it is not.
                self.overlay_mut(board).windows.push(OverlayWindow {
                    start_ns,
                    end_ns,
                    ramp_ns: 0,
                    noise_db: 0.0,
                    atten_db: ISOLATION_DB,
                });
                self.outage_mut(board).windows.push((start_ns, end_ns));
            }
            DisturbanceKind::CableDegrade { board, atten_db } => {
                self.overlay_mut(board).windows.push(OverlayWindow {
                    start_ns,
                    end_ns,
                    ramp_ns: ramp.as_nanos(),
                    noise_db: 0.0,
                    atten_db,
                });
            }
            DisturbanceKind::WifiJam { penalty_db } => {
                self.jam.windows.push(JamWindow {
                    start_ns,
                    end_ns,
                    penalty_db,
                });
            }
            DisturbanceKind::ProbeDropout => {
                self.dropout.windows.push((start_ns, end_ns));
            }
        }
        self.windows.push(ResolvedWindow {
            start_ns,
            end_ns,
            kind: kind.name(),
            name: name.to_string(),
        });
    }

    fn overlay_mut(&mut self, board: u16) -> &mut LinkOverlay {
        if let Some(i) = self.overlays.iter().position(|(b, _)| *b == board) {
            return &mut self.overlays[i].1;
        }
        self.overlays.push((board, LinkOverlay::default()));
        &mut self.overlays.last_mut().unwrap().1
    }

    fn outage_mut(&mut self, board: u16) -> &mut OutageProfile {
        if let Some(i) = self.outages.iter().position(|(b, _)| *b == board) {
            return &mut self.outages[i].1;
        }
        self.outages.push((board, OutageProfile::default()));
        &mut self.outages.last_mut().unwrap().1
    }

    /// Sort every profile's windows and derive the deduplicated edge
    /// timeline (every window start and end, in order).
    fn seal(&mut self) {
        self.overlays.sort_by_key(|(b, _)| *b);
        self.outages.sort_by_key(|(b, _)| *b);
        for (_, ov) in &mut self.overlays {
            ov.windows.sort_by_key(|w| (w.start_ns, w.end_ns));
        }
        for (_, out) in &mut self.outages {
            out.windows.sort_unstable();
        }
        self.jam.windows.sort_by_key(|w| (w.start_ns, w.end_ns));
        self.dropout.windows.sort_unstable();
        self.windows
            .sort_by(|a, b| (a.start_ns, a.end_ns, a.kind).cmp(&(b.start_ns, b.end_ns, b.kind)));
        let mut edges: Vec<u64> = self
            .windows
            .iter()
            .flat_map(|w| [w.start_ns, w.end_ns])
            .collect();
        edges.sort_unstable();
        edges.dedup();
        self.edges = edges.into_iter().map(Time).collect();
    }

    /// True when the timeline is empty (no disturbance ever fires).
    pub fn is_empty(&self) -> bool {
        self.windows.is_empty()
    }

    /// The channel overlay for one distribution board (logical PLC
    /// network index), if any disturbance targets it.
    pub fn link_overlay(&self, board: u16) -> Option<&LinkOverlay> {
        self.overlays
            .iter()
            .find(|(b, _)| *b == board)
            .map(|(_, ov)| ov)
    }

    /// The MAC outage profile for one board, if a breaker trip targets it.
    pub fn outage_profile(&self, board: u16) -> Option<&OutageProfile> {
        self.outages
            .iter()
            .find(|(b, _)| *b == board)
            .map(|(_, out)| out)
    }

    /// The floor-wide WiFi jamming profile, if any jam burst is scripted.
    pub fn jam_profile(&self) -> Option<&JamProfile> {
        if self.jam.windows.is_empty() {
            None
        } else {
            Some(&self.jam)
        }
    }

    /// The probe-dropout profile, if any dropout is scripted.
    pub fn dropout_profile(&self) -> Option<&DropoutProfile> {
        if self.dropout.windows.is_empty() {
            None
        } else {
            Some(&self.dropout)
        }
    }

    /// All resolved disturbance windows, sorted by start time.
    pub fn disturbance_windows(&self) -> &[ResolvedWindow] {
        &self.windows
    }

    /// The deduplicated boundary-event timeline: every instant at which
    /// some disturbance starts or stops, in ascending order.
    pub fn edges(&self) -> &[Time] {
        &self.edges
    }
}

/// Run-time cursor over a [`CompiledFaults`] edge timeline.
///
/// The profiles themselves are stateless; the engine only tracks which
/// boundary events have already been consumed, so a simulation can
/// schedule the *next* edge through `simnet`'s queue and count fired
/// edges into `obs`. That cursor is the only mutable state, and it
/// persists, so a checkpoint taken mid-disturbance resumes on the exact
/// same timeline position.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultEngine {
    cursor: usize,
}

impl FaultEngine {
    /// A fresh cursor at the start of the timeline.
    pub fn new() -> FaultEngine {
        FaultEngine::default()
    }

    /// The next unconsumed edge at-or-after nothing in particular —
    /// `None` once the timeline is exhausted.
    pub fn next_edge(&self, faults: &CompiledFaults) -> Option<Time> {
        faults.edges().get(self.cursor).copied()
    }

    /// Consume every edge at or before `now`; returns how many fired.
    pub fn advance_to(&mut self, faults: &CompiledFaults, now: Time) -> usize {
        let edges = faults.edges();
        let before = self.cursor;
        while self.cursor < edges.len() && edges[self.cursor] <= now {
            self.cursor += 1;
        }
        self.cursor - before
    }

    /// Number of edges already consumed.
    pub fn fired(&self) -> usize {
        self.cursor
    }
}

impl Persist for FaultEngine {
    fn save_state(&self, w: &mut SectionWriter) {
        w.put_u64(self.cursor as u64);
    }

    fn load_state(&mut self, r: &mut SectionReader<'_>) -> Result<(), StateError> {
        let cursor = r.get_u64()? as usize;
        self.cursor = cursor;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn surge(name: &str, at_s: f64, dur_s: f64, board: u16, noise_db: f64) -> DisturbanceSpec {
        DisturbanceSpec {
            name: name.to_string(),
            at_s,
            duration_s: dur_s,
            ramp_s: 0.0,
            kind: DisturbanceKind::ApplianceSurge { board, noise_db },
        }
    }

    #[test]
    fn compile_anchors_windows_at_t0() {
        let t0 = Time::from_secs(100);
        let cf = CompiledFaults::compile(&[surge("s", 5.0, 2.0, 0, 10.0)], &[], t0).unwrap();
        let ov = cf.link_overlay(0).unwrap();
        assert_eq!(ov.at(Time::from_secs(104)), (0.0, 0.0));
        assert_eq!(ov.at(Time::from_secs(106)), (10.0, 0.0));
        assert_eq!(ov.at(Time::from_secs(107)), (0.0, 0.0));
        assert!(cf.link_overlay(1).is_none());
        assert_eq!(cf.edges(), &[Time::from_secs(105), Time::from_secs(107)]);
    }

    #[test]
    fn breaker_trip_isolates_and_blacks_out() {
        let spec = DisturbanceSpec {
            name: String::new(),
            at_s: 1.0,
            duration_s: 3.0,
            ramp_s: 0.5, // ignored: trips are steps
            kind: DisturbanceKind::BreakerTrip { board: 1 },
        };
        let cf = CompiledFaults::compile(&[spec], &[], Time::ZERO).unwrap();
        let ov = cf.link_overlay(1).unwrap();
        assert_eq!(ov.at(Time::from_millis(1_001)), (0.0, ISOLATION_DB));
        let out = cf.outage_profile(1).unwrap();
        assert_eq!(
            out.blackout_until(Time::from_secs(2)),
            Some(Time::from_secs(4))
        );
        assert!(cf.outage_profile(0).is_none());
    }

    #[test]
    fn coupling_resolves_to_delayed_window() {
        let trip = DisturbanceSpec {
            name: "trip".to_string(),
            at_s: 10.0,
            duration_s: 5.0,
            ramp_s: 0.0,
            kind: DisturbanceKind::BreakerTrip { board: 0 },
        };
        let coupling = CouplingSpec {
            source: "trip".to_string(),
            after_ms: 250,
            duration_s: 2.0,
            effect: DisturbanceKind::WifiJam { penalty_db: 20.0 },
        };
        let cf = CompiledFaults::compile(&[trip], &[coupling], Time::ZERO).unwrap();
        let jam = cf.jam_profile().unwrap();
        assert_eq!(jam.penalty_db(Time::from_millis(10_249)), 0.0);
        assert_eq!(jam.penalty_db(Time::from_millis(10_250)), 20.0);
        assert_eq!(jam.penalty_db(Time::from_millis(12_250)), 0.0);
        // Windows: trip [10,15), jam [10.25,12.25) -> 4 distinct edges.
        assert_eq!(cf.edges().len(), 4);
    }

    #[test]
    fn coupling_with_unknown_source_is_rejected() {
        let c = CouplingSpec {
            source: "ghost".to_string(),
            after_ms: 0,
            duration_s: 1.0,
            effect: DisturbanceKind::ProbeDropout,
        };
        let err = CompiledFaults::compile(&[], &[c], Time::ZERO).unwrap_err();
        assert!(err.contains("ghost"), "{err}");
    }

    #[test]
    fn engine_cursor_advances_and_persists() {
        let cf = CompiledFaults::compile(
            &[surge("a", 1.0, 1.0, 0, 5.0), surge("b", 4.0, 1.0, 0, 5.0)],
            &[],
            Time::ZERO,
        )
        .unwrap();
        assert_eq!(cf.edges().len(), 4);
        let mut eng = FaultEngine::new();
        assert_eq!(eng.next_edge(&cf), Some(Time::from_secs(1)));
        assert_eq!(eng.advance_to(&cf, Time::from_secs(2)), 2);
        assert_eq!(eng.next_edge(&cf), Some(Time::from_secs(4)));

        // Checkpoint mid-timeline, resume into a fresh engine.
        let mut w = SectionWriter::new();
        eng.save_state(&mut w);
        let bytes = w.into_bytes();
        let mut resumed = FaultEngine::new();
        let mut r = SectionReader::new("faults", &bytes);
        resumed.load_state(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(resumed, eng);
        assert_eq!(resumed.advance_to(&cf, Time::from_secs(10)), 2);
        assert_eq!(resumed.fired(), 4);
        assert_eq!(resumed.next_edge(&cf), None);
    }
}
