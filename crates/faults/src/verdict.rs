//! The assertion engine: declarative invariants evaluated against the
//! measured series of a disturbed run, producing the typed `verdict`
//! block campaigns gate on.
//!
//! Evaluation is plain arithmetic over the sampled series — no clocks,
//! no RNG — so the same series always yields byte-identical verdicts.
//! Detail strings round to three decimals for the same reason: they are
//! artifacts, not debug output.

use crate::engine::CompiledFaults;
use crate::spec::AssertionSpec;
use serde::{Deserialize, Serialize};
use simnet::Time;

/// Numerical slack for the aggregate >= best-medium comparison: the two
/// sides are sums of the same measured samples, so anything beyond
/// accumulated rounding is a real violation.
const AGG_EPS: f64 = 1e-9;

/// The sampled time series of one disturbed run. All series are parallel
/// to `t_s`; throughputs are in Mbit/s.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SeriesSet {
    /// Sample instants, seconds since measurement start.
    pub t_s: Vec<f64>,
    /// PLC delivered throughput.
    pub plc: Vec<f64>,
    /// WiFi delivered throughput.
    pub wifi: Vec<f64>,
    /// Hybrid aggregate delivered throughput.
    pub hybrid: Vec<f64>,
    /// The hybrid layer's capacity estimate (stale during dropouts).
    pub estimate: Vec<f64>,
    /// Total delivered throughput (what the assertions recover against).
    pub delivered: Vec<f64>,
}

/// Outcome of one assertion.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AssertionResult {
    /// Stable assertion kind name (`hybrid-at-least-best-medium`, ...).
    pub kind: String,
    /// Did the invariant hold?
    pub pass: bool,
    /// Slack: how far inside (positive) or outside (negative) the bound
    /// the worst sample landed, in the assertion's own unit.
    pub margin: f64,
    /// Worst observed recovery time, seconds (recovery assertions only).
    pub recovery_s: Option<f64>,
    /// Human-readable one-liner (deterministic formatting).
    pub detail: String,
}

/// One disturbance window as reported in the verdict block, in seconds
/// relative to measurement start.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VerdictWindow {
    /// Stable disturbance kind name.
    pub kind: String,
    /// Disturbance label (empty for anonymous/coupled windows).
    pub name: String,
    /// Window start, s.
    pub start_s: f64,
    /// Window end, s.
    pub end_s: f64,
}

/// The typed pass/fail block emitted into `summary.json` for a disturbed
/// run; campaigns exit 5 when any run's verdict fails.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Verdict {
    /// Conjunction of all assertion results.
    pub pass: bool,
    /// The disturbance timeline the run was subjected to.
    pub disturbances: Vec<VerdictWindow>,
    /// Worst recovery time across recovery assertions, seconds.
    pub max_recovery_s: Option<f64>,
    /// Per-assertion outcomes, in scenario order.
    pub assertions: Vec<AssertionResult>,
}

/// Evaluate `specs` against the measured `series` of a run disturbed by
/// `faults` (anchored at `t0`); `counters` is the run's final metrics
/// snapshot as `(name, value)` pairs.
pub fn evaluate(
    specs: &[AssertionSpec],
    faults: &CompiledFaults,
    series: &SeriesSet,
    counters: &[(String, f64)],
    t0: Time,
) -> Verdict {
    let t0_s = t0.as_secs_f64();
    // Windows in seconds relative to measurement start, matching t_s.
    let windows: Vec<(f64, f64)> = faults
        .disturbance_windows()
        .iter()
        .map(|w| (w.start_ns as f64 / 1e9 - t0_s, w.end_ns as f64 / 1e9 - t0_s))
        .collect();
    let edges: Vec<f64> = faults
        .edges()
        .iter()
        .map(|e| e.as_secs_f64() - t0_s)
        .collect();

    let mut results = Vec::with_capacity(specs.len());
    let mut max_recovery: Option<f64> = None;
    for spec in specs {
        let r = match spec {
            AssertionSpec::HybridAtLeastBestMedium { within_s } => {
                eval_hybrid_floor(series, &edges, *within_s)
            }
            AssertionSpec::EstimateWithin {
                tolerance_frac,
                settle_s,
            } => eval_estimate_within(series, &windows, *tolerance_frac, *settle_s),
            AssertionSpec::RecoveryWithin { within_s, frac } => {
                let r = eval_recovery(series, &windows, *within_s, *frac);
                if let Some(rec) = r.recovery_s {
                    max_recovery = Some(max_recovery.map_or(rec, |m: f64| m.max(rec)));
                }
                r
            }
            AssertionSpec::CounterAtLeast { counter, min } => eval_counter(counters, counter, *min),
        };
        results.push(r);
    }

    Verdict {
        pass: results.iter().all(|r| r.pass),
        disturbances: faults
            .disturbance_windows()
            .iter()
            .map(|w| VerdictWindow {
                kind: w.kind.to_string(),
                name: w.name.clone(),
                start_s: round3(w.start_ns as f64 / 1e9 - t0_s),
                end_s: round3(w.end_ns as f64 / 1e9 - t0_s),
            })
            .collect(),
        max_recovery_s: max_recovery.map(round3),
        assertions: results,
    }
}

/// Round to 3 decimals so verdict floats are short, stable artifacts.
fn round3(x: f64) -> f64 {
    (x * 1e3).round() / 1e3
}

fn in_grace(t: f64, edges: &[f64], within_s: f64) -> bool {
    edges.iter().any(|&e| t >= e && t < e + within_s)
}

fn in_any_window(t: f64, windows: &[(f64, f64)]) -> bool {
    windows.iter().any(|&(s, e)| t >= s && t < e)
}

/// Quiesced = outside every disturbance window AND at least `settle_s`
/// past the end of every window that already closed.
fn is_quiesced(t: f64, windows: &[(f64, f64)], settle_s: f64) -> bool {
    !windows.iter().any(|&(s, e)| t >= s && t < e + settle_s)
}

fn eval_hybrid_floor(series: &SeriesSet, edges: &[f64], within_s: f64) -> AssertionResult {
    let mut margin = f64::MAX;
    let mut checked = 0usize;
    let mut worst_t = 0.0;
    for (i, &t) in series.t_s.iter().enumerate() {
        if in_grace(t, edges, within_s) {
            continue;
        }
        checked += 1;
        let best = series.plc[i].max(series.wifi[i]);
        let m = series.hybrid[i] - best;
        if m < margin {
            margin = m;
            worst_t = t;
        }
    }
    if checked == 0 {
        return AssertionResult {
            kind: "hybrid-at-least-best-medium".to_string(),
            pass: false,
            margin: 0.0,
            recovery_s: None,
            detail: "no samples outside the grace windows".to_string(),
        };
    }
    let pass = margin >= -AGG_EPS;
    AssertionResult {
        kind: "hybrid-at-least-best-medium".to_string(),
        pass,
        margin: round3(margin),
        recovery_s: None,
        detail: format!(
            "worst slack {:.3} Mbit/s at t={:.3}s over {} samples",
            margin, worst_t, checked
        ),
    }
}

fn eval_estimate_within(
    series: &SeriesSet,
    windows: &[(f64, f64)],
    tolerance_frac: f64,
    settle_s: f64,
) -> AssertionResult {
    let mut worst = 0.0f64;
    let mut worst_t = 0.0;
    let mut checked = 0usize;
    for (i, &t) in series.t_s.iter().enumerate() {
        if !is_quiesced(t, windows, settle_s) {
            continue;
        }
        let delivered = series.delivered[i];
        if delivered <= 0.0 {
            continue;
        }
        checked += 1;
        let err = (series.estimate[i] - delivered).abs() / delivered;
        if err > worst {
            worst = err;
            worst_t = t;
        }
    }
    if checked == 0 {
        return AssertionResult {
            kind: "estimate-within".to_string(),
            pass: false,
            margin: 0.0,
            recovery_s: None,
            detail: "no quiesced samples with delivered > 0".to_string(),
        };
    }
    AssertionResult {
        kind: "estimate-within".to_string(),
        pass: worst <= tolerance_frac,
        margin: round3(tolerance_frac - worst),
        recovery_s: None,
        detail: format!(
            "worst relative error {:.3} (tolerance {:.3}) at t={:.3}s over {} quiesced samples",
            worst, tolerance_frac, worst_t, checked
        ),
    }
}

fn eval_recovery(
    series: &SeriesSet,
    windows: &[(f64, f64)],
    within_s: f64,
    frac: f64,
) -> AssertionResult {
    // Baseline: mean delivered over pre-disturbance samples.
    let first_start = windows.iter().map(|&(s, _)| s).fold(f64::MAX, f64::min);
    let mut base_sum = 0.0;
    let mut base_n = 0usize;
    for (i, &t) in series.t_s.iter().enumerate() {
        if t < first_start {
            base_sum += series.delivered[i];
            base_n += 1;
        }
    }
    if base_n == 0 || windows.is_empty() {
        return AssertionResult {
            kind: "recovery-within".to_string(),
            pass: false,
            margin: 0.0,
            recovery_s: None,
            detail: "no pre-disturbance baseline samples".to_string(),
        };
    }
    let baseline = base_sum / base_n as f64;
    let target = frac * baseline;
    let mut worst_recovery = 0.0f64;
    let mut unrecovered = 0usize;
    // Overlapping windows are one outage as far as recovery is
    // concerned — a coupled jam inside a breaker trip must not charge
    // the trip's tail to its own deadline — so merge them into disjoint
    // clusters and measure from each cluster's end.
    for &(_, end) in &merge_windows(windows) {
        // A window that outlives the series cannot be judged.
        let Some(last_t) = series.t_s.last() else {
            break;
        };
        if end > *last_t {
            continue;
        }
        let mut recovered_at = None;
        for (i, &t) in series.t_s.iter().enumerate() {
            if t < end {
                continue;
            }
            // Skip instants still inside a later overlapping window.
            if in_any_window(t, windows) {
                continue;
            }
            if series.delivered[i] >= target {
                recovered_at = Some(t - end);
                break;
            }
        }
        match recovered_at {
            Some(r) => worst_recovery = worst_recovery.max(r),
            None => unrecovered += 1,
        }
    }
    let pass = unrecovered == 0 && worst_recovery <= within_s;
    AssertionResult {
        kind: "recovery-within".to_string(),
        pass,
        margin: round3(within_s - worst_recovery),
        recovery_s: Some(round3(worst_recovery)),
        detail: format!(
            "worst recovery {:.3}s (deadline {:.3}s, target {:.3} Mbit/s), {} window(s) never recovered",
            worst_recovery, within_s, target, unrecovered
        ),
    }
}

/// Merge overlapping/touching `(start, end)` windows into disjoint
/// clusters, sorted by start.
fn merge_windows(windows: &[(f64, f64)]) -> Vec<(f64, f64)> {
    let mut sorted = windows.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("window bounds are finite"));
    let mut clusters: Vec<(f64, f64)> = Vec::new();
    for (s, e) in sorted {
        match clusters.last_mut() {
            Some(last) if s <= last.1 => last.1 = last.1.max(e),
            _ => clusters.push((s, e)),
        }
    }
    clusters
}

fn eval_counter(counters: &[(String, f64)], name: &str, min: f64) -> AssertionResult {
    let value = counters.iter().find(|(n, _)| n == name).map(|(_, v)| *v);
    match value {
        Some(v) => AssertionResult {
            kind: "counter-at-least".to_string(),
            pass: v >= min,
            margin: round3(v - min),
            recovery_s: None,
            detail: format!("counter `{}` = {:.3}, required >= {:.3}", name, v, min),
        },
        None => AssertionResult {
            kind: "counter-at-least".to_string(),
            pass: false,
            margin: round3(-min),
            recovery_s: None,
            detail: format!("counter `{}` absent from the metrics snapshot", name),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{DisturbanceKind, DisturbanceSpec};

    fn faults_one_trip() -> CompiledFaults {
        CompiledFaults::compile(
            &[DisturbanceSpec {
                name: "trip".to_string(),
                at_s: 10.0,
                duration_s: 5.0,
                ramp_s: 0.0,
                kind: DisturbanceKind::BreakerTrip { board: 0 },
            }],
            &[],
            Time::ZERO,
        )
        .unwrap()
    }

    /// 0..30s at 1 Hz: delivered 100 except dip to 20 during [10,15),
    /// recovering at t=16; estimate tracks delivered exactly.
    fn series_dip() -> SeriesSet {
        let mut s = SeriesSet::default();
        for i in 0..30 {
            let t = i as f64;
            let delivered = if (10.0..16.0).contains(&t) {
                20.0
            } else {
                100.0
            };
            s.t_s.push(t);
            s.plc.push(delivered * 0.6);
            s.wifi.push(delivered * 0.4);
            s.hybrid.push(delivered);
            s.estimate.push(delivered);
            s.delivered.push(delivered);
        }
        s
    }

    #[test]
    fn all_assertions_pass_on_well_behaved_series() {
        let faults = faults_one_trip();
        let series = series_dip();
        let specs = vec![
            AssertionSpec::HybridAtLeastBestMedium { within_s: 2.0 },
            AssertionSpec::EstimateWithin {
                tolerance_frac: 0.10,
                settle_s: 2.0,
            },
            AssertionSpec::RecoveryWithin {
                within_s: 2.0,
                frac: 0.9,
            },
            AssertionSpec::CounterAtLeast {
                counter: "faults.edges".to_string(),
                min: 2.0,
            },
        ];
        let counters = vec![("faults.edges".to_string(), 2.0)];
        let v = evaluate(&specs, &faults, &series, &counters, Time::ZERO);
        for a in &v.assertions {
            assert!(a.pass, "{}: {}", a.kind, a.detail);
        }
        assert!(v.pass);
        assert_eq!(v.disturbances.len(), 1);
        assert_eq!(v.disturbances[0].kind, "breaker-trip");
        assert_eq!(v.max_recovery_s, Some(1.0));
    }

    #[test]
    fn hybrid_floor_violation_fails_with_negative_margin() {
        let faults = faults_one_trip();
        let mut series = series_dip();
        // Break aggregation at a quiesced instant: hybrid below PLC alone.
        series.hybrid[25] = 30.0;
        let v = evaluate(
            &[AssertionSpec::HybridAtLeastBestMedium { within_s: 2.0 }],
            &faults,
            &series,
            &[],
            Time::ZERO,
        );
        assert!(!v.pass);
        assert!(v.assertions[0].margin < 0.0);
        assert!(
            v.assertions[0].detail.contains("t=25.000"),
            "{}",
            v.assertions[0].detail
        );
    }

    #[test]
    fn slow_recovery_fails_the_deadline() {
        let faults = faults_one_trip();
        let series = series_dip(); // recovers 1s after window end
        let v = evaluate(
            &[AssertionSpec::RecoveryWithin {
                within_s: 0.5,
                frac: 0.9,
            }],
            &faults,
            &series,
            &[],
            Time::ZERO,
        );
        assert!(!v.pass);
        assert_eq!(v.assertions[0].recovery_s, Some(1.0));
    }

    #[test]
    fn stale_estimate_fails_only_outside_settle() {
        let faults = faults_one_trip();
        let mut series = series_dip();
        // Estimate wildly wrong while the trip is active: ignored.
        series.estimate[12] = 500.0;
        let ok = evaluate(
            &[AssertionSpec::EstimateWithin {
                tolerance_frac: 0.10,
                settle_s: 2.0,
            }],
            &faults,
            &series,
            &[],
            Time::ZERO,
        );
        assert!(ok.pass, "{}", ok.assertions[0].detail);
        // Wrong long after quiescing: counted.
        series.estimate[25] = 500.0;
        let bad = evaluate(
            &[AssertionSpec::EstimateWithin {
                tolerance_frac: 0.10,
                settle_s: 2.0,
            }],
            &faults,
            &series,
            &[],
            Time::ZERO,
        );
        assert!(!bad.pass);
    }

    #[test]
    fn overlapping_windows_recover_as_one_cluster() {
        // A short jam [10, 12) nested in the trip [10, 15): its recovery
        // must be measured from the cluster end (15+1=16 -> 1s), not
        // from its own end (16-12 = 4s).
        let faults = CompiledFaults::compile(
            &[
                DisturbanceSpec {
                    name: "trip".to_string(),
                    at_s: 10.0,
                    duration_s: 5.0,
                    ramp_s: 0.0,
                    kind: DisturbanceKind::BreakerTrip { board: 0 },
                },
                DisturbanceSpec {
                    name: "jam".to_string(),
                    at_s: 10.0,
                    duration_s: 2.0,
                    ramp_s: 0.0,
                    kind: DisturbanceKind::WifiJam { penalty_db: 20.0 },
                },
            ],
            &[],
            Time::ZERO,
        )
        .unwrap();
        let v = evaluate(
            &[AssertionSpec::RecoveryWithin {
                within_s: 2.0,
                frac: 0.9,
            }],
            &faults,
            &series_dip(),
            &[],
            Time::ZERO,
        );
        assert!(v.pass, "{}", v.assertions[0].detail);
        assert_eq!(v.max_recovery_s, Some(1.0));
    }

    #[test]
    fn missing_counter_fails_with_named_detail() {
        let faults = CompiledFaults::default();
        let v = evaluate(
            &[AssertionSpec::CounterAtLeast {
                counter: "faults.edges".to_string(),
                min: 1.0,
            }],
            &faults,
            &SeriesSet::default(),
            &[],
            Time::ZERO,
        );
        assert!(!v.pass);
        assert!(v.assertions[0].detail.contains("faults.edges"));
    }

    #[test]
    fn verdict_serialises_deterministically() {
        let faults = faults_one_trip();
        let series = series_dip();
        let specs = vec![AssertionSpec::RecoveryWithin {
            within_s: 2.0,
            frac: 0.9,
        }];
        let a = serde::Serialize::to_value(&evaluate(&specs, &faults, &series, &[], Time::ZERO));
        let b = serde::Serialize::to_value(&evaluate(&specs, &faults, &series, &[], Time::ZERO));
        assert_eq!(serde_json::to_string(&a), serde_json::to_string(&b));
    }
}
