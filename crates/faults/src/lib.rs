//! `electrifi-faults` — disturbance scripting and the in-sim assertion
//! engine.
//!
//! The paper's §7 claim is that the hybrid WiFi+PLC layer *adapts* to
//! medium dynamics; a static scenario never exercises that machinery.
//! This crate supplies the missing dynamics as a typed subsystem with
//! three layers:
//!
//! 1. **Specs** ([`DisturbanceSpec`], [`CouplingSpec`],
//!    [`AssertionSpec`]) — the vocabulary the scenario schema's
//!    `disturbances` / `couplings` / `assertions` arrays parse into:
//!    appliance surges, breaker trips isolating a distribution board,
//!    cable-degradation ramps, WiFi jamming bursts and probe dropouts,
//!    plus delayed couplings (event A triggers effect B after d ms).
//! 2. **Profiles** ([`LinkOverlay`], [`JamProfile`], [`DropoutProfile`],
//!    [`OutageProfile`]) — compiled, *pure functions of simulation time*
//!    that the medium models evaluate inline. Purity is the determinism
//!    story: an overlay cannot observe execution shape, so batched
//!    (lockstep), sharded and serial runs see bit-identical channels.
//! 3. **Verdicts** ([`Verdict`], [`evaluate`]) — declarative invariants
//!    evaluated against the measured series of a disturbed run, emitted
//!    as a typed pass/fail block that gates campaigns (exit code 5).
//!
//! [`CompiledFaults::compile`] turns specs into profiles anchored at a
//! measurement start time; [`FaultEngine`] is the run-time cursor over
//! the boundary-event timeline and implements
//! [`Persist`](electrifi_state::Persist) so a checkpoint taken
//! mid-disturbance resumes bit-identically.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod engine;
mod profile;
mod spec;
mod verdict;

pub use engine::{CompiledFaults, FaultEngine, ResolvedWindow};
pub use profile::{
    DropoutProfile, JamProfile, JamWindow, LinkOverlay, OutageProfile, OverlayWindow,
};
pub use spec::{AssertionSpec, CouplingSpec, DisturbanceKind, DisturbanceSpec, ISOLATION_DB};
pub use verdict::{evaluate, AssertionResult, SeriesSet, Verdict, VerdictWindow};
