//! Failure-injection scenarios: the system must degrade and recover the
//! way the measured devices do.

use electrifi::experiments::PAPER_SEED;
use electrifi::{LinkProbeSim, PaperEnv};
use plc_mac::sim::{Flow, PlcSim, SimConfig};
use plc_phy::channel::{PlcChannel, PlcChannelParams};
use plc_phy::PlcTechnology;
use simnet::appliance::ApplianceKind;
use simnet::grid::Grid;
use simnet::schedule::Schedule;
use simnet::time::{Duration, Time};
use simnet::traffic::TrafficSource;

/// A device reset in the middle of saturated traffic: throughput
/// collapses to ROBO and re-converges, exactly like the paper's Fig. 16
/// reset experiments.
#[test]
fn device_reset_mid_traffic_recovers() {
    let env = PaperEnv::new(PAPER_SEED);
    let outlets = [
        (1u16, env.testbed.station(1).outlet),
        (2u16, env.testbed.station(2).outlet),
    ];
    let mut sim = PlcSim::new(SimConfig::default(), &env.testbed.grid, &outlets);
    let _f = sim.add_flow(Flow::unicast(1, 2, TrafficSource::iperf_saturated()));
    sim.run_until(Time::from_secs(5));
    let before = sim.int6krate(1, 2);
    assert!(before > 30.0, "pre-reset BLE={before}");
    sim.reset_device(2);
    let dropped = sim.int6krate(1, 2);
    assert!(dropped < 10.0, "reset must drop to ROBO: {dropped}");
    // Traffic keeps flowing; the estimator re-converges.
    sim.run_until(Time::from_secs(12));
    let after = sim.int6krate(1, 2);
    assert!(
        after > 0.7 * before,
        "post-reset BLE={after} vs pre-reset {before}"
    );
}

/// An "appliance storm": a microwave next to the receiver switches on
/// mid-run. The tone maps must degrade (lower BLE) rather than keep
/// reporting stale capacity.
#[test]
fn appliance_storm_degrades_tone_maps() {
    // Custom grid: A --70m-- B with a microwave 2 m from B on a
    // 60 s on / 60 s off duty cycle. The length puts the link's SNR near
    // the top modulation boundaries, where an 11 dB noise hit must cost
    // real bit loading (a short link would absorb it inside its margin).
    let mut g = Grid::new();
    let a = g.add_outlet("A");
    let b = g.add_outlet("B");
    g.connect(a, b, 70.0);
    let hb = g.add_outlet("microwave");
    g.connect(b, hb, 2.0);
    g.attach(
        hb,
        ApplianceKind::Microwave,
        Schedule::DutyCycle {
            on_s: 60,
            off_s: 60,
            seed: 0,
        },
    );
    // Find an off->on edge that is preceded by a full OFF minute.
    let app = &g.appliances()[0];
    let mut edge = None;
    for s in 61..400u64 {
        let now_on = app.schedule.is_on(Time::from_secs(s));
        let next_on = app.schedule.is_on(Time::from_secs(s + 1));
        if !now_on && next_on {
            edge = Some(s + 1);
            break;
        }
    }
    let edge = edge.expect("duty cycle has an on edge");
    let channel = PlcChannel::from_grid(
        &g,
        a,
        b,
        PlcTechnology::HpAv,
        PlcChannelParams::default(),
        7,
    )
    .expect("wired");
    let env = PaperEnv::new(PAPER_SEED);
    let mut sim = LinkProbeSim::new(channel, plc_phy::channel::LinkDir::AtoB, env.estimator, 3);
    // Long pre-phase so the bootstrap margin has fully decayed (the
    // estimate is no longer drifting upward on its own).
    let t0 = Time::from_secs(edge.saturating_sub(55));
    sim.warmup(t0, 8);
    sim.saturate_interval(
        t0 + Duration::from_secs(8),
        Time::from_secs(edge) - Duration::from_secs(1),
        Duration::from_millis(20),
    );
    let before = sim.ble_avg();
    // Drive through the switch-on and give the estimator time to react.
    sim.saturate_interval(
        Time::from_secs(edge + 1),
        Time::from_secs(edge + 45),
        Duration::from_millis(20),
    );
    let after = sim.ble_avg();
    assert!(
        after < before * 0.97,
        "microwave ON must degrade BLE: before={before} after={after}"
    );
}

/// WiFi rate adaptation recovers after a deep fade: the whole-band MCS
/// drops hard and climbs back, unlike PLC's graceful per-carrier
/// adjustment.
#[test]
fn wifi_rate_adaptation_survives_deep_fade() {
    use rand::SeedableRng;
    use wifi80211::rate::{RateAdapter, RateAdapterConfig};
    let mut rng = rand::rngs::StdRng::seed_from_u64(3);
    let mut adapter = RateAdapter::new(RateAdapterConfig::default());
    for _ in 0..60 {
        adapter.observe(&mut rng, 28.0);
    }
    let healthy = adapter.capacity_mbps();
    assert!(healthy >= 104.0);
    // Deep fade: 15 dB down for a while, with loss bursts.
    for _ in 0..30 {
        adapter.observe(&mut rng, 13.0);
        adapter.on_loss_burst();
    }
    let faded = adapter.capacity_mbps();
    assert!(faded < healthy * 0.5, "fade must bite: {faded}");
    // Recovery.
    for _ in 0..60 {
        adapter.observe(&mut rng, 28.0);
    }
    assert!(adapter.capacity_mbps() >= healthy * 0.9);
}

/// Cutting the only cable between two stations makes channel
/// construction fail cleanly (no panics, no NaNs).
#[test]
fn severed_wiring_is_reported_not_panicked() {
    let mut g = Grid::new();
    let a = g.add_outlet("a");
    let b = g.add_outlet("b");
    // No connection at all.
    assert!(PlcChannel::from_grid(
        &g,
        a,
        b,
        PlcTechnology::HpAv,
        PlcChannelParams::default(),
        1
    )
    .is_none());
}

/// Saturating a hopeless (cross-board) link produces (near-)zero
/// delivery but must not wedge the simulation: the estimator keeps the
/// link in ROBO and time advances normally.
#[test]
fn hopeless_link_does_not_wedge_the_mac() {
    let env = PaperEnv::new(PAPER_SEED);
    // Stations 0 (board B1) and 15 (board B2): two boards apart.
    let outlets = [
        (0u16, env.testbed.station(0).outlet),
        (15u16, env.testbed.station(15).outlet),
    ];
    let mut sim = PlcSim::new(SimConfig::default(), &env.testbed.grid, &outlets);
    let f = sim.add_flow(Flow::unicast(0, 15, TrafficSource::iperf_saturated()));
    sim.run_until(Time::from_secs(2));
    assert!(sim.now() >= Time::from_secs(2), "time must advance");
    let delivered = sim.take_delivered(f);
    // Deliveries, if any, are a trickle (ROBO across 240+ m of cable and
    // two boards).
    assert!(
        delivered.len() < 200,
        "cross-board link should be hopeless: {} pkts",
        delivered.len()
    );
}
