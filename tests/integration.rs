//! Cross-crate integration tests: end-to-end scenarios exercising the
//! whole stack (testbed → channels → MAC/estimation → metrics → hybrid
//! layer) through the public APIs only.

use electrifi::analysis::LinkClass;
use electrifi::experiments::{Scale, PAPER_SEED};
use electrifi::{LinkProbeSim, PaperEnv};
use electrifi_testbed::{PlcNetwork, Testbed};
use hybrid1905::balancer::SplitStrategy;
use hybrid1905::metrics::{LinkId, LinkMetric, LinkMetricsDb, Medium};
use plc_mac::sim::{Flow, PlcSim, SimConfig};
use plc_phy::PlcTechnology;
use simnet::time::{Duration, Time};
use simnet::traffic::TrafficSource;

#[test]
fn end_to_end_metric_pipeline() {
    // Channel → probe sim → 1905 metric DB → classification → probe plan.
    let env = PaperEnv::new(PAPER_SEED);
    let mut db = LinkMetricsDb::new();
    let now = Time::from_hours(10);
    for (a, b) in [(1u16, 2u16), (5, 8), (9, 10)] {
        for (src, dst) in [(a, b), (b, a)] {
            let mut sim = LinkProbeSim::new(
                env.plc_channel(src, dst),
                PaperEnv::dir(src, dst),
                env.estimator,
                99,
            );
            sim.warmup(now, 8);
            db.update(
                LinkId {
                    src,
                    dst,
                    medium: Medium::Plc,
                },
                LinkMetric {
                    capacity_mbps: sim.ble_avg(),
                    loss_rate: sim.pberr_cumulative(),
                    updated_at: now,
                },
            );
        }
    }
    assert_eq!(db.len(), 6);
    for (link, metric) in db.links() {
        assert!(metric.capacity_mbps > 0.0, "{link:?}");
        let class = LinkClass::of_ble(metric.capacity_mbps);
        let plan = electrifi::guidelines::ProbePlan::recommended(metric.capacity_mbps, false);
        // Guideline consistency: good links get the slowest probing.
        if class == LinkClass::Good {
            assert_eq!(plan.interval, Duration::from_secs(80));
        }
        // Both directions exist — asymmetry is measurable.
        assert!(db.asymmetry(*link).is_some());
    }
}

#[test]
fn full_mac_simulation_on_the_testbed_grid() {
    // Run the detailed MAC on real testbed wiring with three stations and
    // verify every measurement channel works together.
    let env = PaperEnv::new(PAPER_SEED);
    let outlets = [
        (1u16, env.testbed.station(1).outlet),
        (2u16, env.testbed.station(2).outlet),
        (6u16, env.testbed.station(6).outlet),
    ];
    let cfg = SimConfig {
        seed: 7,
        sniffer: true,
        ..SimConfig::default()
    };
    let mut sim = PlcSim::new(cfg, &env.testbed.grid, &outlets);
    let f1 = sim.add_flow(Flow::unicast(1, 2, TrafficSource::iperf_saturated()));
    let f2 = sim.add_flow(Flow::unicast(6, 2, TrafficSource::probe_150kbps()));
    sim.run_until(Time::from_secs(10));
    // Both flows delivered.
    let d1 = sim.take_delivered(f1);
    let d2 = sim.take_delivered(f2);
    assert!(d1.len() > 500, "saturated flow: {}", d1.len());
    assert!(d2.len() > 50, "probe flow: {}", d2.len());
    // The probe flow's rate is honored despite contention.
    let rate = d2.len() as f64 * 1500.0 * 8.0 / 10.0;
    assert!((rate - 150_000.0).abs() / 150_000.0 < 0.25, "rate={rate}");
    // Metrics flow through the MM interface.
    assert!(sim.int6krate(1, 2) > 10.0);
    assert!(sim.ampstat(1, 2).is_some());
    // The sniffer saw both links' SoFs.
    let srcs: std::collections::HashSet<u16> =
        sim.sniffer_records().iter().map(|r| r.sof.src).collect();
    assert!(srcs.contains(&1) && srcs.contains(&6));
}

#[test]
fn plc_asymmetry_exceeds_wifi_asymmetry_on_average() {
    // §5: PLC asymmetry is more severe than WiFi's. Compare capacity
    // ratios across a sample of links.
    let env = PaperEnv::new(PAPER_SEED);
    let now = Time::from_hours(14);
    let mut plc_ratios = Vec::new();
    let mut wifi_ratios = Vec::new();
    for (a, b) in [(1u16, 2u16), (5u16, 8u16), (0, 3), (9, 10), (4, 7), (2, 11)] {
        let mut fwd =
            LinkProbeSim::new(env.plc_channel(a, b), PaperEnv::dir(a, b), env.estimator, 1);
        let mut rev =
            LinkProbeSim::new(env.plc_channel(a, b), PaperEnv::dir(b, a), env.estimator, 2);
        fwd.warmup(now, 8);
        rev.warmup(now, 8);
        let (f, r) = (fwd.ble_avg(), rev.ble_avg());
        if f > 1.0 && r > 1.0 {
            plc_ratios.push((f / r).max(r / f));
        }
        let w = env.wifi_channel(a, b);
        // WiFi asymmetry in the model comes only from temporal sampling.
        let f = w.snr_db(now);
        let r = w.snr_db(now + Duration::from_millis(3));
        let (cf, cr) = (
            wifi80211::Mcs::select(f, 1.5)
                .map(|m| m.phy_rate_mbps())
                .unwrap_or(0.0),
            wifi80211::Mcs::select(r, 1.5)
                .map(|m| m.phy_rate_mbps())
                .unwrap_or(0.0),
        );
        if cf > 0.0 && cr > 0.0 {
            wifi_ratios.push((cf / cr).max(cr / cf));
        }
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    assert!(!plc_ratios.is_empty());
    assert!(
        mean(&plc_ratios) >= mean(&wifi_ratios) * 0.9,
        "plc={:?} wifi={:?}",
        plc_ratios,
        wifi_ratios
    );
}

#[test]
fn hybrid_layer_combines_real_medium_streams() {
    // PLC event sim + WiFi event sim + balancer: the full §7.4 data path.
    let env = PaperEnv::new(PAPER_SEED);
    let (a, b) = (1u16, 2u16);
    // PLC stream.
    let outlets = [
        (a, env.testbed.station(a).outlet),
        (b, env.testbed.station(b).outlet),
    ];
    let mut plc = PlcSim::new(SimConfig::default(), &env.testbed.grid, &outlets);
    let fp = plc.add_flow(Flow::unicast(a, b, TrafficSource::iperf_saturated()));
    plc.run_until(Time::from_secs(5));
    let plc_times: Vec<Time> = {
        let mut d = plc.take_delivered(fp);
        d.sort_by_key(|p| p.delivered);
        d.into_iter().map(|p| p.delivered).collect()
    };
    // WiFi stream.
    let positions = [
        (a, env.testbed.station(a).pos),
        (b, env.testbed.station(b).pos),
    ];
    let mut wifi = wifi80211::WifiSim::new(
        wifi80211::sim::WifiSimConfig::default(),
        &env.testbed.floor,
        &positions,
    );
    let fw = wifi.add_flow(wifi80211::WifiFlow {
        src: a,
        dst: b,
        source: TrafficSource::iperf_saturated(),
    });
    wifi.run_until(Time::from_secs(5));
    let wifi_times: Vec<Time> = {
        let mut d = wifi.take_delivered(fw);
        d.sort_by_key(|p| p.delivered);
        d.into_iter().map(|p| p.delivered).collect()
    };
    assert!(!plc_times.is_empty() && !wifi_times.is_empty());
    // Combine with capacity weights read from the mediums themselves.
    let plc_cap = plc_mac::throughput::throughput_from_ble_fig15(plc.int6krate(a, b));
    let wifi_cap = wifi.capacity_mbps(a, b);
    let strategy = SplitStrategy::capacity_weighted(plc_cap, wifi_cap);
    let total = plc_times.len() + wifi_times.len();
    let combined = hybrid1905::combine_streams(&plc_times, &wifi_times, strategy, total, 5);
    let hybrid_rate = combined.mean_throughput_mbps(1500);
    let plc_rate = {
        let span = (plc_times[plc_times.len() - 1] - plc_times[0]).as_secs_f64();
        (plc_times.len() - 1) as f64 * 1500.0 * 8.0 / span / 1e6
    };
    assert!(
        hybrid_rate > plc_rate,
        "hybrid {hybrid_rate} must beat single-medium {plc_rate}"
    );
}

#[test]
fn testbed_seeds_produce_distinct_but_valid_floors() {
    for seed in [1u64, 2, 3] {
        let tb = Testbed::paper_floor(seed);
        assert_eq!(tb.stations.len(), 19);
        // Every same-network pair is electrically connected.
        for (a, b) in tb.plc_pairs() {
            assert!(tb.cable_distance_m(a, b).is_some(), "seed {seed}: {a}-{b}");
        }
        // Channels build for a sample pair and produce sane spectra.
        let ch = tb
            .plc_channel(0, 5, PlcTechnology::HpAv, Default::default())
            .expect("wired");
        let spec = ch.spectrum(Testbed::link_dir(0, 5), Time::from_hours(3));
        assert!(spec.snr_db.iter().all(|s| s.is_finite()));
    }
}

#[test]
fn quick_scale_experiment_suite_is_consistent() {
    // A smoke pass over several experiment runners, checking cross-figure
    // consistency: the Fig. 15 fit should predict Fig. 3's PLC
    // throughputs reasonably.
    let env = PaperEnv::new(PAPER_SEED);
    let f15 = electrifi::experiments::capacity::fig15(&env, Scale::Quick);
    let fit = f15.fit.expect("fit exists");
    for row in &f15.rows {
        let predicted_t = (row.ble - fit.intercept) / fit.slope;
        assert!(
            (predicted_t - row.throughput).abs() < 0.35 * row.throughput.max(5.0),
            "link {}-{}: T={} predicted={}",
            row.a,
            row.b,
            row.throughput,
            predicted_t
        );
    }
    // Network membership respected by experiments: all fig15 pairs are
    // same-network.
    for row in &f15.rows {
        assert_eq!(
            env.testbed.station(row.a).network,
            env.testbed.station(row.b).network
        );
    }
    let _ = env.network_members(PlcNetwork::B);
}

#[test]
fn timescale_decomposition_matches_the_channel_structure() {
    // Drive a link and decompose its per-slot BLE samples: the invariance
    // scale (slot structure) must be visible, and a noisy link's cycle
    // std must exceed a quiet link's.
    use electrifi::analysis::decompose;
    use plc_phy::tonemap::TONEMAP_SLOTS;
    let env = PaperEnv::new(PAPER_SEED);
    let decompose_link = |a: u16, b: u16| {
        let mut sim = LinkProbeSim::new(
            env.plc_channel(a, b),
            PaperEnv::dir(a, b),
            env.estimator,
            17,
        );
        let start = Time::from_hours(2);
        let mut t = sim.warmup(start, 8);
        let mut samples = Vec::new();
        let end = t + Duration::from_secs(20);
        while t < end {
            let out = sim.frame(t, 24_000);
            samples.push((t, out.slot, sim.estimator().ble_slot(out.slot)));
            t += Duration::from_millis(50);
        }
        decompose(&samples, TONEMAP_SLOTS, Duration::from_secs(5)).expect("enough samples")
    };
    // 2-6 measured best-in-class, 10-11 worst (see EXPERIMENTS.md).
    let good = decompose_link(2, 6);
    let bad = decompose_link(10, 11);
    assert!(
        good.mean > bad.mean,
        "good {} vs bad {}",
        good.mean,
        bad.mean
    );
    // All decomposition components are finite and non-negative.
    for d in [&good, &bad] {
        assert!(d.invariance_spread.is_finite() && d.invariance_spread >= 0.0);
        assert!(d.cycle_std.is_finite() && d.cycle_std >= 0.0);
        assert!(d.random_std.is_finite() && d.random_std >= 0.0);
        assert_eq!(d.slot_means.len(), TONEMAP_SLOTS);
    }
}

#[test]
fn experiment_results_serialize_to_json() {
    // The result structs are the library's data interchange; they must
    // round-trip through serde_json.
    let env = PaperEnv::new(PAPER_SEED);
    let fig19 = electrifi::experiments::capacity::fig19(&env, Scale::Quick);
    let json = serde_json::to_string(&fig19).expect("serialize");
    assert!(json.contains("overhead_reduction"));
    let back: electrifi::experiments::capacity::Fig19Result =
        serde_json::from_str(&json).expect("deserialize");
    assert_eq!(back.adaptive.probes, fig19.adaptive.probes);
    // Tone maps and channels serialize too (persistence of calibrated
    // state).
    let ch = env.plc_channel(1, 2);
    let ch_json = serde_json::to_string(&ch).expect("channel serializes");
    let ch2: plc_phy::PlcChannel = serde_json::from_str(&ch_json).expect("channel roundtrips");
    let t = Time::from_hours(3);
    assert_eq!(
        ch.spectrum(PaperEnv::dir(1, 2), t),
        ch2.spectrum(PaperEnv::dir(1, 2), t),
        "deserialized channel must be behaviourally identical"
    );
}

#[test]
fn greenphy_interoperates_with_the_testbed() {
    // A GreenPHY pair on the same wiring: BLE caps near 10 Mb/s even on
    // the floor's best link.
    use plc_phy::estimation::{EstimatorConfig, RateProfile};
    let env = PaperEnv::new(PAPER_SEED);
    let cfg = EstimatorConfig {
        profile: RateProfile::greenphy(),
        ..env.estimator
    };
    let mut sim = LinkProbeSim::new(
        env.plc_channel(2, 6), // the floor's best link
        PaperEnv::dir(2, 6),
        cfg,
        9,
    );
    sim.warmup(Time::from_hours(2), 8);
    let ble = sim.ble_avg();
    assert!(
        (4.0..11.0).contains(&ble),
        "GreenPHY must stay in its ROBO envelope: {ble}"
    );
}
