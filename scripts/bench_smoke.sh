#!/usr/bin/env bash
# Perf smoke: time the PLC spectrum hot path (uncached reference vs the
# epoch-keyed cache, out/BENCH_channel.json) and the MAC hot loop
# (reference vs zero-allocation stepper, out/BENCH_mac.json) — seed,
# wall clock per path, speedup, cache/idle-skip hit rates. Fast enough
# to run on every change; pass --criterion to also run the full
# criterion component benches (slower).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== bench_channel smoke (writes out/BENCH_channel.json) =="
# Tiny loops — the gate-relevant invariants (digest match, zero
# allocations) still hold; run without ELECTRIFI_BENCH_SMOKE=1 for
# gate-quality cold_rebuild_us timings.
cargo build --release -q -p electrifi-bench --bin bench_channel
ELECTRIFI_BENCH_SMOKE=1 ./target/release/bench_channel

echo "== bench_mac smoke (writes out/BENCH_mac.json) =="
# Short windows — fast enough for every change. Run the binary without
# ELECTRIFI_BENCH_SMOKE=1 (and then scripts/perf_gate.sh without
# --smoke) for gate-quality timing ratios.
cargo build --release -q -p electrifi-bench --bin bench_mac
ELECTRIFI_BENCH_SMOKE=1 ./target/release/bench_mac
./scripts/perf_gate.sh --smoke

echo "== campaign smoke (writes out/smoke-campaign/) =="
cargo build --release -q -p electrifi-bench --bin campaign
./target/release/campaign scenarios/smoke-campaign.json --workers 2 --out out/smoke-campaign

echo "== checkpoint/resume smoke (interrupted == uninterrupted) =="
rm -rf out/smoke-ckpt
./target/release/campaign scenarios/smoke-campaign.json --workers 1 \
    --out out/smoke-ckpt --stop-after 1
./target/release/campaign scenarios/smoke-campaign.json --workers 1 \
    --out out/smoke-ckpt --resume out/smoke-ckpt
cmp out/smoke-campaign/summary.json out/smoke-ckpt/summary.json

echo "== bench_state (writes out/BENCH_state.json) =="
cargo build --release -q -p electrifi-bench --bin bench_state
./target/release/bench_state

if [[ "${1:-}" == "--criterion" ]]; then
    echo "== criterion component benches =="
    cargo bench -p electrifi-bench --bench components
fi
