#!/usr/bin/env bash
# Perf smoke: time the PLC spectrum hot path (uncached reference vs the
# epoch-keyed cache) and record the result as out/BENCH_channel.json —
# seed, wall clock per path, speedup, cache hit rate. Fast enough to run
# on every change; pass --criterion to also run the full criterion
# component benches (slower).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== bench_channel (writes out/BENCH_channel.json) =="
cargo build --release -q -p electrifi-bench --bin bench_channel
./target/release/bench_channel

echo "== campaign smoke (writes out/smoke-campaign/) =="
cargo build --release -q -p electrifi-bench --bin campaign
./target/release/campaign scenarios/smoke-campaign.json --workers 2 --out out/smoke-campaign

if [[ "${1:-}" == "--criterion" ]]; then
    echo "== criterion component benches =="
    cargo bench -p electrifi-bench --bench components
fi
