#!/usr/bin/env bash
# Helper: summarize run manifests (out/*.manifest.json) and print the
# headline numbers from out/*.txt for EXPERIMENTS.md.
set -e
cd "$(dirname "$0")/.."

# --- run manifests -----------------------------------------------------
# Every reproduction binary writes out/<name>.manifest.json (seed, config
# digest, scale, horizons, wall clock, events fired, metrics snapshot).
# One line per run: enough to spot a slow or misconfigured run at a
# glance.
if compgen -G "out/*.manifest.json" > /dev/null; then
  echo "== manifests =="
  python3 - <<'PY'
import glob, json

for path in sorted(glob.glob("out/*.manifest.json")):
    try:
        with open(path) as f:
            m = json.load(f)
    except (OSError, ValueError) as e:
        print(f"{path}: unreadable ({e})")
        continue
    wall = m.get("wall_clock_s", 0.0)
    events = m.get("events_fired", 0)
    eps = events / wall if wall > 0 else 0.0
    counters = m.get("metrics", {}).get("counters", [])
    top = ", ".join(
        f"{name}={value}"
        for name, value in sorted(counters, key=lambda kv: -kv[1])[:3]
    )
    # Checkpoint bookkeeping (state.checkpoint.writes/bytes/resume_loads)
    # is worth calling out whenever a run used snapshots at all.
    ckpt = ", ".join(
        f"{name.split('.')[-1]}={value}"
        for name, value in sorted(counters)
        if name.startswith("state.checkpoint.") and value
    )
    print(
        f"{m.get('name', '?'):>10}  seed={m.get('seed', '?')}"
        f"  scale={m.get('scale', '?'):>5}"
        f"  horizon={m.get('sim_horizon_s', 0.0):.0f}s"
        f"  wall={wall:6.1f}s  events={events}  ({eps:,.0f} ev/s)"
        + (f"  top: {top}" if top else "")
        + (f"  checkpoint: {ckpt}" if ckpt else "")
    )
    # Runs executed with ELECTRIFI_TRACE/ELECTRIFI_PROFILE carry a span
    # profile; untraced runs have profile = null.
    prof = m.get("profile")
    if prof and prof.get("spans"):
        print(f"{'':>12}{'top spans by self-time':<26}{'count':>9}"
              f"{'self_ms':>10}{'total_ms':>10}"
              f"{'p50_us':>9}{'p90_us':>9}{'p99_us':>9}")
        for s in prof["spans"][:8]:
            print(f"{'':>12}{s['name']:<26}{s['count']:>9}"
                  f"{s['self_ns'] / 1e6:>10.2f}{s['total_ns'] / 1e6:>10.2f}"
                  f"{s['p50_ns'] / 1e3:>9.1f}{s['p90_ns'] / 1e3:>9.1f}"
                  f"{s['p99_ns'] / 1e3:>9.1f}")
PY
else
  echo "== manifests ==  (none found under out/)"
fi

# --- campaign summaries ------------------------------------------------
# The campaign runner writes out/<campaign>/summary.json plus one
# <run>.manifest.json per run (see `campaign --help`). One line per run
# plus the campaign-level totals.
if compgen -G "out/*/summary.json" > /dev/null; then
  echo "== campaigns =="
  python3 - <<'PY'
import glob, json

for path in sorted(glob.glob("out/*/summary.json")):
    try:
        with open(path) as f:
            s = json.load(f)
    except (OSError, ValueError) as e:
        print(f"{path}: unreadable ({e})")
        continue
    print(f"{s.get('campaign', '?')}: {len(s.get('runs', []))} run(s)"
          f"  digest={s.get('config_digest', '?')}")
    for run in s.get("runs", []):
        heads = "  ".join(
            f"{e['kind']}.{k}={v:.3g}"
            for e in run.get("experiments", [])
            for k, v in e.get("headline", [])[:2]
        )
        print(f"  {run.get('run', '?'):32} stations={run.get('stations', '?'):>3}"
              f"  plc_links={run.get('plc_links', '?'):>4}  {heads}")
    totals = ", ".join(f"{k}={v:.3g}" for k, v in s.get("totals", [])[:6])
    if totals:
        print(f"  totals: {totals}")
PY
else
  echo "== campaigns ==  (none found under out/*/)"
fi

# --- disturbance verdicts ----------------------------------------------
# Gated campaigns (experiments: ["disturbance"]) carry a typed verdict
# block per run: one pass/fail line per declared assertion plus the
# worst observed recovery time. Aggregate across every summary under
# out/: a table of per-assertion-kind pass counts and recovery stats.
if compgen -G "out/*/summary.json" > /dev/null; then
  python3 - <<'PY'
import glob, json

kinds = {}   # kind -> [passed, total]
recov = []   # per-run worst recovery, seconds
runs = fails = 0
for path in sorted(glob.glob("out/*/summary.json")):
    try:
        with open(path) as f:
            s = json.load(f)
    except (OSError, ValueError):
        continue
    for run in s.get("runs", []):
        v = run.get("verdict")
        if not v:
            continue
        runs += 1
        if not v.get("pass"):
            fails += 1
        for a in v.get("assertions", []):
            k = kinds.setdefault(a["kind"], [0, 0])
            k[0] += 1 if a["pass"] else 0
            k[1] += 1
        if v.get("max_recovery_s") is not None:
            recov.append(v["max_recovery_s"])
if runs:
    print("== disturbance verdicts ==")
    print(f"{runs} gated run(s), {runs - fails} passed, {fails} failed")
    print(f"  {'assertion':<28}{'passed':>8}{'total':>7}")
    for kind in sorted(kinds):
        p, t = kinds[kind]
        flag = "" if p == t else "   <-- FAILING"
        print(f"  {kind:<28}{p:>8}{t:>7}{flag}")
    if recov:
        recov.sort()
        print(f"  recovery: worst={recov[-1]:.3f}s"
              f"  median={recov[len(recov) // 2]:.3f}s"
              f"  over {len(recov)} run(s)")
PY
fi

# --- serve control plane -----------------------------------------------
# The serve binary periodically (and on shutdown) writes
# out/<dir>/server.metrics.json in the standard MetricsSnapshot shape:
# queue admission/completion counters, stream backpressure drops, and
# worker lifecycle (deaths, shards requeued, runs resumed from
# checkpoint).
if compgen -G "out/**/server.metrics.json" > /dev/null || compgen -G "out/*/server.metrics.json" > /dev/null; then
  echo "== serve control plane =="
  python3 - <<'PY'
import glob, json

for path in sorted(set(glob.glob("out/*/server.metrics.json")
                       + glob.glob("out/**/server.metrics.json", recursive=True))):
    try:
        with open(path) as f:
            m = json.load(f)
    except (OSError, ValueError) as e:
        print(f"{path}: unreadable ({e})")
        continue
    c = dict(m.get("counters", []))
    g = dict(m.get("gauges", []))
    print(f"{path}:")
    print(f"  queue: submitted={c.get('serve.queue.submitted', 0)}"
          f"  completed={c.get('serve.queue.completed', 0)}"
          f"  failed={c.get('serve.queue.failed', 0)}"
          f"  cancelled={c.get('serve.queue.cancelled', 0)}"
          f"  rejected_full={c.get('serve.queue.rejected_full', 0)}"
          f"  depth={g.get('serve.queue.depth', 0):.0f}")
    print(f"  stream: events={c.get('serve.stream.events', 0)}"
          f"  subscribers={c.get('serve.stream.subscribers', 0)}"
          f"  dropped={c.get('serve.stream.dropped', 0)}")
    print(f"  workers: spawned={c.get('serve.workers.spawned', 0)}"
          f"  deaths={c.get('serve.workers.deaths', 0)}"
          f"  shards_requeued={c.get('serve.workers.shards_requeued', 0)}"
          f"  runs_executed={c.get('serve.workers.runs_executed', 0)}"
          f"  runs_resumed={c.get('serve.workers.runs_resumed', 0)}")
PY
else
  echo "== serve control plane ==  (no server.metrics.json under out/)"
fi

# --- perf benchmarks ---------------------------------------------------
# bench_mac writes out/BENCH_mac.json: reference vs optimized MAC
# stepper (steps/s, heap allocations per steady-state window, digest
# agreement) plus the idle-skip hit rate. The plc.mac.idle_skips /
# scratch_reuses / allocs_saved counters also land in every run
# manifest's metrics snapshot, so long-running reproductions report the
# same numbers per run above.
if [ -f out/BENCH_mac.json ]; then
  echo "== bench_mac =="
  python3 - <<'PY'
import json

with open("out/BENCH_mac.json") as f:
    b = json.load(f)
smoke = "  (SMOKE run: timings not meaningful)" if b.get("smoke") else ""
print(f"seed={b.get('seed', '?')}  reps={b.get('reps', '?')}{smoke}")
for name in ("mac_loop", "saturated", "full_profile"):
    s = b.get(name)
    if not s:
        continue
    opt, ref = s["optimized"], s["reference"]
    print(
        f"{name:>14}: {s['speedup']:.2f}x"
        f"  ({ref['steps_per_sec']:,.0f} -> {opt['steps_per_sec']:,.0f} steps/s)"
        f"  allocs/window {ref['allocs_in_window']} -> {opt['allocs_in_window']}"
        f"  digest_match={s['digest_match']}"
    )
idle = b.get("idle")
if idle:
    print(
        f"{'idle':>14}: hit rate {idle['hit_rate']:.2f}"
        f"  ({idle['idle_skips']} skips / {idle['idle_rescans']} rescans)"
        f"  digest_match={idle['digest_match']}"
    )
so = b.get("span_overhead")
if so:
    print(
        f"{'spans':>14}: enabled/disabled ratio {so['ratio']:.3f}"
        f"  ({so['disabled_steps_per_sec']:,.0f} ->"
        f" {so['enabled_steps_per_sec']:,.0f} steps/s)"
        f"  digest_match={so['digest_match']}"
    )
    spans = so.get("spans", {}).get("spans", [])
    if spans:
        print(f"{'':>16}{'top spans by self-time':<26}{'count':>9}"
              f"{'self_ms':>10}{'total_ms':>10}"
              f"{'p50_us':>9}{'p90_us':>9}{'p99_us':>9}")
        for s in spans[:8]:
            print(f"{'':>16}{s['name']:<26}{s['count']:>9}"
                  f"{s['self_ns'] / 1e6:>10.2f}{s['total_ns'] / 1e6:>10.2f}"
                  f"{s['p50_ns'] / 1e3:>9.1f}{s['p90_ns'] / 1e3:>9.1f}"
                  f"{s['p99_ns'] / 1e3:>9.1f}")
PY
fi

if [ -f out/BENCH_state.json ]; then
  echo "== bench_state =="
  python3 - <<'PY'
import json

with open("out/BENCH_state.json") as f:
    b = json.load(f)
kb = b.get("snapshot_bytes", 0) / 1e3
print(
    f"snapshot={kb:.0f}kB"
    f"  save={b.get('save_mb_per_sec', 0):.0f}MB/s"
    f" ({b.get('saves_per_sec', 0):.0f}/s)"
    f"  load={b.get('load_mb_per_sec', 0):.0f}MB/s"
    f" ({b.get('loads_per_sec', 0):.0f}/s)"
    f"  reencode_identical={b.get('reencode_identical')}"
)
PY
fi

if [ -f out/BENCH_channel.json ]; then
  echo "== bench_channel =="
  python3 - <<'PY'
import json

with open("out/BENCH_channel.json") as f:
    b = json.load(f)
for k in ("speedup", "cache_hit_rate", "cold_rebuild_us"):
    if k in b:
        print(f"{k}={b[k]:.3g}", end="  ")
if "digest_match" in b:
    print(f"digest_match={b['digest_match']}", end="  ")
print()
warm = b.get("warm")
if warm:
    print(f"warm: per_call_us={warm['per_call_us']:.3g}  "
          f"allocs_per_call={warm['allocs_per_call']:g}  "
          f"key_skip_rate={warm['key_skip_rate']:.3g}")
rb = b.get("cold_rebuild")
if rb:
    print(f"rebuild: cold_rebuild_us={rb['cold_rebuild_us']:.3g}  "
          f"allocs_per_rebuild={rb['allocs_per_rebuild']:g}  "
          f"rebuilds={rb['rebuilds']}")
PY
fi

# bench_mac also writes out/BENCH_batch.json: the lockstep batch engine
# (plc_mac::PlcBatch over a simnet time wheel) advancing an ensemble of
# independent links at widths 1/16/256. Width 1 is today's per-sim chunk
# loop; wider arms must match its digest bit-for-bit and run allocation
# free in the timed window.
if [ -f out/BENCH_batch.json ]; then
  echo "== bench_batch =="
  python3 - <<'PY'
import json

with open("out/BENCH_batch.json") as f:
    b = json.load(f)
smoke = "  (SMOKE run: timings not meaningful)" if b.get("smoke") else ""
print(f"seed={b.get('seed', '?')}  reps={b.get('reps', '?')}{smoke}")
for name in ("fig16_shaped", "saturated"):
    p = b.get(name)
    if not p:
        continue
    print(
        f"{name:>14}: {p['sims']} sims x {p['window_sim_s']:.0f}s"
        f"  16/1 {p['speedup_16_over_1']:.2f}x"
        f"  256/1 {p['speedup_256_over_1']:.2f}x"
        f"  digest_match={p['digest_match']}"
    )
    for arm in p.get("arms", []):
        print(
            f"{'':>16}batch={arm['batch']:>3}"
            f"  {arm['steps_per_sec']:>12,.0f} steps/s"
            f"  wall={arm['wall_s']:.3f}s"
            f"  allocs/window={arm['allocs_in_window']}"
        )
PY
fi

# --- headline numbers from text dumps ----------------------------------
# Only figures whose text dump exists get a section: the binaries are
# run piecemeal, and a missing file is not an error.
section() { # section <name> <file> <cmd...>
  local name=$1 file=$2
  shift 2
  [ -f "$file" ] || return 0
  echo "== $name =="
  "$@" "$file" || true
}
section fig03 out/fig03.txt grep -E 'covers|outperforms|max'
section fig04 out/fig04.txt grep -E 'cv='
section fig06 out/fig06.txt tail -2
section fig07 out/fig07.txt grep -E 'rho'
section fig11 out/fig11.txt grep -E 'rho'
section fig12 out/fig12.txt grep 'step'
section fig15 out/fig15.txt grep -E 'fit|residuals'
section fig16 out/fig16.txt grep -E 't90'
section fig18 out/fig18.txt grep -E 'probes ->'
section fig19 out/fig19.txt grep -E 'overhead'
section fig20 out/fig20.txt sh -c 'grep -E "Hybrid|Round" "$0" | head -4'
section fig21 out/fig21.txt grep -E 'observations'
section fig22 out/fig22.txt grep -E 'rho'
section fig23 out/fig23.txt grep -E 'retention'
section fig24 out/fig24.txt grep -E 'retention'
section ablation out/ablation.txt grep -E 'share std|retention'
