#!/usr/bin/env bash
# Helper: print the headline numbers from out/*.txt for EXPERIMENTS.md.
set -e
cd "$(dirname "$0")"
echo "== fig03 =="; grep -E 'covers|outperforms|max' out/fig03.txt || true
echo "== fig04 =="; grep -E 'cv=' out/fig04.txt || true
echo "== fig06 =="; tail -2 out/fig06.txt
echo "== fig07 =="; grep -E 'rho' out/fig07.txt
echo "== fig11 =="; grep -E 'rho' out/fig11.txt
echo "== fig12 =="; grep 'step' out/fig12.txt
echo "== fig15 =="; grep -E 'fit|residuals' out/fig15.txt
echo "== fig16 =="; grep -E 't90' out/fig16.txt
echo "== fig18 =="; grep -E 'probes ->' out/fig18.txt
echo "== fig19 =="; grep -E 'overhead' out/fig19.txt
echo "== fig20 =="; grep -E 'Hybrid|Round' out/fig20.txt | head -4
echo "== fig21 =="; grep -E 'observations' out/fig21.txt
echo "== fig22 =="; grep -E 'rho' out/fig22.txt
echo "== fig23 =="; grep -E 'retention' out/fig23.txt
echo "== fig24 =="; grep -E 'retention' out/fig24.txt
echo "== ablation =="; grep -E 'share std|retention' out/ablation.txt
