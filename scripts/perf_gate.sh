#!/usr/bin/env bash
# Perf-regression gate for the MAC hot loop and the PHY spectrum kernels.
#
# Compares out/BENCH_mac.json (written by `bench_mac`) against the
# checked-in baseline scripts/baselines/BENCH_mac.baseline.json and
# fails on a regression:
#
#   - any digest mismatch between the reference and optimized steppers
#     (the optimizations must stay bit-identical);
#   - any heap allocation in an optimized quiesced steady-state window
#     (the zero-allocation property is the whole point);
#   - mac_loop speedup below the 3x acceptance floor;
#   - mac_loop / saturated speedup or idle-skip hit rate more than 20%
#     below the committed baseline;
#   - a digest mismatch between the span-traced and untraced optimized
#     arms (observation must never perturb the simulation), or — full
#     mode only — an enabled/disabled throughput ratio below 0.95
#     (spans may cost at most 5% on the gated workload).
#
# It also gates out/BENCH_batch.json (the batched multi-sim engine,
# written by `bench_mac`) against scripts/baselines/BENCH_batch.baseline.json:
#
#   - every batch width must fold the same ensemble digest (the lockstep
#     engine must stay bit-identical to per-sim stepping);
#   - the engine arms' timed windows must be allocation-free;
#   - full mode only: the fig16-shaped ensemble must run >= 2x faster at
#     batch=256 than at batch=1 (the acceptance floor), and may not
#     regress >20% vs. the committed baseline.
#
# It also compares out/BENCH_channel.json (written by `bench_channel`)
# against scripts/baselines/BENCH_channel.baseline.json:
#
#   - the cached/reference spectrum digest tour must match (the SoA
#     kernels must stay the bit-exact ground truth);
#   - the warm path and the rebuild path must be allocation-free;
#   - full mode only: cold_rebuild_us must stay under the 100 µs
#     acceptance ceiling, and cold_rebuild_us / warm per-call /
#     speedup may not regress >20% vs. the committed baseline.
#
# Ratios (speedup, hit rate) are compared, not absolute steps/sec —
# absolute throughput varies with the host; ratios are self-normalizing
# because both arms run on the same machine. Absolute numbers are
# printed as warnings only unless PERF_GATE_ABSOLUTE=1.
#
# `--smoke` relaxes the timing gates (a smoke run's windows are a few
# sim-seconds, far too short for stable ratios) and checks only the
# correctness invariants: digests match and the optimized quiesced
# windows are allocation-free.
set -euo pipefail
cd "$(dirname "$0")/.."

MODE=full
if [[ "${1:-}" == "--smoke" ]]; then
    MODE=smoke
fi

REPORT=out/BENCH_mac.json
BASELINE=scripts/baselines/BENCH_mac.baseline.json
BATCH_REPORT=out/BENCH_batch.json
BATCH_BASELINE=scripts/baselines/BENCH_batch.baseline.json
CH_REPORT=out/BENCH_channel.json
CH_BASELINE=scripts/baselines/BENCH_channel.baseline.json

if [[ ! -f "$REPORT" ]]; then
    echo "perf_gate: $REPORT not found — run ./target/release/bench_mac first" >&2
    exit 1
fi
if [[ ! -f "$BASELINE" ]]; then
    echo "perf_gate: baseline $BASELINE not found" >&2
    exit 1
fi
if [[ ! -f "$BATCH_REPORT" ]]; then
    echo "perf_gate: $BATCH_REPORT not found — run ./target/release/bench_mac first" >&2
    exit 1
fi
if [[ ! -f "$BATCH_BASELINE" ]]; then
    echo "perf_gate: baseline $BATCH_BASELINE not found" >&2
    exit 1
fi
if [[ ! -f "$CH_REPORT" ]]; then
    echo "perf_gate: $CH_REPORT not found — run ./target/release/bench_channel first" >&2
    exit 1
fi
if [[ ! -f "$CH_BASELINE" ]]; then
    echo "perf_gate: baseline $CH_BASELINE not found" >&2
    exit 1
fi

MODE="$MODE" REPORT="$REPORT" BASELINE="$BASELINE" \
BATCH_REPORT="$BATCH_REPORT" BATCH_BASELINE="$BATCH_BASELINE" \
CH_REPORT="$CH_REPORT" CH_BASELINE="$CH_BASELINE" python3 - <<'PY'
import json, os, sys

mode = os.environ["MODE"]
with open(os.environ["REPORT"]) as f:
    rep = json.load(f)
with open(os.environ["BASELINE"]) as f:
    base = json.load(f)
with open(os.environ["BATCH_REPORT"]) as f:
    bat = json.load(f)
with open(os.environ["BATCH_BASELINE"]) as f:
    bat_base = json.load(f)
with open(os.environ["CH_REPORT"]) as f:
    ch = json.load(f)
with open(os.environ["CH_BASELINE"]) as f:
    ch_base = json.load(f)

failures = []
warnings = []

def check(cond, msg):
    if not cond:
        failures.append(msg)

# --- correctness invariants (gated in both modes) ----------------------
for section in ("mac_loop", "saturated", "full_profile"):
    check(rep[section]["digest_match"], f"{section}: digest mismatch — "
          "optimized stepper diverged from the reference")
check(rep["idle"]["digest_match"], "idle: digest mismatch — idle-skip "
      "changed simulation outputs")

# The quiesced arms are the steady-state MAC loop; the acceptance
# criterion is zero per-step heap allocations there. full_profile keeps
# the estimator running, whose observation path may legitimately touch
# the heap, so it is reported but not gated.
for section in ("mac_loop", "saturated"):
    allocs = rep[section]["optimized"]["allocs_in_window"]
    check(allocs == 0, f"{section}: optimized window performed {allocs} "
          "heap allocation(s); expected zero")

# Batched multi-sim engine: every width of the lockstep engine must fold
# the same ensemble digest as the serial per-sim arm, and the engine
# arms' timed windows must never touch the heap. Both hold even in a
# tiny smoke window, so both modes gate them.
for section in ("fig16_shaped", "saturated"):
    check(bat[section]["digest_match"], f"batch {section}: digest mismatch — "
          "lockstep engine diverged from per-sim stepping")
    for arm in bat[section]["arms"]:
        if arm["batch"] > 1:
            check(arm["allocs_in_window"] == 0,
                  f"batch {section}: width-{arm['batch']} window performed "
                  f"{arm['allocs_in_window']} heap allocation(s); expected zero")

# Bit-inertness of span tracing: the stats-mode arm must see the exact
# observables the untraced arm saw. Gated in both modes — a digest is
# stable even in a tiny smoke window.
check(rep["span_overhead"]["digest_match"],
      "span_overhead: digest mismatch — span tracing perturbed the "
      "simulation")

# PHY spectrum kernels: the cached evaluator runs the chunked kernels,
# the reference runs the scalar twins — the digest tour proves they
# still agree bitwise. Both hot paths must stay off the heap.
check(ch["digest_match"], "channel: digest mismatch — cached spectrum "
      "diverged from the reference evaluator")
ch_allocs = ch["warm"]["allocs_per_call"]
check(ch_allocs == 0, f"channel: warm spectrum_at_phase_into performed "
      f"{ch_allocs} heap allocation(s)/call; expected zero")
rb_allocs = ch["cold_rebuild"]["allocs_per_rebuild"]
check(rb_allocs == 0, f"channel: epoch rebuild performed {rb_allocs} "
      f"heap allocation(s)/rebuild; expected zero")
check(ch["cold_rebuild"]["rebuilds"]
      == ch["cold_rebuild"]["iters"] * ch["cold_rebuild"]["reps"],
      "channel: rebuild arm did not rebuild on every call — "
      "cold_rebuild_us is not measuring the rebuild path")

if mode == "smoke":
    print(f"perf_gate --smoke: digests match, optimized quiesced windows "
          f"allocation-free ({len(failures)} failure(s))")
    for msg in failures:
        print(f"  FAIL {msg}")
    sys.exit(1 if failures else 0)

# --- timing gates (full mode only) -------------------------------------
FLOOR = 3.0       # acceptance floor for the headline workload
TOL = 0.8         # fail on >20% regression vs. the committed baseline

sp = rep["mac_loop"]["speedup"]
check(sp >= FLOOR, f"mac_loop: speedup {sp:.2f}x below the {FLOOR:.1f}x floor")

for section in ("mac_loop", "saturated"):
    cur, ref = rep[section]["speedup"], base[section]["speedup"]
    check(cur >= TOL * ref,
          f"{section}: speedup {cur:.2f}x regressed >20% vs baseline {ref:.2f}x")
    print(f"{section:>12}: speedup {cur:.2f}x (baseline {ref:.2f}x)")

cur, ref = rep["idle"]["hit_rate"], base["idle"]["hit_rate"]
check(cur >= TOL * ref,
      f"idle: skip hit rate {cur:.2f} regressed >20% vs baseline {ref:.2f}")
print(f"{'idle':>12}: hit rate {cur:.2f} (baseline {ref:.2f})")

fp = rep["full_profile"]["speedup"]
print(f"{'full_profile':>12}: speedup {fp:.2f}x (reported, not gated)")

# Batched engine: the acceptance criterion is >= 2x aggregate throughput
# at batch=256 vs batch=1 on the fig16-shaped (mostly-idle campaign)
# ensemble, plus no >20% regression vs the committed baseline. The
# saturated ensemble has no idle time for the wheel to skip, so its
# ratio is reported but not gated.
BATCH_FLOOR = 2.0
cur = bat["fig16_shaped"]["speedup_256_over_1"]
check(cur >= BATCH_FLOOR,
      f"batch fig16_shaped: speedup {cur:.2f}x at width 256 below the "
      f"{BATCH_FLOOR:.1f}x floor")
ref = bat_base["fig16_shaped"]["speedup_256_over_1"]
check(cur >= TOL * ref,
      f"batch fig16_shaped: speedup {cur:.2f}x regressed >20% vs "
      f"baseline {ref:.2f}x")
print(f"{'batch':>12}: fig16-shaped 256/1 speedup {cur:.2f}x "
      f"(floor {BATCH_FLOOR:.1f}x, baseline {ref:.2f}x)")
sat = bat["saturated"]["speedup_256_over_1"]
print(f"{'batch':>12}: saturated 256/1 speedup {sat:.2f}x "
      f"(reported, not gated)")

# Span hot-path budget: stats-mode spans may cost at most 5% of the
# gated workload's throughput. Ratio of two same-host arms, so it is
# self-normalizing like the speedups above.
SPAN_BUDGET = 0.95
ratio = rep["span_overhead"]["ratio"]
check(ratio >= SPAN_BUDGET,
      f"span_overhead: enabled/disabled ratio {ratio:.3f} below the "
      f"{SPAN_BUDGET:.2f} budget (spans cost more than 5%)")
print(f"{'spans':>12}: enabled/disabled ratio {ratio:.3f} "
      f"(budget {SPAN_BUDGET:.2f})")

# --- channel timing gates ----------------------------------------------
# The epoch-rebuild ceiling is absolute by design: the acceptance
# criterion is "tens of µs per 917-carrier rebuild", so a hard 100 µs
# cap applies on top of the baseline ratio.
REBUILD_CEILING_US = 100.0

cur = ch["cold_rebuild_us"]
check(cur <= REBUILD_CEILING_US,
      f"channel: cold_rebuild_us {cur:.1f} exceeds the "
      f"{REBUILD_CEILING_US:.0f} µs ceiling")
ref = ch_base["cold_rebuild_us"]
check(cur <= ref / TOL,
      f"channel: cold_rebuild_us {cur:.1f} regressed >20% vs "
      f"baseline {ref:.1f}")
print(f"{'channel':>12}: cold rebuild {cur:.1f} µs "
      f"(baseline {ref:.1f} µs, ceiling {REBUILD_CEILING_US:.0f} µs)")

cur, ref = ch["warm"]["per_call_us"], ch_base["warm"]["per_call_us"]
check(cur <= ref / TOL,
      f"channel: warm per-call {cur:.2f} µs regressed >20% vs "
      f"baseline {ref:.2f} µs")
print(f"{'channel':>12}: warm per-call {cur:.2f} µs (baseline {ref:.2f} µs)")

cur, ref = ch["speedup"], ch_base["speedup"]
check(cur >= TOL * ref,
      f"channel: speedup {cur:.1f}x regressed >20% vs baseline {ref:.1f}x")
print(f"{'channel':>12}: cached/reference speedup {cur:.1f}x "
      f"(baseline {ref:.1f}x)")

# Absolute throughput is host-dependent: warn by default, gate only on
# request (e.g. pinned CI hardware).
cur = rep["mac_loop"]["optimized"]["steps_per_sec"]
ref = base["mac_loop"]["optimized"]["steps_per_sec"]
if cur < TOL * ref:
    msg = (f"mac_loop: absolute {cur:,.0f} steps/s is >20% below "
           f"baseline {ref:,.0f} steps/s")
    if os.environ.get("PERF_GATE_ABSOLUTE") == "1":
        failures.append(msg)
    else:
        warnings.append(msg + " (warn-only; set PERF_GATE_ABSOLUTE=1 to gate)")

for msg in warnings:
    print(f"  WARN {msg}")
for msg in failures:
    print(f"  FAIL {msg}")
if failures:
    sys.exit(1)
print("perf_gate: OK")
PY
