#!/usr/bin/env bash
# Local CI gate: formatting, lints, the full test suite. Everything runs
# offline — the workspace vendors its few dependencies under vendor/, so
# no crates-io registry access is needed (and none is attempted).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo test =="
cargo test -q --workspace

echo "== campaign smoke (2 runs, telemetry + tracing on) =="
cargo build --release -q -p electrifi-bench --bin campaign
./target/release/campaign scenarios/smoke-campaign.json --dry-run
# Fresh output dir: the follow stream appends (so a resumed campaign
# keeps its history), which would otherwise accumulate across gate runs.
rm -rf out/smoke-campaign
./target/release/campaign scenarios/smoke-campaign.json --workers 2 \
    --out out/smoke-campaign \
    --progress out/smoke-campaign/progress.json --progress-every 0.05 \
    --follow out/smoke-campaign/follow.jsonl \
    --trace out/smoke-campaign/trace.json
# The heartbeat must end fully accounted and the follow stream must
# carry one parseable line per run.
python3 - <<'PY'
import json
p = json.load(open("out/smoke-campaign/progress.json"))
assert p["finished"], f"progress not finished: {p}"
assert p["runs_done"] == p["runs_total"] > 0, f"inconsistent progress: {p}"
assert p["runs_failed"] == 0, f"failed runs in smoke campaign: {p}"
lines = [json.loads(l) for l in open("out/smoke-campaign/follow.jsonl")]
assert len(lines) == p["runs_total"], \
    f"{len(lines)} follow lines for {p['runs_total']} runs"
assert sorted(c["index"] for c in lines) == list(range(p["runs_total"]))
print(f"progress.json consistent: {p['runs_done']}/{p['runs_total']} runs, "
      f"{p['heartbeats']} heartbeats; follow.jsonl: {len(lines)} lines")
PY

echo "== checkpoint/resume smoke (interrupted == uninterrupted) =="
# Stop the same campaign after one run, resume it, and require the
# resumed summary.json to be byte-identical to the straight-through one
# — which, since the straight-through run had telemetry and tracing on
# and this one has them off, also proves observability is bit-inert.
rm -rf out/smoke-ckpt
./target/release/campaign scenarios/smoke-campaign.json --workers 1 \
    --out out/smoke-ckpt --stop-after 1
./target/release/campaign scenarios/smoke-campaign.json --workers 1 \
    --out out/smoke-ckpt --resume out/smoke-ckpt
cmp out/smoke-campaign/summary.json out/smoke-ckpt/summary.json

echo "== trace smoke (fig16 Chrome trace: valid JSON, spans nest) =="
cargo build --release -q -p electrifi-bench --bin fig16
ELECTRIFI_SCALE=quick ELECTRIFI_TRACE=out/trace-smoke.json \
    ./target/release/fig16 > /dev/null
python3 - <<'PY'
import json
doc = json.load(open("out/trace-smoke.json"))
events = doc["traceEvents"]
assert events, "trace is empty"
stacks = {}
for ev in events:
    assert ev["ph"] in ("B", "E"), f"unexpected phase: {ev}"
    assert ev["ts"] >= 0 and ev["pid"] == 1
    stack = stacks.setdefault(ev["tid"], [])
    if ev["ph"] == "B":
        stack.append(ev["name"])
    else:
        assert stack, f"E without matching B on tid {ev['tid']}: {ev}"
        top = stack.pop()
        assert top == ev["name"], \
            f"mis-nested span: E {ev['name']} closes B {top}"
for tid, stack in stacks.items():
    assert not stack, f"unclosed spans on tid {tid}: {stack}"
names = {e["name"] for e in events}
print(f"trace OK: {len(events)} events, {len(stacks)} thread(s), "
      f"{len(names)} distinct spans, all properly nested")
# Tracing also fills the manifest's profile section.
m = json.load(open("out/fig16.manifest.json"))
assert m["profile"] is not None and m["profile"]["spans"], \
    "traced run must carry a profile in its manifest"
PY

echo "== replay smoke (snapshot -> resume -> event-stream diff) =="
cargo build --release -q -p electrifi-bench --bin replay
./target/release/replay selftest --out out/replay-smoke

echo "== bench smoke + perf gate (correctness invariants only) =="
# Tiny windows: exercises the zero-alloc MAC loop, the zero-alloc PHY
# spectrum hot path, and the bit-identity digests on every change.
# Timing ratios are only gated by the full (un-smoked)
# scripts/perf_gate.sh run.
cargo build --release -q -p electrifi-bench --bin bench_mac --bin bench_channel
ELECTRIFI_BENCH_SMOKE=1 ./target/release/bench_mac
ELECTRIFI_BENCH_SMOKE=1 ./target/release/bench_channel
./scripts/perf_gate.sh --smoke

echo "All checks passed."
