#!/usr/bin/env bash
# Local CI gate: formatting, lints, the full test suite. Everything runs
# offline — the workspace vendors its few dependencies under vendor/, so
# no crates-io registry access is needed (and none is attempted).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo test =="
cargo test -q --workspace

echo "== campaign smoke (2 runs, validated + executed) =="
cargo build --release -q -p electrifi-bench --bin campaign
./target/release/campaign scenarios/smoke-campaign.json --dry-run
./target/release/campaign scenarios/smoke-campaign.json --workers 2 --out out/smoke-campaign

echo "== checkpoint/resume smoke (interrupted == uninterrupted) =="
# Stop the same campaign after one run, resume it, and require the
# resumed summary.json to be byte-identical to the straight-through one.
rm -rf out/smoke-ckpt
./target/release/campaign scenarios/smoke-campaign.json --workers 1 \
    --out out/smoke-ckpt --stop-after 1
./target/release/campaign scenarios/smoke-campaign.json --workers 1 \
    --out out/smoke-ckpt --resume out/smoke-ckpt
cmp out/smoke-campaign/summary.json out/smoke-ckpt/summary.json

echo "== replay smoke (snapshot -> resume -> event-stream diff) =="
cargo build --release -q -p electrifi-bench --bin replay
./target/release/replay selftest --out out/replay-smoke

echo "== bench_mac smoke + perf gate (correctness invariants only) =="
# Tiny windows: exercises the zero-alloc MAC loop and the bit-identity
# digests on every change. Timing ratios are only gated by the full
# (un-smoked) scripts/perf_gate.sh run.
cargo build --release -q -p electrifi-bench --bin bench_mac
ELECTRIFI_BENCH_SMOKE=1 ./target/release/bench_mac
./scripts/perf_gate.sh --smoke

echo "All checks passed."
