#!/usr/bin/env bash
# Local CI gate: formatting, lints, the full test suite. Everything runs
# offline — the workspace vendors its few dependencies under vendor/, so
# no crates-io registry access is needed (and none is attempted).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo test =="
cargo test -q --workspace

echo "== campaign smoke (2 runs, telemetry + tracing on) =="
cargo build --release -q -p electrifi-bench --bin campaign
./target/release/campaign scenarios/smoke-campaign.json --dry-run
# Fresh output dir: the follow stream appends (so a resumed campaign
# keeps its history), which would otherwise accumulate across gate runs.
rm -rf out/smoke-campaign
./target/release/campaign scenarios/smoke-campaign.json --workers 2 \
    --out out/smoke-campaign \
    --progress out/smoke-campaign/progress.json --progress-every 0.05 \
    --follow out/smoke-campaign/follow.jsonl \
    --trace out/smoke-campaign/trace.json
# The heartbeat must end fully accounted and the follow stream must
# carry one parseable line per run.
python3 - <<'PY'
import json
p = json.load(open("out/smoke-campaign/progress.json"))
assert p["finished"], f"progress not finished: {p}"
assert p["runs_done"] == p["runs_total"] > 0, f"inconsistent progress: {p}"
assert p["runs_failed"] == 0, f"failed runs in smoke campaign: {p}"
lines = [json.loads(l) for l in open("out/smoke-campaign/follow.jsonl")]
assert len(lines) == p["runs_total"], \
    f"{len(lines)} follow lines for {p['runs_total']} runs"
assert sorted(c["index"] for c in lines) == list(range(p["runs_total"]))
print(f"progress.json consistent: {p['runs_done']}/{p['runs_total']} runs, "
      f"{p['heartbeats']} heartbeats; follow.jsonl: {len(lines)} lines")
PY

echo "== checkpoint/resume smoke (interrupted == uninterrupted) =="
# Stop the same campaign after one run, resume it, and require the
# resumed summary.json to be byte-identical to the straight-through one
# — which, since the straight-through run had telemetry and tracing on
# and this one has them off, also proves observability is bit-inert.
rm -rf out/smoke-ckpt
./target/release/campaign scenarios/smoke-campaign.json --workers 1 \
    --out out/smoke-ckpt --stop-after 1
./target/release/campaign scenarios/smoke-campaign.json --workers 1 \
    --out out/smoke-ckpt --resume out/smoke-ckpt
cmp out/smoke-campaign/summary.json out/smoke-ckpt/summary.json

echo "== batch engine smoke (--batch 64 == unbatched bytes) =="
# The lockstep batch engine is execution shape only: a campaign run at
# any --batch width must produce a summary.json byte-identical to the
# unbatched run above (which also had telemetry and tracing on).
rm -rf out/smoke-batch
./target/release/campaign scenarios/smoke-campaign.json --workers 2 \
    --batch 64 --out out/smoke-batch
cmp out/smoke-campaign/summary.json out/smoke-batch/summary.json

echo "== trace smoke (fig16 Chrome trace: valid JSON, spans nest) =="
cargo build --release -q -p electrifi-bench --bin fig16
ELECTRIFI_SCALE=quick ELECTRIFI_TRACE=out/trace-smoke.json \
    ./target/release/fig16 > /dev/null
python3 - <<'PY'
import json
doc = json.load(open("out/trace-smoke.json"))
events = doc["traceEvents"]
assert events, "trace is empty"
stacks = {}
for ev in events:
    assert ev["ph"] in ("B", "E"), f"unexpected phase: {ev}"
    assert ev["ts"] >= 0 and ev["pid"] == 1
    stack = stacks.setdefault(ev["tid"], [])
    if ev["ph"] == "B":
        stack.append(ev["name"])
    else:
        assert stack, f"E without matching B on tid {ev['tid']}: {ev}"
        top = stack.pop()
        assert top == ev["name"], \
            f"mis-nested span: E {ev['name']} closes B {top}"
for tid, stack in stacks.items():
    assert not stack, f"unclosed spans on tid {tid}: {stack}"
names = {e["name"] for e in events}
print(f"trace OK: {len(events)} events, {len(stacks)} thread(s), "
      f"{len(names)} distinct spans, all properly nested")
# Tracing also fills the manifest's profile section.
m = json.load(open("out/fig16.manifest.json"))
assert m["profile"] is not None and m["profile"]["spans"], \
    "traced run must carry a profile in its manifest"
PY

echo "== replay smoke (snapshot -> resume -> event-stream diff) =="
cargo build --release -q -p electrifi-bench --bin replay
./target/release/replay selftest --out out/replay-smoke

echo "== serve smoke (control plane: submit -> poll -> fetch == CLI bytes) =="
cargo build --release -q -p electrifi-bench --bin serve --bin servectl
SERVE_SOCK="out/serve-smoke/ctl.sock"
rm -rf out/serve-smoke
./target/release/serve --unix "$SERVE_SOCK" --out out/serve-smoke \
    --scenario-root . --workers 2 --shard-size 1 &
SERVE_PID=$!
trap 'kill "$SERVE_PID" 2>/dev/null || true' EXIT
for _ in $(seq 50); do [ -S "$SERVE_SOCK" ] && break; sleep 0.1; done
[ -S "$SERVE_SOCK" ] || { echo "serve did not come up"; exit 1; }
SUBMIT=$(./target/release/servectl --unix "$SERVE_SOCK" submit scenarios/smoke-campaign.json)
echo "$SUBMIT"
JOB=$(python3 -c "import json,sys; print(json.loads(sys.argv[1])['id'])" "$SUBMIT")
./target/release/servectl --unix "$SERVE_SOCK" wait "$JOB" --timeout 300 > /dev/null
./target/release/servectl --unix "$SERVE_SOCK" results "$JOB" > out/serve-smoke/served-summary.json
# The control plane's summary must be byte-identical to the CLI's for
# the very same campaign file (written by the campaign smoke above).
cmp out/smoke-campaign/summary.json out/serve-smoke/served-summary.json
./target/release/servectl --unix "$SERVE_SOCK" events "$JOB" --limit 5 > /dev/null
./target/release/servectl --unix "$SERVE_SOCK" shutdown > /dev/null
wait "$SERVE_PID"
trap - EXIT

echo "== serve killed-worker smoke (death -> resume -> identical bytes) =="
# Arm the one-shot injected worker death on the second run; the shard is
# re-admitted, resumed from its checkpoint, and the summary must still
# match the CLI byte-for-byte.
KILL_RUN=$(./target/release/campaign scenarios/smoke-campaign.json --list | sed -n 2p)
rm -rf out/serve-kill
ELECTRIFI_SERVE_KILL_RUN="$KILL_RUN" ./target/release/serve \
    --unix out/serve-kill/ctl.sock --out out/serve-kill \
    --scenario-root . --workers 2 --shard-size 1 &
SERVE_PID=$!
trap 'kill "$SERVE_PID" 2>/dev/null || true' EXIT
for _ in $(seq 50); do [ -S out/serve-kill/ctl.sock ] && break; sleep 0.1; done
SUBMIT=$(./target/release/servectl --unix out/serve-kill/ctl.sock submit scenarios/smoke-campaign.json)
JOB=$(python3 -c "import json,sys; print(json.loads(sys.argv[1])['id'])" "$SUBMIT")
./target/release/servectl --unix out/serve-kill/ctl.sock wait "$JOB" --timeout 300 > /dev/null
./target/release/servectl --unix out/serve-kill/ctl.sock results "$JOB" > out/serve-kill/served-summary.json
cmp out/smoke-campaign/summary.json out/serve-kill/served-summary.json
./target/release/servectl --unix out/serve-kill/ctl.sock metrics > out/serve-kill/metrics.json
python3 - <<'PY'
import json
m = json.load(open("out/serve-kill/metrics.json"))
c = dict((k, v) for k, v in m["counters"])
assert c.get("serve.workers.deaths", 0) >= 1, f"injected death not recorded: {c}"
assert c.get("serve.workers.shards_requeued", 0) >= 1, f"no shard requeued: {c}"
assert c.get("serve.queue.completed", 0) == 1, f"job did not complete: {c}"
print(f"killed-worker recovery OK: {c['serve.workers.deaths']} death(s), "
      f"{c['serve.workers.shards_requeued']} shard(s) requeued, "
      f"{c.get('serve.workers.runs_resumed', 0)} run(s) resumed from checkpoint")
PY
./target/release/servectl --unix out/serve-kill/ctl.sock shutdown > /dev/null
wait "$SERVE_PID"
trap - EXIT

echo "== campaign exit codes (usage=2, io=3) =="
set +e
./target/release/campaign --workers 0 scenarios/smoke-campaign.json 2>/dev/null; RC_USAGE=$?
./target/release/campaign --batch 0 scenarios/smoke-campaign.json 2>/dev/null; RC_BATCH=$?
./target/release/campaign no-such-campaign.json 2>/dev/null; RC_IO=$?
./target/release/campaign --help > /dev/null; RC_HELP=$?
set -e
[ "$RC_USAGE" -eq 2 ] || { echo "--workers 0 must exit 2, got $RC_USAGE"; exit 1; }
[ "$RC_BATCH" -eq 2 ] || { echo "--batch 0 must exit 2, got $RC_BATCH"; exit 1; }
[ "$RC_IO" -eq 3 ] || { echo "missing campaign file must exit 3, got $RC_IO"; exit 1; }
[ "$RC_HELP" -eq 0 ] || { echo "--help must exit 0, got $RC_HELP"; exit 1; }
echo "exit codes OK: usage=2 io=3 help=0"

echo "== disturbance gate smoke (verdict pass=0, fail fixture=5, serve verdict) =="
# A gated campaign that holds its assertions exits 0 and writes a typed
# verdict block per run; the deliberately failing fixture still writes
# its summary (the run *succeeded* — the invariant did not) and exits 5.
rm -rf out/disturbance-gate out/disturbance-fail
./target/release/campaign scenarios/disturbance-campaign.json --workers 2 \
    --out out/disturbance-gate
python3 - <<'PY'
import json
s = json.load(open("out/disturbance-gate/summary.json"))
runs = [r for r in s["runs"] if r.get("verdict")]
assert runs, "no run carried a verdict block"
for r in runs:
    v = r["verdict"]
    assert v["pass"], f"verdict failed in passing campaign: {v}"
    assert v["assertions"], "verdict carries no assertions"
    assert all(a["pass"] for a in v["assertions"])
print(f"verdict OK: {len(runs)} gated run(s), "
      f"{sum(len(r['verdict']['assertions']) for r in runs)} assertion(s) held")
PY
set +e
./target/release/campaign scenarios/disturbance-fail-campaign.json \
    --out out/disturbance-fail 2>/dev/null; RC_ASSERT=$?
set -e
[ "$RC_ASSERT" -eq 5 ] || { echo "failing fixture must exit 5, got $RC_ASSERT"; exit 1; }
python3 - <<'PY'
import json
s = json.load(open("out/disturbance-fail/summary.json"))
v = s["runs"][0]["verdict"]
assert v is not None and not v["pass"], f"fail fixture must carry a failing verdict: {v}"
print("fail fixture OK: exit 5 with summary.json intact and verdict.pass=false")
PY
# The control plane surfaces the same rollup: job status carries
# verdict/pass and `servectl verdict` prints the per-assertion table.
rm -rf out/serve-verdict
# The campaign file names its scenario by sibling path, so the server
# resolves against scenarios/ (the CLI resolves against the campaign
# file's own directory).
./target/release/serve --unix out/serve-verdict/ctl.sock --out out/serve-verdict \
    --scenario-root scenarios --workers 2 --shard-size 1 &
SERVE_PID=$!
trap 'kill "$SERVE_PID" 2>/dev/null || true' EXIT
for _ in $(seq 50); do [ -S out/serve-verdict/ctl.sock ] && break; sleep 0.1; done
SUBMIT=$(./target/release/servectl --unix out/serve-verdict/ctl.sock submit scenarios/disturbance-campaign.json)
JOB=$(python3 -c "import json,sys; print(json.loads(sys.argv[1])['id'])" "$SUBMIT")
./target/release/servectl --unix out/serve-verdict/ctl.sock wait "$JOB" --timeout 300 > /dev/null
STATUS=$(./target/release/servectl --unix out/serve-verdict/ctl.sock status "$JOB")
python3 -c "import json,sys; d = json.loads(sys.argv[1]); \
    assert d.get('verdict') == 'pass' and d.get('verdict_failures') == 0, d" "$STATUS"
./target/release/servectl --unix out/serve-verdict/ctl.sock verdict "$JOB"
./target/release/servectl --unix out/serve-verdict/ctl.sock shutdown > /dev/null
wait "$SERVE_PID"
trap - EXIT
echo "disturbance gate OK: pass campaign=0, fail fixture=5, serve verdict surfaced"

echo "== bench smoke + perf gate (correctness invariants only) =="
# Tiny windows: exercises the zero-alloc MAC loop, the zero-alloc PHY
# spectrum hot path, and the bit-identity digests on every change.
# Timing ratios are only gated by the full (un-smoked)
# scripts/perf_gate.sh run.
cargo build --release -q -p electrifi-bench --bin bench_mac --bin bench_channel
ELECTRIFI_BENCH_SMOKE=1 ./target/release/bench_mac
ELECTRIFI_BENCH_SMOKE=1 ./target/release/bench_channel
./scripts/perf_gate.sh --smoke

echo "All checks passed."
