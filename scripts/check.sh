#!/usr/bin/env bash
# Local CI gate: formatting, lints, the full test suite. Everything runs
# offline — the workspace vendors its few dependencies under vendor/, so
# no crates-io registry access is needed (and none is attempted).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo test =="
cargo test -q --workspace

echo "All checks passed."
