//! HD streaming over a hybrid link: compare WiFi-only, PLC-only,
//! round-robin, and the paper's capacity-weighted splitter (§7.4) for a
//! constant-rate stream that cares about jitter.
//!
//! ```sh
//! cargo run --release --example hybrid_streaming
//! ```

use electrifi::experiments::hybrid::fig20_detail;
use electrifi::experiments::{Scale, PAPER_SEED};
use electrifi::PaperEnv;

fn main() {
    let env = PaperEnv::new(PAPER_SEED);
    let (a, b) = (0u16, 4u16);
    println!("Hybrid streaming on link {a}-{b} (paper Fig. 20 scenario)\n");
    let d = fig20_detail(&env, a, b, Scale::Quick);

    println!("Mean UDP throughput:");
    println!("  WiFi only    : {:>6.1} Mb/s", d.wifi_only);
    println!("  PLC only     : {:>6.1} Mb/s", d.plc_only);
    println!(
        "  Round-robin  : {:>6.1} Mb/s   (capacity-blind: capped near 2x \
         the slower medium = {:.1})",
        d.round_robin,
        2.0 * d.plc_only.min(d.wifi_only)
    );
    println!(
        "  Hybrid (ours): {:>6.1} Mb/s   (capacity-weighted: approaches \
         WiFi + PLC = {:.1})",
        d.hybrid,
        d.wifi_only + d.plc_only
    );
    println!();
    println!(
        "Jitter: hybrid {:.3} ms vs best single medium {:.3} ms — the \
         reordering buffer must not make jitter worse (§7.4).",
        d.hybrid_jitter_ms, d.single_jitter_ms
    );

    // Can the link carry a 4K stream?
    let stream_mbps = 25.0;
    for (name, rate) in [
        ("WiFi only", d.wifi_only),
        ("PLC only", d.plc_only),
        ("Round-robin", d.round_robin),
        ("Hybrid", d.hybrid),
    ] {
        let ok = rate >= stream_mbps;
        println!(
            "  25 Mb/s 4K stream over {name:<12}: {}",
            if ok { "OK" } else { "UNDERRUNS" }
        );
    }
}
