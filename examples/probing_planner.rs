//! Probing planner: apply the paper's Table 3 guidelines to a live
//! network — classify links, derive per-link probe plans, and quantify
//! the accuracy/overhead tradeoff (§7.3).
//!
//! ```sh
//! cargo run --release --example probing_planner
//! ```

use electrifi::analysis::LinkClass;
use electrifi::experiments::temporal::cycle_trace;
use electrifi::experiments::PAPER_SEED;
use electrifi::guidelines::ProbePlan;
use electrifi::PaperEnv;
use hybrid1905::probing::{evaluate_policy, ProbingPolicy};
use plc_phy::PlcTechnology;
use simnet::stats::Ecdf;
use simnet::time::Duration;

fn main() {
    let env = PaperEnv::new(PAPER_SEED);
    println!("Probing planner over network A (paper §7.3 method)\n");

    // Collect short cycle-scale traces, classify, and plan.
    let pairs: Vec<(u16, u16)> = vec![
        (1, 2),
        (1, 6),
        (5, 8),
        (9, 10),
        (0, 3),
        (4, 7),
        (2, 11),
        (3, 9),
    ];
    let mut traces = Vec::new();
    println!(
        "{:>7} {:>10} {:>9} {:>10} {:>7} {:>6}",
        "link", "BLE Mb/s", "class", "interval", "bytes", "burst"
    );
    for (a, b) in pairs {
        let trace = cycle_trace(
            &env,
            a,
            b,
            PlcTechnology::HpAv,
            env.estimator,
            Duration::from_secs(12),
        );
        let ble = trace.ble.stats().mean();
        let class = LinkClass::of_ble(ble);
        let plan = ProbePlan::recommended(ble, false);
        println!(
            "{:>4}-{:<2} {ble:>10.1} {class:>9?} {:>8.0} s {:>7} {:>6}",
            a,
            b,
            plan.interval.as_secs_f64(),
            plan.probe_bytes,
            plan.burst_len,
        );
        traces.push(trace.ble);
    }

    // Evaluate the tradeoff over the collected traces.
    let ours = evaluate_policy(ProbingPolicy::paper_adaptive(), &traces);
    let base = evaluate_policy(ProbingPolicy::Fixed(Duration::from_secs(5)), &traces);
    let slow = evaluate_policy(ProbingPolicy::Fixed(Duration::from_secs(80)), &traces);
    println!("\nAccuracy/overhead (paper Fig. 19):");
    for (name, eval) in [
        ("our method", &ours),
        ("every 5 s", &base),
        ("every 80 s", &slow),
    ] {
        let ecdf = Ecdf::new(eval.errors_mbps.clone());
        println!(
            "  {name:<11}: probes={:<5} median err={:.2} Mb/s  p90 err={:.2} Mb/s",
            eval.probes,
            ecdf.median(),
            ecdf.quantile(0.9),
        );
    }
    println!(
        "\nOverhead reduction vs 5 s probing: {:.0}% (paper: 32%).",
        100.0 * ours.overhead_reduction_vs(&base)
    );
}
