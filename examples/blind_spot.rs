//! Coverage survey: where does WiFi leave blind spots, and does PLC fill
//! them? (The paper's §4.1 motivation: "PLC can eliminate, to a large
//! extent, blind spots".)
//!
//! ```sh
//! cargo run --release --example blind_spot
//! ```

use electrifi::experiments::PAPER_SEED;
use electrifi::{LinkProbeSim, PaperEnv};
use simnet::time::Time;
use wifi80211::throughput::expected_goodput_mbps;

fn main() {
    let env = PaperEnv::new(PAPER_SEED);
    let now = Time::from_hours(14);
    // Survey from an "access point" at station 5 toward every other
    // station of the same PLC network.
    let ap: u16 = 5;
    println!("Coverage survey from station {ap} (network A)\n");
    println!(
        "{:>7} {:>8} {:>8} {:>12} {:>12}  verdict",
        "station", "air m", "cable m", "WiFi Mb/s", "PLC Mb/s"
    );

    let mut blind = 0usize;
    let mut rescued = 0usize;
    for s in env.network_members(electrifi_testbed::PlcNetwork::A) {
        if s == ap {
            continue;
        }
        let air = env.testbed.air_distance_m(ap, s);
        let cable = env.testbed.cable_distance_m(ap, s).unwrap_or(f64::NAN);
        let wifi = expected_goodput_mbps(&env.wifi_channel(ap, s), now, 1);
        let mut plc = LinkProbeSim::new(
            env.plc_channel(ap, s),
            PaperEnv::dir(ap, s),
            env.estimator,
            7,
        );
        let steady = plc.warmup(now, 8);
        let t_plc = plc.throughput_now(steady);
        let verdict = if wifi < 1.0 && t_plc >= 1.0 {
            blind += 1;
            rescued += 1;
            "BLIND SPOT — rescued by PLC"
        } else if wifi < 1.0 {
            blind += 1;
            "blind on both"
        } else if t_plc > wifi {
            "PLC faster"
        } else {
            "WiFi faster"
        };
        println!("{s:>7} {air:>8.1} {cable:>8.1} {wifi:>12.1} {t_plc:>12.1}  {verdict}");
    }
    println!(
        "\n{blind} WiFi blind spot(s); PLC rescued {rescued} of them \
         (the paper: PLC connects 100% of pairs, WiFi dies beyond ~35 m)."
    );
}
