//! Observability: stream a MAC simulation's structured events as JSON
//! lines and print the final metrics snapshot (README "Observability").
//!
//! ```sh
//! cargo run --release --example obs_jsonl 2>events.jsonl
//! ```
//!
//! Events (CSMA collisions, SACK retransmissions, tone-map updates, …)
//! go to stderr, one JSON object per line; the name-sorted metrics
//! snapshot goes to stdout. Attaching the sink is inert: the simulation
//! computes exactly what it would with observability disabled.

use electrifi::experiments::PAPER_SEED;
use electrifi::PaperEnv;
use plc_mac::sim::{Flow, PlcSim, SimConfig};
use simnet::obs::{JsonlSink, Obs};
use simnet::time::Time;
use simnet::traffic::TrafficSource;

fn main() {
    let env = PaperEnv::new(PAPER_SEED);
    let outlets = [
        (1u16, env.testbed.station(1).outlet),
        (2u16, env.testbed.station(2).outlet),
        (6u16, env.testbed.station(6).outlet),
    ];

    // Route this simulation's metrics and events to a JSONL sink on
    // stderr (any `io::Write` works — a file, a pipe, a Vec<u8>).
    let obs = Obs::with_sink(JsonlSink::new(std::io::stderr()));
    let mut sim = PlcSim::new(SimConfig::default(), &env.testbed.grid, &outlets);
    sim.attach_obs(obs.clone());

    sim.add_flow(Flow::unicast(1, 2, TrafficSource::iperf_saturated()));
    sim.add_flow(Flow::unicast(6, 2, TrafficSource::probe_150kbps()));
    sim.run_until(Time::from_secs(2));

    let snapshot = obs.registry().snapshot();
    println!(
        "{}",
        serde_json::to_string_pretty(&snapshot).expect("snapshot serializes")
    );
}
