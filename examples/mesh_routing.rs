//! Mesh routing over hybrid metrics: survey the floor, fill the IEEE
//! 1905-style metric database, and compute quality-aware multi-hop routes
//! (paper §4.3: "mesh configurations, hence routing and load balancing
//! algorithms, are needed for seamless connectivity"; its reference [17]
//! found multi-hop routes that alternate technologies perform well).
//!
//! ```sh
//! cargo run --release --example mesh_routing
//! ```

use electrifi::experiments::PAPER_SEED;
use electrifi::{LinkProbeSim, PaperEnv};
use electrifi_testbed::PlcNetwork;
use hybrid1905::metrics::{LinkId, LinkMetric, LinkMetricsDb, Medium};
use hybrid1905::routing::{Router, RouterConfig};
use simnet::time::Time;
use wifi80211::throughput::expected_goodput_mbps;

fn main() {
    let env = PaperEnv::new(PAPER_SEED);
    let now = Time::from_hours(10);
    let members = env.network_members(PlcNetwork::A);

    // --- Survey: probe both mediums on every directed pair (the O(n^2)
    // probing §4.3 discusses; a real deployment would pace this with the
    // adaptive policy of §7.3).
    println!(
        "Surveying network A ({} stations) on both mediums...",
        members.len()
    );
    let mut db = LinkMetricsDb::new();
    for &a in &members {
        for &b in &members {
            if a == b {
                continue;
            }
            // PLC: steady-state BLE -> throughput estimate.
            let mut plc = LinkProbeSim::new(
                env.plc_channel(a, b),
                PaperEnv::dir(a, b),
                env.estimator,
                0x0E5 ^ ((a as u64) << 8) ^ b as u64,
            );
            let steady = plc.warmup(now, 6);
            let t_plc = plc.throughput_now(steady);
            if t_plc > 0.5 {
                db.update(
                    LinkId {
                        src: a,
                        dst: b,
                        medium: Medium::Plc,
                    },
                    LinkMetric {
                        capacity_mbps: t_plc,
                        loss_rate: plc.pberr_cumulative(),
                        updated_at: now,
                    },
                );
            }
            // WiFi.
            let t_wifi = expected_goodput_mbps(&env.wifi_channel(a, b), now, 1);
            if t_wifi > 0.5 {
                db.update(
                    LinkId {
                        src: a,
                        dst: b,
                        medium: Medium::Wifi,
                    },
                    LinkMetric {
                        capacity_mbps: t_wifi,
                        loss_rate: None,
                        updated_at: now,
                    },
                );
            }
        }
    }
    println!("metric database: {} directed medium-links\n", db.len());

    // --- Route between every pair; report multi-hop and alternating
    // routes.
    let router = Router::new(RouterConfig::default());
    let mut multi_hop = 0;
    let mut alternating = 0;
    let mut total = 0;
    let mut example: Option<(u16, u16, hybrid1905::Route)> = None;
    for &a in &members {
        for &b in &members {
            if a == b {
                continue;
            }
            total += 1;
            if let Some(route) = router.best_route(&db, a, b, now) {
                if route.hops.len() > 1 {
                    multi_hop += 1;
                    if route.alternates_mediums() && example.is_none() {
                        example = Some((a, b, route.clone()));
                    }
                }
                if route.alternates_mediums() {
                    alternating += 1;
                }
            }
        }
    }
    println!("routes computed for {total} pairs:");
    println!("  multi-hop best routes : {multi_hop}");
    println!("  alternating mediums   : {alternating}");
    if let Some((a, b, route)) = example {
        println!("\nexample alternating route {a} -> {b}:");
        for hop in &route.hops {
            println!(
                "  {} -> {} via {:?} (ETT {:.2} ms)",
                hop.link.src,
                hop.link.dst,
                hop.link.medium,
                hop.ett_s * 1e3
            );
        }
        println!("  total ETT {:.2} ms", route.total_ett_s * 1e3);
    }
}
