//! Quickstart: build a small hybrid PLC+WiFi network and read the link
//! metrics the paper is about.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use electrifi::experiments::PAPER_SEED;
use electrifi::{LinkProbeSim, PaperEnv};
use hybrid1905::metrics::{LinkId, LinkMetric, LinkMetricsDb, Medium};
use simnet::time::Time;
use wifi80211::throughput::expected_goodput_mbps;

fn main() {
    // The paper's 19-station floor; any seed gives a different building.
    let env = PaperEnv::new(PAPER_SEED);
    println!("Electri-Fi quickstart: four stations of the Fig. 2 floor\n");

    let now = Time::from_hours(10); // weekday, working hours
    let mut db = LinkMetricsDb::new();

    for (a, b) in [(1u16, 2u16), (1, 6), (5, 8), (9, 10)] {
        // --- PLC: saturate briefly so tone maps converge, then read the
        // metrics exactly as the paper does (int6krate + ampstat).
        let mut plc = LinkProbeSim::new(
            env.plc_channel(a, b),
            PaperEnv::dir(a, b),
            env.estimator,
            42,
        );
        let steady = plc.warmup(now, 8);
        let ble = plc.ble_avg();
        let pberr = plc.pberr_cumulative().unwrap_or(0.0);
        let t_plc = plc.throughput_now(steady);
        db.update(
            LinkId {
                src: a,
                dst: b,
                medium: Medium::Plc,
            },
            LinkMetric {
                capacity_mbps: ble,
                loss_rate: Some(pberr),
                updated_at: now,
            },
        );

        // --- WiFi: the whole-band capacity estimate at the same moment.
        let wifi = env.wifi_channel(a, b);
        let t_wifi = expected_goodput_mbps(&wifi, now, 1);
        db.update(
            LinkId {
                src: a,
                dst: b,
                medium: Medium::Wifi,
            },
            LinkMetric {
                capacity_mbps: t_wifi,
                loss_rate: None,
                updated_at: now,
            },
        );

        println!(
            "link {a:>2} -> {b:<2}  cable {:>5.1} m  air {:>4.1} m   \
             PLC: BLE {ble:>6.1} Mb/s, PBerr {pberr:.3}, UDP ~{t_plc:>5.1} Mb/s   \
             WiFi: UDP ~{t_wifi:>5.1} Mb/s",
            env.testbed.cable_distance_m(a, b).unwrap_or(f64::NAN),
            env.testbed.air_distance_m(a, b),
        );
    }

    println!(
        "\nIEEE 1905 metric database now holds {} records.",
        db.len()
    );
    println!("Guidelines (paper Table 3):");
    for g in electrifi::guidelines::table3() {
        println!("  [{}] {} (see §{})", g.policy, g.guideline, g.sections);
    }
}
